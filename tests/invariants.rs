//! Property-based tests over cross-cutting invariants, running on the
//! in-tree `copycat::util::check` harness (seeded generation with
//! shrink-on-failure; failures print a seed to add to the property's
//! regression list).

use copycat::document::html::{parse, TagPath};
use copycat::document::Sheet;
use copycat::linkage::{Metric, TfIdfIndex};
use copycat::provenance::expr::{BoolSemiring, CountSemiring, TropicalSemiring};
use copycat::provenance::{witnesses, Provenance};
use copycat::query::Value;
use copycat::semantic::{tokenize_value, PatternSet, TokenClass};
use copycat::util::check::{check, Gen, DEFAULT_CASES};
use copycat::{prop_ensure, prop_ensure_eq};

// --- Provenance polynomial algebra ------------------------------------

/// A small recursive generator for provenance expressions.
fn gen_provenance(g: &mut Gen, depth: usize) -> Provenance {
    if depth == 0 || g.bool_p(0.35) {
        let r = g.u64_in(0..4);
        let i = g.u64_in(0..4);
        return Provenance::base(format!("r{r}"), i);
    }
    match g.usize_in(0..3) {
        0 => Provenance::times(gen_provenance(g, depth - 1), gen_provenance(g, depth - 1)),
        1 => Provenance::plus(gen_provenance(g, depth - 1), gen_provenance(g, depth - 1)),
        _ => Provenance::labeled("Q", gen_provenance(g, depth - 1)),
    }
}

/// Boolean evaluation agrees with witness semantics: the tuple exists
/// under an assignment iff some witness is fully present.
#[test]
fn bool_eval_matches_witnesses() {
    check("bool_eval_matches_witnesses", DEFAULT_CASES, &[], |g| {
        let p = gen_provenance(g, 3);
        let present_mask = g.u64_in(0..256) as u16;
        let present = |t: &copycat::provenance::TupleId| {
            let idx = (t.relation.as_bytes()[1] - b'0') as u64 * 4 + t.row;
            present_mask & (1 << (idx % 16)) != 0
        };
        let via_eval = p.eval::<BoolSemiring>(&present);
        let via_witnesses = witnesses(&p).iter().any(|w| w.iter().all(|t| present(t)));
        prop_ensure_eq!(via_eval, via_witnesses);
        Ok(())
    });
}

/// The tropical cost of a derivation is the cheapest witness's cost.
#[test]
fn tropical_eval_is_min_witness_cost() {
    check("tropical_eval_is_min_witness_cost", DEFAULT_CASES, &[], |g| {
        let p = gen_provenance(g, 3);
        let cost = |t: &copycat::provenance::TupleId| t.row as f64 + 1.0;
        let via_eval = p.eval::<TropicalSemiring>(&cost);
        let via_witnesses = witnesses(&p)
            .iter()
            .map(|w| w.iter().map(|t| cost(t)).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        // Witness sets are deduplicated within a witness (idempotent ⊗),
        // so the eval cost can only be >= the witness cost; they agree
        // when no witness repeats a tuple.
        prop_ensure!(via_eval + 1e-9 >= via_witnesses);
        Ok(())
    });
}

/// Plus/times produce expressions whose derivation count is stable
/// under the algebra's flattening.
#[test]
fn count_eval_is_positive() {
    check("count_eval_is_positive", DEFAULT_CASES, &[], |g| {
        let p = gen_provenance(g, 3);
        prop_ensure!(p.eval::<CountSemiring>(&|_| 1) >= 1);
        Ok(())
    });
}

// --- Tag paths ---------------------------------------------------------

/// lgg subsumes both of its arguments (when defined), and parsing
/// round-trips through Display.
#[test]
fn tagpath_lgg_subsumes() {
    check("tagpath_lgg_subsumes", DEFAULT_CASES, &[], |g| {
        let names = ["div", "tr", "li"];
        let n = g.usize_in(1..5);
        let tags: Vec<usize> = (0..n).map(|_| g.usize_in(0..3)).collect();
        let idx_a: Vec<usize> = (0..n).map(|_| g.usize_in(0..4)).collect();
        let idx_b: Vec<usize> = (0..n).map(|_| g.usize_in(0..4)).collect();
        let mk = |idx: &[usize]| {
            TagPath::new(
                (0..n)
                    .map(|i| copycat::document::TagStep::nth(names[tags[i]], idx[i]))
                    .collect(),
            )
        };
        let a = mk(&idx_a);
        let b = mk(&idx_b);
        let g2 = a.lgg(&b).expect("same shape");
        prop_ensure!(g2.subsumes(&a));
        prop_ensure!(g2.subsumes(&b));
        let reparsed = TagPath::parse(&g2.to_string()).expect("parses");
        prop_ensure_eq!(reparsed, g2);
        Ok(())
    });
}

// --- HTML parsing never panics and keeps text --------------------------

#[test]
fn html_parse_total() {
    check("html_parse_total", DEFAULT_CASES, &[], |g| {
        let s = g.string_of("abcXYZ019<>/=\" ", 0..200);
        let doc = parse(&s);
        // Walking the whole tree is safe.
        let _ = doc.text_content(doc.root());
        let _ = doc.descendants(doc.root());
        Ok(())
    });
}

/// Escaped text content survives a render/parse round trip.
#[test]
fn html_text_roundtrip() {
    check("html_text_roundtrip", DEFAULT_CASES, &[], |g| {
        let text = g.string_of("abcdefXYZ0123,.& <", 1..60);
        let html = format!(
            "<p>{}</p>",
            text.replace('&', "&amp;").replace('<', "&lt;")
        );
        let doc = parse(&html);
        let expected: String = {
            // Whitespace normalizes.
            let mut out = String::new();
            let mut last_space = true;
            for c in text.chars() {
                if c.is_whitespace() {
                    if !last_space {
                        out.push(' ');
                        last_space = true;
                    }
                } else {
                    out.push(c);
                    last_space = false;
                }
            }
            out.trim().to_string()
        };
        prop_ensure_eq!(doc.text_content(doc.root()), expected);
        Ok(())
    });
}

// --- CSV / Sheet round trip ---------------------------------------------

#[test]
fn sheet_csv_roundtrip() {
    check("sheet_csv_roundtrip", DEFAULT_CASES, &[], |g| {
        let rows: Vec<Vec<String>> = {
            let n = g.usize_in(1..6);
            (0..n)
                .map(|_| {
                    let w = g.usize_in(1..4);
                    (0..w)
                        .map(|_| g.string_of("abcXYZ01,\" \n", 0..12))
                        .collect()
                })
                .collect()
        };
        let width = rows.iter().map(Vec::len).max().unwrap_or(0);
        let padded: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(width, String::new());
                r
            })
            .collect();
        let sheet = Sheet::new("s", None, padded.clone());
        let back = Sheet::from_csv("s", &sheet.to_csv(), false);
        // CSV cannot represent a trailing empty-celled row distinction;
        // compare cell-by-cell over the original dimensions.
        for (i, row) in padded.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let got = back.cell(copycat::document::CellAddr::new(i, j)).unwrap_or("");
                prop_ensure_eq!(got, cell.as_str(), "cell ({}, {})", i, j);
            }
        }
        Ok(())
    });
}

// --- Pattern learning ----------------------------------------------------

/// A learned pattern set always covers its own training data.
#[test]
fn patterns_cover_training() {
    check("patterns_cover_training", DEFAULT_CASES, &[], |g| {
        let values: Vec<String> = {
            let n = g.usize_in(1..30);
            (0..n)
                .map(|_| g.string_of("abcdABCD0123 -", 1..16))
                .collect()
        };
        let non_empty: Vec<String> = values
            .into_iter()
            .filter(|v| !v.trim().is_empty())
            .collect();
        if non_empty.is_empty() {
            return Ok(());
        }
        let set = PatternSet::learn(&non_empty);
        prop_ensure!(
            (set.coverage(&non_empty) - 1.0).abs() < 1e-9,
            "coverage {} on {:?}",
            set.coverage(&non_empty),
            non_empty
        );
        Ok(())
    });
}

/// Regression (ported from the proptest-recorded failure seed, shrunk
/// counterexample preserved verbatim): this mix of punctuation-bearing
/// and two-token values used to escape the learned set's coverage.
#[test]
fn patterns_cover_training_regression() {
    let values = [
        "-0", "a-", "A a", "a b", "A-A", "b A", "0 B", "c C", "0-B", "d D", "0",
    ];
    let set = PatternSet::learn(&values);
    assert!(
        (set.coverage(&values) - 1.0).abs() < 1e-9,
        "coverage {} over {:?}; patterns: {:?}",
        set.coverage(&values),
        values,
        set.patterns().iter().map(|(p, s)| (p.to_string(), *s)).collect::<Vec<_>>()
    );
}

/// Token classes assigned by `of` always match their own token, and
/// generalization preserves matching.
#[test]
fn token_class_soundness() {
    check("token_class_soundness", DEFAULT_CASES, &[], |g| {
        let v = g.string_of("abcXYZ012().,-", 1..20);
        for tok in tokenize_value(&v) {
            prop_ensure!(tok.class.matches(&tok.text), "{:?} vs {:?}", tok.class, tok.text);
            let lub = tok.class.generalize(TokenClass::CapWord);
            prop_ensure!(lub.matches(&tok.text) || lub == TokenClass::CapWord);
        }
        Ok(())
    });
}

// --- Linkage metrics -------------------------------------------------------

/// Every metric is bounded, reflexive, and symmetric.
#[test]
fn metrics_are_sane() {
    check("metrics_are_sane", DEFAULT_CASES, &[], |g| {
        let a = g.string_of("abcdeXYZ012 ", 0..24);
        let b = g.string_of("abcdeXYZ012 ", 0..24);
        let idx = TfIdfIndex::build(&[a.clone(), b.clone()]);
        for m in Metric::ALL {
            let ab = m.eval(&a, &b, &idx);
            let ba = m.eval(&b, &a, &idx);
            prop_ensure!((0.0..=1.0 + 1e-9).contains(&ab), "{:?} out of range: {}", m, ab);
            prop_ensure!((ab - ba).abs() < 1e-9, "{:?} asymmetric", m);
            let aa = m.eval(&a, &a, &idx);
            if !a.trim().is_empty() {
                prop_ensure!((aa - 1.0).abs() < 1e-9, "{:?} not reflexive on {:?}: {}", m, a, aa);
            }
        }
        Ok(())
    });
}

// --- Value parsing -----------------------------------------------------------

/// parse → as_text round-trips trimmed input for non-numeric strings.
#[test]
fn value_parse_roundtrip() {
    check("value_parse_roundtrip", DEFAULT_CASES, &[], |g| {
        let s = g.string_of("abcdefgh XYZ", 1..20);
        let v = Value::parse(&s);
        if !s.trim().is_empty() {
            prop_ensure_eq!(v.as_text(), s.trim());
        }
        Ok(())
    });
}

#[test]
fn numeric_values_compare_across_forms() {
    check("numeric_values_compare_across_forms", DEFAULT_CASES, &[], |g| {
        let n = g.i64_in(-1_000_000..1_000_000);
        if n != 0 && n.to_string().starts_with('0') {
            return Ok(());
        }
        let from_num = Value::Num(n as f64);
        let from_str = Value::parse(&n.to_string());
        prop_ensure_eq!(from_num, from_str);
        Ok(())
    });
}
