//! Property-based tests over cross-cutting invariants.

use copycat::document::html::{parse, TagPath};
use copycat::document::Sheet;
use copycat::linkage::{Metric, TfIdfIndex};
use copycat::provenance::expr::{BoolSemiring, CountSemiring, TropicalSemiring};
use copycat::provenance::{witnesses, Provenance};
use copycat::query::Value;
use copycat::semantic::{tokenize_value, PatternSet, TokenClass};
use proptest::prelude::*;

// --- Provenance polynomial algebra ------------------------------------

/// A small recursive generator for provenance expressions.
fn prov_strategy() -> impl Strategy<Value = Provenance> {
    let leaf = (0u64..4, 0u64..4)
        .prop_map(|(r, i)| Provenance::base(format!("r{r}"), i));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Provenance::times(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Provenance::plus(a, b)),
            inner.prop_map(|p| Provenance::labeled("Q", p)),
        ]
    })
}

proptest! {
    /// Boolean evaluation agrees with witness semantics: the tuple exists
    /// under an assignment iff some witness is fully present.
    #[test]
    fn bool_eval_matches_witnesses(p in prov_strategy(), present_mask in 0u16..256) {
        let present = |t: &copycat::provenance::TupleId| {
            let idx = (t.relation.as_bytes()[1] - b'0') as u64 * 4 + t.row;
            present_mask & (1 << (idx % 16)) != 0
        };
        let via_eval = p.eval::<BoolSemiring>(&present);
        let via_witnesses = witnesses(&p)
            .iter()
            .any(|w| w.iter().all(|t| present(t)));
        prop_assert_eq!(via_eval, via_witnesses);
    }

    /// The tropical cost of a derivation is the cheapest witness's cost.
    #[test]
    fn tropical_eval_is_min_witness_cost(p in prov_strategy()) {
        let cost = |t: &copycat::provenance::TupleId| t.row as f64 + 1.0;
        let via_eval = p.eval::<TropicalSemiring>(&cost);
        let via_witnesses = witnesses(&p)
            .iter()
            .map(|w| w.iter().map(|t| cost(t)).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        // Witness sets are deduplicated within a witness (idempotent ⊗),
        // so the eval cost can only be >= the witness cost; they agree
        // when no witness repeats a tuple.
        prop_assert!(via_eval + 1e-9 >= via_witnesses);
    }

    /// Plus/times produce expressions whose derivation count is stable
    /// under the algebra's flattening.
    #[test]
    fn count_eval_is_positive(p in prov_strategy()) {
        prop_assert!(p.eval::<CountSemiring>(&|_| 1) >= 1);
    }
}

// --- Tag paths ---------------------------------------------------------

proptest! {
    /// lgg subsumes both of its arguments (when defined), and parsing
    /// round-trips through Display.
    #[test]
    fn tagpath_lgg_subsumes(
        tags in proptest::collection::vec(0usize..3, 1..5),
        idx_a in proptest::collection::vec(0usize..4, 1..5),
        idx_b in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let names = ["div", "tr", "li"];
        let n = tags.len().min(idx_a.len()).min(idx_b.len());
        let mk = |idx: &[usize]| {
            TagPath::new(
                (0..n)
                    .map(|i| copycat::document::TagStep::nth(names[tags[i]], idx[i]))
                    .collect(),
            )
        };
        let a = mk(&idx_a);
        let b = mk(&idx_b);
        let g = a.lgg(&b).expect("same shape");
        prop_assert!(g.subsumes(&a));
        prop_assert!(g.subsumes(&b));
        let reparsed = TagPath::parse(&g.to_string()).expect("parses");
        prop_assert_eq!(reparsed, g);
    }
}

// --- HTML parsing never panics and keeps text --------------------------

proptest! {
    #[test]
    fn html_parse_total(s in "[a-zA-Z0-9<>/=\" ]{0,200}") {
        let doc = parse(&s);
        // Walking the whole tree is safe.
        let _ = doc.text_content(doc.root());
        let _ = doc.descendants(doc.root());
    }

    /// Escaped text content survives a render/parse round trip.
    #[test]
    fn html_text_roundtrip(text in "[a-zA-Z0-9,.& <]{1,60}") {
        let html = format!(
            "<p>{}</p>",
            text.replace('&', "&amp;").replace('<', "&lt;")
        );
        let doc = parse(&html);
        let expected: String = {
            // Whitespace normalizes.
            let mut out = String::new();
            let mut last_space = true;
            for c in text.chars() {
                if c.is_whitespace() {
                    if !last_space { out.push(' '); last_space = true; }
                } else { out.push(c); last_space = false; }
            }
            out.trim().to_string()
        };
        prop_assert_eq!(doc.text_content(doc.root()), expected);
    }
}

// --- CSV / Sheet round trip ---------------------------------------------

proptest! {
    #[test]
    fn sheet_csv_roundtrip(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9,\" \n]{0,12}", 1..4),
            1..6
        )
    ) {
        let width = rows.iter().map(Vec::len).max().unwrap_or(0);
        let padded: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(width, String::new());
                r
            })
            .collect();
        let sheet = Sheet::new("s", None, padded.clone());
        let back = Sheet::from_csv("s", &sheet.to_csv(), false);
        // CSV cannot represent a trailing empty-celled row distinction;
        // compare cell-by-cell over the original dimensions.
        for (i, row) in padded.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let got = back.cell(copycat::document::CellAddr::new(i, j)).unwrap_or("");
                prop_assert_eq!(got, cell.as_str(), "cell ({}, {})", i, j);
            }
        }
    }
}

// --- Pattern learning ----------------------------------------------------

proptest! {
    /// A learned pattern set always covers its own training data.
    #[test]
    fn patterns_cover_training(values in proptest::collection::vec("[a-zA-Z0-9 -]{1,16}", 1..30)) {
        let non_empty: Vec<String> = values
            .into_iter()
            .filter(|v| !v.trim().is_empty())
            .collect();
        prop_assume!(!non_empty.is_empty());
        let set = PatternSet::learn(&non_empty);
        prop_assert!((set.coverage(&non_empty) - 1.0).abs() < 1e-9);
    }

    /// Token classes assigned by `of` always match their own token, and
    /// generalization preserves matching.
    #[test]
    fn token_class_soundness(v in "[a-zA-Z0-9().,-]{1,20}") {
        for tok in tokenize_value(&v) {
            prop_assert!(tok.class.matches(&tok.text), "{:?} vs {:?}", tok.class, tok.text);
            let gen = tok.class.generalize(TokenClass::CapWord);
            prop_assert!(gen.matches(&tok.text) || gen == TokenClass::CapWord);
        }
    }
}

// --- Linkage metrics -------------------------------------------------------

proptest! {
    /// Every metric is bounded, reflexive, and symmetric.
    #[test]
    fn metrics_are_sane(a in "[a-zA-Z0-9 ]{0,24}", b in "[a-zA-Z0-9 ]{0,24}") {
        let idx = TfIdfIndex::build(&[a.clone(), b.clone()]);
        for m in Metric::ALL {
            let ab = m.eval(&a, &b, &idx);
            let ba = m.eval(&b, &a, &idx);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "{:?} out of range: {}", m, ab);
            prop_assert!((ab - ba).abs() < 1e-9, "{:?} asymmetric", m);
            let aa = m.eval(&a, &a, &idx);
            if !a.trim().is_empty() {
                prop_assert!((aa - 1.0).abs() < 1e-9, "{:?} not reflexive on {:?}: {}", m, a, aa);
            }
        }
    }
}

// --- Value parsing -----------------------------------------------------------

proptest! {
    /// parse → as_text round-trips trimmed input for non-numeric strings,
    /// and equality is consistent with textual equality.
    #[test]
    fn value_parse_roundtrip(s in "[a-zA-Z ]{1,20}") {
        let v = Value::parse(&s);
        if !s.trim().is_empty() {
            prop_assert_eq!(v.as_text(), s.trim());
        }
    }

    #[test]
    fn numeric_values_compare_across_forms(n in -1_000_000i64..1_000_000) {
        prop_assume!(n == 0 || !n.to_string().starts_with('0'));
        let from_num = Value::Num(n as f64);
        let from_str = Value::parse(&n.to_string());
        prop_assert_eq!(from_num, from_str);
    }
}
