//! End-to-end integration tests spanning every crate: the §8 demo script,
//! run headlessly on all page-complexity tiers.

use copycat::core::scenario::{Scenario, ScenarioConfig};
use copycat::core::{explain, export};
use copycat::document::corpus::Tier;

fn run_demo(tier: Tier, venues: usize, examples: usize) -> Scenario {
    let mut s = Scenario::build(&ScenarioConfig {
        venues,
        tier,
        seed: 2009,
        contact_name_edits: 0,
    });
    let imported = s.import_shelters(examples);
    assert!(
        imported as f64 >= venues as f64 * 0.9,
        "{tier:?}: imported {imported} of {venues}"
    );
    s
}

#[test]
fn demo_on_clean_tier_single_example() {
    let mut s = run_demo(Tier::Clean, 16, 1);
    // Zip completion exists and is correct for every row.
    let suggs = s.engine.column_suggestions();
    let zip = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("zip completion");
    let correct = zip
        .values
        .iter()
        .enumerate()
        .filter(|(i, v)| v[0] == s.world.venue_zip(&s.world.venues[*i]))
        .count();
    assert_eq!(correct, 16);
}

#[test]
fn demo_on_noisy_tier_two_examples() {
    run_demo(Tier::Noisy, 16, 2);
}

#[test]
fn demo_on_nested_tier() {
    run_demo(Tier::Nested, 16, 2);
}

#[test]
fn demo_on_multipage_tier() {
    let s = run_demo(Tier::MultiPage, 24, 1);
    // All pages contributed.
    let rel = s.engine.catalog().relation("Shelters").expect("committed");
    assert_eq!(rel.len(), 24);
}

#[test]
fn geocode_accept_then_export_kml() {
    let mut s = run_demo(Tier::Clean, 12, 1);
    let suggs = s.engine.column_suggestions();
    let geo = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Lat"))
        .expect("geocoder completion");
    s.engine.accept_column(geo);
    let tab = s.engine.workspace().active();
    let lat = tab.columns.iter().position(|c| c.name == "Lat").unwrap();
    let lon = tab.columns.iter().position(|c| c.name == "Lon").unwrap();
    let (kml, count) = export::to_kml(tab, 0, lat, lon);
    assert_eq!(count, 12);
    assert!(kml.contains("<Placemark>"));
    // CSV, XML and JSON exports agree on row counts.
    assert_eq!(export::to_csv(tab).lines().count(), 13);
    assert_eq!(export::to_xml(tab).matches("<row>").count(), 12);
    let json = copycat::util::Json::parse(&export::to_json(tab)).unwrap();
    assert_eq!(json.as_array().unwrap().len(), 12);
}

#[test]
fn provenance_traces_feedback_to_the_query() {
    let mut s = run_demo(Tier::Clean, 10, 1);
    let suggs = s.engine.column_suggestions();
    let zip = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("zip completion")
        .clone();
    s.engine.accept_column(&zip);
    let tab = s.engine.workspace().active();
    let e = explain::explain_row(tab, 0).expect("explained");
    assert!(e.queries.iter().any(|q| q.contains("zip_resolver")));
    assert!(e.sources.contains(&"Shelters".to_string()));
    assert!(e.sources.contains(&"zip_resolver".to_string()));
}

#[test]
fn rejected_completion_stays_demoted_across_requests() {
    let mut s = run_demo(Tier::Clean, 10, 1);
    let suggs = s.engine.column_suggestions();
    assert!(!suggs.is_empty());
    let first = suggs[0].clone();
    s.engine.reject_column(&first);
    for _ in 0..3 {
        let again = s.engine.column_suggestions();
        assert!(again.iter().all(|c| c.edge != first.edge));
    }
}

#[test]
fn approximate_linkage_with_mangled_names() {
    let mut s = Scenario::build(&ScenarioConfig {
        venues: 15,
        tier: Tier::Clean,
        seed: 7,
        contact_name_edits: 1,
    });
    s.import_shelters(1);
    s.import_contacts();
    // Teach the matcher from three demonstrated matches and declare the
    // association.
    for i in 0..3 {
        let true_name = s.world.venues[s.contact_truth[i]].name.clone();
        let mangled = s.contact_rows[i][2].clone();
        s.engine.demonstrate_link(&true_name, &mangled, true);
    }
    s.engine.declare_link("Shelters", "Name", "Contacts", "Venue");
    s.engine.switch_tab(0);
    let suggs = s.engine.column_suggestions();
    let link = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Phone"))
        .expect("contact completion via record link");
    let linked = link
        .values
        .iter()
        .filter(|v| v.iter().any(|x| !x.is_empty()))
        .count();
    assert!(
        linked >= 8,
        "at least half the mangled names should link, got {linked}/15"
    );
}

#[test]
fn cross_source_tuple_discovers_join_query() {
    let mut s = Scenario::build(&ScenarioConfig {
        venues: 12,
        tier: Tier::Clean,
        seed: 2009,
        contact_name_edits: 0,
    });
    s.import_shelters(1);
    s.import_contacts();
    // The user has pasted a contact next to a shelter before, so the
    // Name–Venue association is known (§4.1's "known links").
    s.engine.declare_link("Shelters", "Name", "Contacts", "Venue");
    let street = s.shelter_rows[0][1].clone();
    let phone = s.contact_rows[0][1].clone();
    let queries = s
        .engine
        .discover_queries_for_tuple(&[street.as_str(), phone.as_str()], 3);
    assert!(!queries.is_empty());
    let top = &queries[0];
    assert!(top.plan.sources().contains(&"Shelters"));
    assert!(top.plan.sources().contains(&"Contacts"));
}
