//! Property-based invariants for the integration learner's algorithms:
//! Steiner optimality ordering, the SPCSH approximation bound, and MIRA
//! constraint satisfaction.

use copycat::graph::{
    spcsh, steiner_exact, top_k_steiner, EdgeKind, Mira, NodeId, SourceGraph,
};
use copycat::query::Schema;
use proptest::prelude::*;

/// A random connected graph from proptest-chosen parameters.
fn build_graph(n: usize, extra: &[(usize, usize, u32)]) -> SourceGraph {
    let mut g = SourceGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
        .collect();
    let join = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
    // Deterministic backbone.
    for i in 1..n {
        g.add_edge_with_cost(nodes[i], nodes[i / 2], join(), 1.0 + (i % 3) as f64 * 0.5);
    }
    for &(a, b, c) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge_with_cost(
                nodes[a],
                nodes[b],
                join(),
                0.5 + (c % 20) as f64 / 10.0,
            );
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SPCSH is feasible and within the 2(1 − 1/k) bound of the optimum;
    /// the exact tree never costs more than the approximation.
    #[test]
    fn spcsh_within_bound(
        n in 4usize..14,
        extra in proptest::collection::vec((0usize..16, 0usize..16, 0u32..40), 0..12),
        t1 in 0usize..16,
        t2 in 0usize..16,
        t3 in 0usize..16,
    ) {
        let g = build_graph(n, &extra);
        let mut terminals: Vec<NodeId> =
            [t1 % n, t2 % n, t3 % n].iter().map(|&i| NodeId(i as u32)).collect();
        terminals.sort();
        terminals.dedup();
        let exact = steiner_exact(&g, &terminals).expect("backbone connects");
        let approx = spcsh(&g, &terminals, 1.0).expect("connected");
        let k = terminals.len() as f64;
        prop_assert!(exact.cost <= approx.cost + 1e-9);
        let bound = if k > 1.0 { 2.0 * (1.0 - 1.0 / k) } else { 1.0 };
        prop_assert!(
            approx.cost <= exact.cost * bound.max(1.0) + 1e-9,
            "approx {} vs exact {} (k={k})",
            approx.cost,
            exact.cost
        );
        // Both span every terminal.
        for t in &terminals {
            prop_assert!(exact.nodes.contains(t));
            prop_assert!(approx.nodes.contains(t));
        }
    }

    /// top-k is sorted, distinct, and headed by the optimum.
    #[test]
    fn top_k_sorted_distinct(
        n in 4usize..10,
        extra in proptest::collection::vec((0usize..12, 0usize..12, 0u32..40), 2..10),
    ) {
        let g = build_graph(n, &extra);
        let terminals = vec![NodeId(0), NodeId((n - 1) as u32)];
        let trees = top_k_steiner(&g, &terminals, 4);
        prop_assert!(!trees.is_empty());
        let exact = steiner_exact(&g, &terminals).expect("connected");
        prop_assert!((trees[0].cost - exact.cost).abs() < 1e-9);
        for w in trees.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
            prop_assert!(w[0].edges != w[1].edges);
        }
    }

    /// After a MIRA update, the constraint it was given holds (when the
    /// trees differ), and shared edges are untouched.
    #[test]
    fn mira_satisfies_its_constraint(
        n in 4usize..10,
        extra in proptest::collection::vec((0usize..12, 0usize..12, 0u32..40), 2..10),
    ) {
        let mut g = build_graph(n, &extra);
        let terminals = vec![NodeId(0), NodeId((n - 1) as u32)];
        let trees = top_k_steiner(&g, &terminals, 2);
        prop_assume!(trees.len() == 2);
        let (better, worse) = (trees[1].edges.clone(), trees[0].edges.clone());
        prop_assume!(better != worse);
        let mira = Mira::default();
        // Repeated application converges because τ is capped.
        for _ in 0..50 {
            if mira.apply(&mut g, &better, &worse) == 0.0 {
                break;
            }
        }
        prop_assert!(
            g.tree_cost(&better) <= g.tree_cost(&worse) - mira.margin + 1e-6,
            "constraint unsatisfied: {} vs {}",
            g.tree_cost(&better),
            g.tree_cost(&worse)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A learned transform program reproduces every training example.
    #[test]
    fn transforms_fit_their_examples(
        names in proptest::collection::vec("[A-Z][a-z]{2,6}", 2..5),
        cities in proptest::collection::vec("[A-Z][a-z]{2,6}", 2..5),
    ) {
        use copycat::semantic::TransformLearner;
        let n = names.len().min(cities.len());
        let examples: Vec<(Vec<String>, String)> = (0..n)
            .map(|i| {
                (
                    vec![names[i].clone(), cities[i].clone()],
                    format!("{}, {}", cities[i], names[i]),
                )
            })
            .collect();
        let programs = TransformLearner::new().learn(&examples);
        for p in programs.iter().take(3) {
            for (inp, out) in &examples {
                let got = p.apply(inp);
                prop_assert_eq!(got.as_deref(), Some(out.as_str()), "{}", p);
            }
        }
    }
}
