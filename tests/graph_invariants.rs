//! Property-based invariants for the integration learner's algorithms:
//! Steiner optimality ordering, the SPCSH approximation bound, and MIRA
//! constraint satisfaction. Runs on the in-tree `copycat::util::check`
//! harness.

use copycat::graph::{
    spcsh, steiner_exact, top_k_steiner, EdgeKind, Mira, NodeId, SourceGraph,
};
use copycat::query::Schema;
use copycat::util::check::{check, Gen, DEFAULT_CASES};
use copycat::{prop_ensure, prop_ensure_eq};

/// A random connected graph from generator-chosen parameters.
fn build_graph(n: usize, extra: &[(usize, usize, u32)]) -> SourceGraph {
    let mut g = SourceGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
        .collect();
    let join = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
    // Deterministic backbone.
    for i in 1..n {
        g.add_edge_with_cost(nodes[i], nodes[i / 2], join(), 1.0 + (i % 3) as f64 * 0.5);
    }
    for &(a, b, c) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge_with_cost(
                nodes[a],
                nodes[b],
                join(),
                0.5 + (c % 20) as f64 / 10.0,
            );
        }
    }
    g
}

/// Draw the shared `(n, extra)` graph parameters.
fn gen_graph_params(g: &mut Gen, n_range: std::ops::Range<usize>, extra_range: std::ops::Range<usize>) -> (usize, Vec<(usize, usize, u32)>) {
    let n = g.usize_in(n_range);
    let extra = {
        let len = g.usize_in(extra_range);
        (0..len)
            .map(|_| {
                (
                    g.usize_in(0..16),
                    g.usize_in(0..16),
                    g.u64_in(0..40) as u32,
                )
            })
            .collect()
    };
    (n, extra)
}

/// SPCSH is feasible and within the 2(1 − 1/k) bound of the optimum;
/// the exact tree never costs more than the approximation.
#[test]
fn spcsh_within_bound() {
    check("spcsh_within_bound", 48, &[], |gen| {
        let (n, extra) = gen_graph_params(gen, 4..14, 0..12);
        let g = build_graph(n, &extra);
        let mut terminals: Vec<NodeId> = (0..3)
            .map(|_| NodeId((gen.usize_in(0..16) % n) as u32))
            .collect();
        terminals.sort();
        terminals.dedup();
        let exact = steiner_exact(&g, &terminals).expect("backbone connects");
        let approx = spcsh(&g, &terminals, 1.0).expect("connected");
        let k = terminals.len() as f64;
        prop_ensure!(exact.cost <= approx.cost + 1e-9);
        let bound = if k > 1.0 { 2.0 * (1.0 - 1.0 / k) } else { 1.0 };
        prop_ensure!(
            approx.cost <= exact.cost * bound.max(1.0) + 1e-9,
            "approx {} vs exact {} (k={})",
            approx.cost,
            exact.cost,
            k
        );
        // Both span every terminal.
        for t in &terminals {
            prop_ensure!(exact.nodes.contains(t));
            prop_ensure!(approx.nodes.contains(t));
        }
        Ok(())
    });
}

/// top-k is sorted, distinct, and headed by the optimum.
#[test]
fn top_k_sorted_distinct() {
    check("top_k_sorted_distinct", 48, &[], |gen| {
        let (n, extra) = gen_graph_params(gen, 4..10, 2..10);
        let extra: Vec<_> = extra
            .into_iter()
            .map(|(a, b, c)| (a % 12, b % 12, c))
            .collect();
        let g = build_graph(n, &extra);
        let terminals = vec![NodeId(0), NodeId((n - 1) as u32)];
        let trees = top_k_steiner(&g, &terminals, 4);
        prop_ensure!(!trees.is_empty());
        let exact = steiner_exact(&g, &terminals).expect("connected");
        prop_ensure!((trees[0].cost - exact.cost).abs() < 1e-9);
        for w in trees.windows(2) {
            prop_ensure!(w[0].cost <= w[1].cost + 1e-9);
            prop_ensure!(w[0].edges != w[1].edges);
        }
        Ok(())
    });
}

/// After a MIRA update, the constraint it was given holds (when the
/// trees differ), and shared edges are untouched.
#[test]
fn mira_satisfies_its_constraint() {
    check("mira_satisfies_its_constraint", 48, &[], |gen| {
        let (n, extra) = gen_graph_params(gen, 4..10, 2..10);
        let extra: Vec<_> = extra
            .into_iter()
            .map(|(a, b, c)| (a % 12, b % 12, c))
            .collect();
        let mut g = build_graph(n, &extra);
        let terminals = vec![NodeId(0), NodeId((n - 1) as u32)];
        let trees = top_k_steiner(&g, &terminals, 2);
        if trees.len() != 2 {
            return Ok(());
        }
        let (better, worse) = (trees[1].edges.clone(), trees[0].edges.clone());
        if better == worse {
            return Ok(());
        }
        let mira = Mira::default();
        // Repeated application converges because τ is capped.
        for _ in 0..50 {
            if mira.apply(&mut g, &better, &worse) == 0.0 {
                break;
            }
        }
        prop_ensure!(
            g.tree_cost(&better) <= g.tree_cost(&worse) - mira.margin + 1e-6,
            "constraint unsatisfied: {} vs {}",
            g.tree_cost(&better),
            g.tree_cost(&worse)
        );
        Ok(())
    });
}

/// A learned transform program reproduces every training example.
#[test]
fn transforms_fit_their_examples() {
    check("transforms_fit_their_examples", DEFAULT_CASES, &[], |gen| {
        use copycat::semantic::TransformLearner;
        let cap_word = |g: &mut Gen| {
            let head = *g.choose(&['A', 'B', 'K', 'M', 'P', 'T']);
            let tail = g.string_of("abcdeimnorst", 2..7);
            format!("{head}{tail}")
        };
        let count = gen.usize_in(2..5);
        let names: Vec<String> = (0..count).map(|_| cap_word(gen)).collect();
        let cities: Vec<String> = (0..count).map(|_| cap_word(gen)).collect();
        let examples: Vec<(Vec<String>, String)> = (0..count)
            .map(|i| {
                (
                    vec![names[i].clone(), cities[i].clone()],
                    format!("{}, {}", cities[i], names[i]),
                )
            })
            .collect();
        let programs = TransformLearner::new().learn(&examples);
        for p in programs.iter().take(3) {
            for (inp, out) in &examples {
                let got = p.apply(inp);
                prop_ensure_eq!(got.as_deref(), Some(out.as_str()), "{}", p);
            }
        }
        Ok(())
    });
}
