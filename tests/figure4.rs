//! E8: reconstruct the Figure-4 source graph from catalogs and verify the
//! discovered associations and the chosen Steiner query (the Shelters →
//! ZipCodes dependent join with its bolded query nodes).

use copycat::graph::{
    discover_associations, steiner_exact, top_k_steiner, AssocOptions, EdgeKind, NodeKind,
    SourceGraph,
};
use copycat::query::{Field, Schema};

/// Build the subset of the running example's source graph shown in
/// Figure 4: the Shelters and Contacts data sources plus the ZipCodes
/// and Geocoder services.
fn figure4_graph() -> SourceGraph {
    let mut g = SourceGraph::new();
    g.add_relation(
        "Shelters",
        Schema::new(vec![
            Field::new("Name"),
            Field::typed("Street", "PR-Street"),
            Field::typed("City", "PR-City"),
        ]),
    );
    g.add_relation(
        "Contacts",
        Schema::new(vec![
            Field::typed("Person", "PR-Person"),
            Field::typed("Phone", "PR-Phone"),
            Field::typed("City", "PR-City"),
        ]),
    );
    g.add_service(
        "ZipCodes",
        Schema::new(vec![
            Field::typed("street", "PR-Street"),
            Field::typed("city", "PR-City"),
            Field::typed("Zip", "PR-Zip"),
        ]),
        2,
    );
    g.add_service(
        "Geocoder",
        Schema::new(vec![
            Field::typed("street", "PR-Street"),
            Field::typed("city", "PR-City"),
            Field::typed("Lat", "PR-LatLon"),
            Field::typed("Lon", "PR-LatLon"),
        ]),
        2,
    );
    discover_associations(&mut g, &AssocOptions::default());
    g
}

#[test]
fn nodes_have_the_figure_shapes() {
    let g = figure4_graph();
    assert_eq!(g.node(g.node_by_name("Shelters").unwrap()).kind, NodeKind::Relation);
    assert_eq!(g.node(g.node_by_name("ZipCodes").unwrap()).kind, NodeKind::Service);
}

#[test]
fn expected_associations_are_discovered() {
    let g = figure4_graph();
    let shelters = g.node_by_name("Shelters").unwrap();
    let contacts = g.node_by_name("Contacts").unwrap();
    let zip = g.node_by_name("ZipCodes").unwrap();
    let geo = g.node_by_name("Geocoder").unwrap();

    // Shelters binds both services (street+city are available).
    for svc in [zip, geo] {
        let edge = g
            .incident(shelters)
            .iter()
            .copied()
            .find(|&e| g.other_end(e, shelters) == svc)
            .expect("bind edge");
        match &g.edge(edge).kind {
            EdgeKind::Bind { bindings } => {
                assert_eq!(bindings, &vec!["Street".to_string(), "City".to_string()])
            }
            other => panic!("expected bind, got {other:?}"),
        }
    }
    // Contacts cannot bind the services (no street), but joins Shelters
    // on the shared City attribute.
    assert!(g.incident(contacts).iter().all(|&e| {
        let other = g.other_end(e, contacts);
        other != zip && other != geo || !matches!(g.edge(e).kind, EdgeKind::Bind { .. })
    }));
    let join = g
        .incident(shelters)
        .iter()
        .copied()
        .find(|&e| g.other_end(e, shelters) == contacts)
        .expect("join edge");
    match &g.edge(join).kind {
        EdgeKind::Join { pairs } => {
            assert!(pairs.contains(&("City".to_string(), "City".to_string())))
        }
        other => panic!("expected join, got {other:?}"),
    }
}

#[test]
fn the_bolded_query_is_the_cheapest_tree() {
    // Figure 4 bolds Shelters and ZipCodes: the query being constructed.
    let g = figure4_graph();
    let shelters = g.node_by_name("Shelters").unwrap();
    let zip = g.node_by_name("ZipCodes").unwrap();
    let t = steiner_exact(&g, &[shelters, zip]).expect("connected");
    assert_eq!(t.edges.len(), 1, "the direct dependent join wins");
    assert_eq!(t.nodes, {
        let mut v = vec![shelters, zip];
        v.sort();
        v
    });
}

#[test]
fn alternative_queries_rank_behind() {
    let g = figure4_graph();
    let shelters = g.node_by_name("Shelters").unwrap();
    let zip = g.node_by_name("ZipCodes").unwrap();
    let trees = top_k_steiner(&g, &[shelters, zip], 3);
    assert!(!trees.is_empty());
    for w in trees.windows(2) {
        assert!(w[0].cost <= w[1].cost);
    }
}
