//! Wrapper induction across page-complexity tiers (§3.1): how many
//! pasted examples each tier needs, and how feedback refines a wrapper
//! that over-extracts on a noisy page.
//!
//! Run with: `cargo run --example wrapper_induction`

use copycat::document::corpus::{render_list, Faker, ListSpec, Tier};
use copycat::document::Document;
use copycat::extract::{execute, refine, StructureLearner};
use copycat::semantic::TypeRegistry;

fn f1(truth: &[Vec<String>], got: &[Vec<String>]) -> f64 {
    let tp = got.iter().filter(|r| truth.contains(r)).count() as f64;
    if got.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let p = tp / got.len() as f64;
    let r = tp / truth.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

fn main() {
    let rows = Faker::new(99).shelters(18);
    let registry = TypeRegistry::with_builtins();
    let learner = StructureLearner::new();

    println!("{:<10} {:>9} {:>9} {:>9}", "tier", "1 example", "2 ex.", "3 ex.");
    for tier in Tier::ALL {
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], tier, 7);
        let doc = Document::Site(render_list(&spec, &rows).site);
        let mut scores = Vec::new();
        for k in 1..=3 {
            let examples: Vec<Vec<String>> = rows[..k].to_vec();
            let hyps = learner.learn(&doc, &examples, &registry);
            let score = hyps.first().map(|h| f1(&rows, &h.rows)).unwrap_or(0.0);
            scores.push(score);
        }
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3}",
            tier.name(),
            scores[0],
            scores[1],
            scores[2]
        );
    }

    // Feedback refinement on the noisy tier: reject over-extracted rows.
    let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], Tier::Noisy, 7);
    let doc = Document::Site(render_list(&spec, &rows).site);
    let examples: Vec<Vec<String>> = rows[..2].to_vec();
    let hyps = learner.learn(&doc, &examples, &registry);
    let top = hyps.first().expect("learned a wrapper");
    let bogus: Vec<Vec<String>> = top
        .rows
        .iter()
        .filter(|r| !rows.contains(r))
        .cloned()
        .collect();
    println!(
        "\nNoisy tier, 2 examples: wrapper extracts {} rows ({} bogus).",
        top.rows.len(),
        bogus.len()
    );
    if !bogus.is_empty() {
        let refined = refine(&top.wrapper, &doc, &bogus);
        let rows_after = execute(&refined, &doc);
        let bogus_after = rows_after.iter().filter(|r| !rows.contains(r)).count();
        println!(
            "After rejecting them: {} rows ({} bogus). F1 {:.3} -> {:.3}",
            rows_after.len(),
            bogus_after,
            f1(&rows, &top.rows),
            f1(&rows, &rows_after)
        );
    } else {
        println!("Nothing to refine: the ranked hypothesis was already clean.");
    }
}
