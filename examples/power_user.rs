//! The §5 extensions in one session: transform-by-example columns,
//! cleaning mode vs. generalized edits, undo, Web forms as services,
//! replacement-source discovery, and session save/restore.
//!
//! Run with: `cargo run --example power_user`

use copycat::core::scenario::{Scenario, ScenarioConfig};
use copycat::core::{CopyCat, EditEffect, FormService};
use copycat::document::{Form, Website};
use copycat::query::{Field, Service, Value};
use copycat::semantic::{IoExample, TypeRegistry};
use std::sync::Arc;

fn main() {
    let mut s = Scenario::build(&ScenarioConfig { venues: 8, ..Default::default() });
    s.import_shelters(1);

    // --- Transform by example: a "Label" column from two typed cells ---
    let rows = s.engine.workspace().active().committed_rows();
    let ex0 = format!("{} ({})", rows[0][0], rows[0][2]);
    let ex1 = format!("{} ({})", rows[1][0], rows[1][2]);
    let suggs = s.engine.suggest_transform(&[(0, &ex0), (1, &ex1)]);
    println!("Transform learned from 2 typed cells: {}", suggs[0].program);
    let label_col = s.engine.columns().len();
    s.engine.accept_transform("Label", &suggs[0].clone());
    println!("  row 5 auto-filled: {:?}\n", s.engine.workspace().active().rows[5].cells[label_col]);

    // --- Cleaning mode: a one-off fix stays local ---
    s.engine.set_cleaning(true);
    let eff = s.engine.edit_cell(3, label_col, "OVERRIDE (manual)");
    assert_eq!(eff, EditEffect::Local);
    println!("Cleaning-mode edit stayed local: {:?}", eff);
    s.engine.set_cleaning(false);

    // --- Undo ---
    let before = s.engine.workspace().active().rows[3].cells[label_col].clone();
    assert_eq!(before, "OVERRIDE (manual)");
    s.engine.undo();
    let after = s.engine.workspace().active().rows[3].cells[label_col].clone();
    println!("Undo restored the cell: {:?} -> {:?}\n", before, after);

    // --- A Web form as a service ---
    let (site, form) = build_zip_form_site(&s);
    let v0 = &s.world.venues[0];
    let st0 = s.world.venue_street(v0);
    let svc = FormService::learn(
        "zip_form",
        Arc::clone(&site),
        form,
        &[&st0.address, &s.world.street_city(st0).name],
        &[&st0.zip],
        vec![Field::typed("street", "PR-Street"), Field::typed("city", "PR-City")],
        vec![Field::typed("Zip", "PR-Zip")],
        &TypeRegistry::with_builtins(),
    )
    .expect("one demonstrated lookup teaches the form");
    // Verify on an unseen lookup before registering.
    let v1 = &s.world.venues[1];
    let st1 = s.world.venue_street(v1);
    let ans = svc.call(&[
        Value::str(st1.address.clone()),
        Value::str(s.world.street_city(st1).name.clone()),
    ]);
    println!("Form service learned from 1 demonstration; unseen lookup -> {:?}", ans[0][0].as_text());
    s.engine.register_service(Arc::new(svc));

    // --- Replacement-source discovery ---
    let examples: Vec<IoExample> = s
        .world
        .venues
        .iter()
        .take(3)
        .map(|v| {
            let st = s.world.venue_street(v);
            IoExample {
                inputs: vec![st.address.clone(), s.world.street_city(st).name.clone()],
                outputs: vec![st.zip.clone()],
            }
        })
        .collect();
    println!("\nServices equivalent to the observed (street, city) -> zip mapping:");
    for d in s.engine.find_equivalent_services(&examples).iter().take(3) {
        println!(
            "  {:<28} similarity {:.2} coverage {:.2}",
            d.expression, d.similarity, d.coverage
        );
    }

    // --- Session save / restore ---
    let json = s.engine.save_session_json();
    println!("\nSaved session: {} bytes of JSON.", json.len());
    let restored = CopyCat::load_session_json(&json).expect("round trips");
    println!(
        "Restored: {} relations, {} graph nodes, {} saved wrappers, user types: {:?}",
        restored.catalog().relation_names().len(),
        restored.graph().node_count(),
        restored.saved_wrappers().len(),
        restored
            .registry()
            .user_types()
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
    );
}

/// A form-driven zip lookup site consistent with the scenario's world.
fn build_zip_form_site(s: &Scenario) -> (Arc<Website>, Form) {
    let mut site = Website::new();
    site.add_html(
        "/",
        "<h1>Zip lookup</h1>\
         <form action=\"/zip\"><input name=\"street\"><input name=\"city\"></form>",
    );
    let form = Form { action: "/zip".into(), params: vec!["street".into(), "city".into()] };
    for street in &s.world.streets {
        let city = &s.world.cities[street.city].name;
        let url = form.submit(&[&street.address, city]);
        site.add_html(
            url.as_str(),
            &format!(
                "<h1>Result</h1><table><tr><th>Zip</th></tr><tr><td>{}</td></tr></table>",
                street.zip
            ),
        );
    }
    (Arc::new(site), form)
}
