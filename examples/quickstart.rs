//! Quickstart: the smallest useful CopyCat session.
//!
//! Builds the hurricane-relief scenario, imports the shelter Web site
//! from a single pasted example row, accepts the suggested Zip column,
//! and prints the workspace and a tuple explanation.
//!
//! Run with: `cargo run --example quickstart`

use copycat::core::explain;
use copycat::core::scenario::{Scenario, ScenarioConfig};

fn main() {
    // A seeded scenario: synthetic world, shelter site, contact sheet,
    // and an engine with simulated services registered.
    let mut s = Scenario::build(&ScenarioConfig { venues: 12, ..Default::default() });

    // The user pastes the first shelter row; CopyCat generalizes it to
    // the whole list (row auto-completion), proposes column types, and
    // the user commits the source.
    let imported = s.import_shelters(1);
    println!("Imported {imported} shelters from one pasted example.\n");

    // Integration mode: CopyCat offers column auto-completions from its
    // source graph. The zip resolver is the most promising.
    let suggestions = s.engine.column_suggestions();
    println!("Column auto-completions on offer:");
    for c in &suggestions {
        let names: Vec<&str> = c.new_fields.iter().map(|f| f.name.as_str()).collect();
        println!("  {:<40} cost {:.2}  adds {:?}", c.label, c.cost, names);
    }

    let zip = suggestions
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("the zip resolver binds street+city");
    s.engine.accept_column(zip);

    println!("\nWorkspace after accepting the Zip column:\n");
    println!("{}", s.engine.render());

    // Every completed tuple is explained by its provenance.
    let tab = s.engine.workspace().active();
    let e = explain::explain_row(tab, 0).expect("row exists");
    println!("Explanation of row 0:\n{}", explain::render(&e));
}
