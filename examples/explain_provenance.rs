//! The Tuple Explanation pane, headless (§2.1, §8): provenance-backed
//! explanations with alternative derivations, rendered as text and DOT.
//!
//! Run with: `cargo run --example explain_provenance`

use copycat::core::explain;
use copycat::provenance::{DerivationGraph, Provenance};
use copycat::query::{execute_labeled, Catalog, Plan, Relation, Schema};

fn main() {
    // A small catalog: two shelter lists that overlap, plus a lookup.
    let catalog = Catalog::new();
    catalog.add_relation(Relation::from_strings(
        "NewsShelters",
        Schema::of(&["Name", "City"]),
        &[
            vec!["Creek HS".into(), "Margate".into()],
            vec!["Rec Ctr".into(), "Tamarac".into()],
        ],
    ));
    catalog.add_relation(Relation::from_strings(
        "CountyShelters",
        Schema::of(&["Name", "City"]),
        &[
            vec!["Creek HS".into(), "Margate".into()],
            vec!["Civic".into(), "Margate".into()],
        ],
    ));

    // Union + distinct: the shared tuple gets two alternative
    // derivations, one per source (⊕ in its provenance polynomial).
    let plan = Plan::Union {
        inputs: vec![Plan::scan("NewsShelters"), Plan::scan("CountyShelters")],
    }
    .distinct();
    let result = execute_labeled(&plan, &catalog, "Q-union").expect("executes");

    println!("Result of {plan}:");
    for t in result.tuples() {
        println!("  {:?}   provenance: {}", t.as_texts(), t.provenance);
    }

    // Explain the overlapping tuple.
    let shared = result
        .tuples()
        .iter()
        .find(|t| t.as_texts() == vec!["Creek HS", "Margate"])
        .expect("shared tuple");
    let e = explain::explain(&shared.provenance);
    println!("\n{}", explain::render(&e));
    assert_eq!(e.alternatives.len(), 2, "two alternative explanations");

    // The DOT rendering, ready for graphviz.
    let dot = DerivationGraph::from_provenance(&shared.provenance).render_dot();
    println!("DOT:\n{dot}");

    // And a manual polynomial showing a dependent join through a service.
    let dependent = Provenance::labeled(
        "Q-zip",
        Provenance::times(
            Provenance::base("Shelters", 0),
            Provenance::base("zip_resolver", 0),
        ),
    );
    println!(
        "Dependent-join derivation:\n{}",
        explain::render(&explain::explain(&dependent))
    );
}
