//! The full Example-1 scenario: "take a list of shelters from a
//! television news Web site, combine it with the shelters' contact
//! information from a spreadsheet, and plot the shelters on a map."
//!
//! This walks every stage the paper narrates: import from a *noisy* Web
//! page with feedback on bogus suggestions, approximate record linking
//! against contacts whose venue names are abbreviated/typo'd, geocoding
//! through a simulated service, and a KML map export.
//!
//! Run with: `cargo run --example hurricane_mashup`

use copycat::core::export;
use copycat::core::scenario::{Scenario, ScenarioConfig};
use copycat::core::RowState;
use copycat::document::corpus::Tier;

fn main() {
    let mut s = Scenario::build(&ScenarioConfig {
        venues: 15,
        tier: Tier::Noisy,
        contact_name_edits: 2, // venue names in the contact sheet are mangled
        ..Default::default()
    });

    // --- Stage 1: import the shelter list from the noisy news page. ---
    // Two pasted examples; the noisy template needs more evidence than
    // the clean one ("the more complex the pages are, the more examples
    // may be necessary", §3.1).
    for row in s.shelter_rows.clone().iter().take(2) {
        let vals: Vec<&str> = row.iter().map(String::as_str).collect();
        s.engine.paste_example(s.shelters_doc, &vals);
    }
    // Reject any suggested row that is not a real shelter (ad rows). The
    // wrapper refines itself from this feedback.
    let truth = s.shelter_rows.clone();
    loop {
        let bogus = s
            .engine
            .workspace()
            .active()
            .rows
            .iter()
            .position(|r| r.state == RowState::Suggested && !truth.contains(&r.cells));
        match bogus {
            Some(i) => {
                println!("Rejecting bogus suggestion: {:?}", s.engine.workspace().active().rows[i].cells[0]);
                s.engine.reject_suggested_row(i);
            }
            None => break,
        }
    }
    s.engine.accept_suggested_rows();
    s.engine.name_column(0, "Name");
    let n = s.engine.commit_source("Shelters");
    println!("Imported {n} shelters (of {} true) from the noisy page.\n", truth.len());

    // --- Stage 2: contacts via approximate record linking. ---
    // The user demonstrates a couple of matches so CopyCat can learn the
    // best combination of linkage heuristics (Example 1).
    s.engine.start_import_tab("contacts");
    let c0: Vec<&str> = s.contact_rows[0].iter().map(String::as_str).collect();
    let contacts_doc = s.contacts_doc;
    s.engine.paste_example(contacts_doc, &c0);
    s.engine.accept_suggested_rows();
    s.engine.name_column(0, "Person");
    s.engine.name_column(2, "VenueRef");
    s.engine.commit_source("Contacts");
    // Demonstrated matches: true venue name vs its mangled form. These
    // train the matcher *and* declare the Name–VenueRef association.
    for i in 0..3.min(s.contact_rows.len()) {
        let true_name = &s.world.venues[s.contact_truth[i]].name;
        s.engine.demonstrate_link(true_name, &s.contact_rows[i][2], true);
    }
    s.engine.declare_link("Shelters", "Name", "Contacts", "VenueRef");
    println!("Demonstrated 3 record-link matches; matcher trained.\n");

    // --- Stage 3: geocode the shelters and accept contact columns. ---
    // Switch back to the shelters tab and ask for completions.
    {
        let engine = &mut s.engine;
        // Tab 0 is the shelters source.
        let ws_index = 0;
        assert!(workspace_switch(engine, ws_index));
    }
    let suggestions = s.engine.column_suggestions();
    println!("Completions offered on the Shelters query:");
    for c in &suggestions {
        let names: Vec<&str> = c.new_fields.iter().map(|f| f.name.as_str()).collect();
        println!("  {:<45} adds {:?}", c.label, names);
    }
    let contact = suggestions
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Phone"))
        .expect("record-link completion brings the contact columns");
    let linked = contact
        .values
        .iter()
        .filter(|v| v.iter().any(|x| !x.is_empty()))
        .count();
    s.engine.accept_column(contact);
    println!(
        "\nAccepted the contact columns: {linked} of {} shelters linked.\n",
        s.shelter_rows.len()
    );

    let suggestions = s.engine.column_suggestions();
    let geo = suggestions
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Lat"))
        .expect("geocoder completion");
    s.engine.accept_column(geo);
    println!("Accepted the geocoder columns.\n");

    // --- Stage 4: export the mashup. ---
    let tab = s.engine.workspace().active();
    let name_col = 0;
    let lat_col = tab.columns.iter().position(|c| c.name == "Lat").expect("lat");
    let lon_col = tab.columns.iter().position(|c| c.name == "Lon").expect("lon");
    let (kml, placemarks) = export::to_kml(tab, name_col, lat_col, lon_col);
    println!("KML export: {placemarks} placemarks, {} bytes.", kml.len());
    println!("First lines:\n{}", kml.lines().take(8).collect::<Vec<_>>().join("\n"));

    let json = export::to_json(tab);
    println!("\nJSON export: {} bytes (first object below).", json.len());
    println!(
        "{}",
        json.lines().take(10).collect::<Vec<_>>().join("\n")
    );
}

/// Switch the engine's workspace tab (helper: the workspace is only
/// exposed immutably; integration queries track the active tab).
fn workspace_switch(engine: &mut copycat::core::CopyCat, index: usize) -> bool {
    engine.switch_tab(index)
}
