//! Feedback learning in action: how one item of feedback can flip the
//! ranking of integration queries (the §5 claim reproduced in E2).
//!
//! Builds the Figure-4 source graph, adversarially perturbs the edge
//! costs so the wrong query ranks first, then applies MIRA updates from
//! simulated user feedback until the preferred query wins.
//!
//! Run with: `cargo run --example feedback_learning`

use copycat::graph::{
    discover_associations, top_k_steiner, AssocOptions, Mira, SourceGraph,
};
use copycat::query::{Field, Schema};

fn main() {
    // The running example's graph: Shelters, Contacts, and the ZipCodes
    // service (Figure 4).
    let mut g = SourceGraph::new();
    g.add_relation(
        "Shelters",
        Schema::new(vec![
            Field::new("Name"),
            Field::typed("Street", "PR-Street"),
            Field::typed("City", "PR-City"),
        ]),
    );
    g.add_relation(
        "Contacts",
        Schema::new(vec![
            Field::typed("Person", "PR-Person"),
            Field::typed("Phone", "PR-Phone"),
            Field::typed("City", "PR-City"),
        ]),
    );
    g.add_service(
        "ZipCodes",
        Schema::new(vec![
            Field::typed("street", "PR-Street"),
            Field::typed("city", "PR-City"),
            Field::typed("Zip", "PR-Zip"),
        ]),
        2,
    );
    g.add_service(
        "Geocoder",
        Schema::new(vec![
            Field::typed("street", "PR-Street"),
            Field::typed("city", "PR-City"),
            Field::typed("Lat", "PR-LatLon"),
            Field::typed("Lon", "PR-LatLon"),
        ]),
        2,
    );
    let added = discover_associations(&mut g, &AssocOptions::default());
    println!("Discovered {added} associations:\n{g}");

    // The user is building Shelters+ZipCodes, but we perturb costs so a
    // competing query (through the Geocoder) ranks first.
    let shelters = g.node_by_name("Shelters").unwrap();
    let zip = g.node_by_name("ZipCodes").unwrap();
    let geo = g.node_by_name("Geocoder").unwrap();
    let zip_edge = g
        .incident(shelters)
        .iter()
        .copied()
        .find(|&e| g.other_end(e, shelters) == zip)
        .unwrap();
    let geo_edge = g
        .incident(shelters)
        .iter()
        .copied()
        .find(|&e| g.other_end(e, shelters) == geo)
        .unwrap();
    g.set_cost(zip_edge, 1.4);
    g.set_cost(geo_edge, 0.7);

    let rank = |g: &SourceGraph| {
        let trees = top_k_steiner(g, &[shelters, zip], 4);
        println!("Query ranking (terminals: Shelters, ZipCodes):");
        for (i, t) in trees.iter().enumerate() {
            let names: Vec<&str> = t.nodes.iter().map(|&n| g.node(n).name.as_str()).collect();
            println!("  #{i} cost {:.2}  {:?}", t.cost, names);
        }
        trees
    };

    println!("\nBefore feedback:");
    let before = rank(&g);

    // One item of feedback: the user accepts the direct zip completion
    // (tree #0 may route through the Geocoder; the preferred tree is the
    // direct edge).
    let preferred = vec![zip_edge];
    let mira = Mira::default();
    let mut updates = 0;
    for t in &before {
        if t.edges != preferred {
            updates += usize::from(mira.apply(&mut g, &preferred, &t.edges) > 0.0);
        }
    }
    println!("\nApplied {updates} MIRA update(s) from one accepted suggestion.");

    println!("\nAfter feedback:");
    let after = rank(&g);
    assert_eq!(after[0].edges, preferred, "preferred query now ranks first");
    println!("\nThe user's preferred query ranks first after a single feedback item.");
}
