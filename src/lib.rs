//! Facade crate re-exporting the whole CopyCat system.
pub use copycat_core as core;
pub use copycat_document as document;
pub use copycat_extract as extract;
pub use copycat_graph as graph;
pub use copycat_linkage as linkage;
pub use copycat_provenance as provenance;
pub use copycat_query as query;
pub use copycat_semantic as semantic;
pub use copycat_serve as serve;
pub use copycat_services as services;
pub use copycat_store as store;
pub use copycat_transform as transform;
pub use copycat_util as util;
pub use copycat_util::{prop_ensure, prop_ensure_eq};
