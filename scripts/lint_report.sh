#!/usr/bin/env bash
# Audit view of copycat-lint. `check` (the default here, and the verify
# gate) prints violations and the clean/runtime summary; `--json` emits
# every finding including baselined ones, with per-finding rule
# provenance and the analyzer's runtime_ms, so CI can archive reports
# and trend lint latency. See DESIGN.md § Static analysis for the rule
# catalogue and `// lint:allow(<rule>) <reason>` suppression syntax.
#
#   lint_report.sh                 human summary (exit 1 on violations)
#   lint_report.sh --json          full findings report as JSON on stdout
#   lint_report.sh --json out.json ...also written to out.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--json" ]]; then
  if [[ $# -ge 2 ]]; then
    cargo run --release --offline -q -p copycat-lint -- json | tee "$2"
  else
    cargo run --release --offline -q -p copycat-lint -- json
  fi
else
  cargo run --release --offline -q -p copycat-lint -- check
fi
