#!/usr/bin/env bash
# Emit the full copycat-lint findings report as JSON on stdout (pass a
# path as $1 to also write it to a file). Unlike `check`, this reports
# every finding including baselined ones — it's the audit view, not the
# gate. See DESIGN.md § Static analysis for the rule catalogue and
# `// lint:allow(<rule>) <reason>` suppression syntax.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -ge 1 ]]; then
  cargo run --release --offline -q -p copycat-lint -- json | tee "$1"
else
  cargo run --release --offline -q -p copycat-lint -- json
fi
