#!/usr/bin/env bash
# Emit the machine-readable perf trajectory at the repo root, so every
# PR leaves numbers the next one can diff against:
#
#   BENCH_steiner.json — the E3 Steiner scale-up sweep. Rows are
#     {nodes, terminals, exact_us, spcsh_us, ratio}; exact_us/ratio are
#     null where the exact solve is out of the sweep's range.
#   BENCH_serve.json — the serve-layer sweeps as
#     {"load": …, "recovery": …, "cross_shard": …, "mem": …, "herd": …}.
#     "load" rows are {clients, requests, ok, elapsed_us,
#     throughput_rps, p50_us, p99_us}; "recovery" rows are
#     kill-and-recover timings {records, snapshot_every,
#     journal_elapsed_us, recover_us, replayed, snapshots, intact};
#     "cross_shard" rows are router throughput + live-migration cost
#     {shards, clients, requests, ok, elapsed_us, throughput_rps,
#     migrate_mean_us, migrations}; "mem" is the copy-on-write memory
#     experiment {rows: [{mode, sessions, marginal_bytes_per_session,
#     sessions_per_gb, allocs_per_request}], reduction_x} comparing flat
#     private worlds to shared-WorldBase overlays; "herd" is the
#     10k-session sweep {sessions, create_elapsed_us, requests, ok,
#     elapsed_us, throughput_rps, p50_us, p99_us,
#     marginal_bytes_per_session, sessions_per_gb}.
#   BENCH_faults.json — {"f1": …, "recovery_under_fault": …}. "f1" is
#     the fault-tolerance sweep (failure rate x {no-retry, retry,
#     retry+failover}); rows are {rate, mode, completeness, degraded,
#     virtual_ms, retries, trips}, and virtual_ms is simulated time, so
#     those rows ARE machine-independent. "recovery_under_fault" is the
#     storage-fault crash storm: "sweep" rows are {stride, workload_ops,
#     runs, faults_fired, acked, recovered, quarantined, tail_lost,
#     silent_losses, elapsed_us, mean_run_us} (loss accounting on SimFs,
#     machine-independent; only the timings are wall clock), and
#     "real_fs_overhead" is the StoreFs-trait-vs-raw-std::fs guard
#     {records, syncs, via_trait_us, via_std_us, ratio}.
#   BENCH_transform.json — the T1 transform-synthesis sweep (messy-format
#     world, service-only vs learned transform). Rows are {venues, mode,
#     completeness, learn_ms, suggest_ms, amortized_ms, program,
#     coverage}; the *_ms fields are wall clock for the interactive
#     learn + suggest path.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_steiner.json"
cargo run --release --offline -p copycat-bench --bin harness -- e3-json > "$OUT"
test -s "$OUT" || { echo "bench_json: $OUT is empty" >&2; exit 1; }
echo "bench_json: wrote $OUT ($(wc -c < "$OUT") bytes)"

OUT="BENCH_serve.json"
cargo run --release --offline -p copycat-bench --bin harness -- serve-json > "$OUT"
test -s "$OUT" || { echo "bench_json: $OUT is empty" >&2; exit 1; }
echo "bench_json: wrote $OUT ($(wc -c < "$OUT") bytes)"

OUT="BENCH_faults.json"
cargo run --release --offline -p copycat-bench --bin harness -- faults-json > "$OUT"
test -s "$OUT" || { echo "bench_json: $OUT is empty" >&2; exit 1; }
echo "bench_json: wrote $OUT ($(wc -c < "$OUT") bytes)"

OUT="BENCH_transform.json"
cargo run --release --offline -p copycat-bench --bin harness -- transforms-json > "$OUT"
test -s "$OUT" || { echo "bench_json: $OUT is empty" >&2; exit 1; }
echo "bench_json: wrote $OUT ($(wc -c < "$OUT") bytes)"
