#!/usr/bin/env bash
# Emit the E3 Steiner scale-up sweep as machine-readable JSON
# (BENCH_steiner.json at the repo root), so every PR leaves a perf
# trajectory the next one can diff against. Rows are
# {nodes, terminals, exact_us, spcsh_us, ratio}; exact_us/ratio are null
# where the exact solve is out of the sweep's range.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_steiner.json"
cargo run --release --offline -p copycat-bench --bin harness -- e3-json > "$OUT"
test -s "$OUT" || { echo "bench_json: $OUT is empty" >&2; exit 1; }
echo "bench_json: wrote $OUT ($(wc -c < "$OUT") bytes)"
