#!/usr/bin/env bash
# The offline verification gate: proves the hermetic build holds.
# Builds everything, runs the full test suite, and regenerates the E1
# table — all with --offline, so any reintroduced registry dependency
# fails here before it reaches CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
# Invariant lint: zero non-baselined findings (wall-clock reads, random
# hasher state, panics on request paths, lock-order cycles, protocol
# gaps, hot-path allocations, …). The ratchet lives in
# LINT_BASELINE.json; see DESIGN.md § Static analysis. The budget keeps
# whole-tree analysis (symbol index + call graph) from creeping into CI
# latency — it runs in well under a second today.
cargo run --release --offline -q -p copycat-lint -- check --budget-ms 20000
cargo test -q --offline --workspace
cargo run --release --offline -p copycat-bench --bin harness -- e1
# Serve smoke: spawn an in-process copycat-serve, round-trip one request
# of every request class, and drain gracefully. Exits non-zero if any
# required class fails.
cargo run --release --offline -p copycat-serve -- smoke
# Chaos smoke: hard-down primary behind retry + circuit breaker fails
# over to a healthy replacement alias; health reports the trip with
# virtual (never wallclock) backoff. Exits non-zero on any regression.
cargo run --release --offline -p copycat-serve -- chaos
# Recover smoke: durable router journals traffic, crashes (dropped
# without shutdown), recovers from snapshot + WAL, and must answer
# byte-identically to a never-crashed control.
cargo run --release --offline -p copycat-serve -- recover
# Crash-storm smoke: the storage-fault sweep on the simulated
# filesystem — every fault kind (short writes, torn appends,
# failed/lying fsyncs, bit flips, partial reads, ENOSPC) injected at
# every I/O operation of a seeded workload, each run killed, recovered,
# and checked for the no-silent-loss property: every acked effect is
# byte-identically present or explicitly reported lost.
cargo run --release --offline -p copycat-serve -- crash-storm
# Transforms smoke: learn a string-transform program bridging two
# incompatibly formatted sources, accept the suggested transform edge,
# crash, and require the recovered session to answer byte-identically.
cargo run --release --offline -p copycat-serve -- transforms
# Herd smoke: 10k copy-on-write sessions over one shared world on one
# server; probes a sample end to end and asserts the marginal memory
# cost keeps >=100k sessions per GiB.
cargo run --release --offline -p copycat-serve -- herd
# Smoke: the perf-trajectory emitter runs and produces non-empty JSON
# (no timing assertions — numbers vary by machine).
scripts/bench_json.sh
