//! `spawn-discipline` — free-running threads only come from the pool.
//!
//! `thread::spawn` creates a detached thread unless someone remembers
//! its `JoinHandle`; a forgotten handle is a thread that outlives
//! shutdown, races drains, and turns deterministic tests flaky. The
//! workspace has exactly one place allowed to own long-lived threads —
//! `crates/serve/src/pool.rs`, whose whole contract is spawning, naming
//! and joining workers. Everything else uses `std::thread::scope`, whose
//! `scope.spawn` is structurally joined (and, not being `thread::spawn`,
//! does not trip this rule).

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

const ALLOWED_FILES: [&str; 1] = ["crates/serve/src/pool.rs"];

/// The rule. Test code is exempt — tests spawn throwaway clients and
/// join them in view of the assertion.
pub struct SpawnDiscipline;

impl Rule for SpawnDiscipline {
    fn name(&self) -> &'static str {
        "spawn-discipline"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&ctx.path.as_str()) {
            return;
        }
        for needle in [&["thread", "::", "spawn"][..], &["thread", "::", "Builder"][..]] {
            for i in ctx.find_all(needle) {
                if ctx.in_test(i) {
                    continue;
                }
                ctx.report(
                    out,
                    self.name(),
                    ctx.toks[i].line,
                    format!(
                        "thread::{} outside serve::pool — use std::thread::scope \
                         (structurally joined) or route the work through the worker pool",
                        needle[2]
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn loose_spawn_fires_outside_the_pool() {
        let src = "fn f() { std::thread::spawn(|| work()); }";
        let found = run_at("crates/graph/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "spawn-discipline");
        let builder = "fn f() { thread::Builder::new().name(n).spawn(w); }";
        assert_eq!(run_at("crates/core/src/x.rs", builder).len(), 1);
    }

    #[test]
    fn pool_scoped_spawns_and_tests_pass() {
        let src = "fn f() { std::thread::spawn(|| work()); }";
        assert!(run_at("crates/serve/src/pool.rs", src).is_empty());
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| work()); }); }";
        assert!(run_at("crates/graph/src/x.rs", scoped).is_empty());
        let test = "#[test]\nfn t() { std::thread::spawn(|| work()).join(); }";
        assert!(run_at("crates/graph/src/x.rs", test).is_empty());
    }
}
