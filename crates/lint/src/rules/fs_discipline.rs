//! `fs-discipline` — direct filesystem access is banned outside the
//! one module that owns it.
//!
//! Every byte the store writes must flow through the [`StoreFs`] trait
//! (`crates/store/src/io.rs`): that is what lets the deterministic
//! fault-injecting filesystem (`SimFs`) see — and corrupt — every WAL
//! append, snapshot rewrite, and fsync in the crash-storm sweep. A
//! stray `std::fs::write` or `File::create` anywhere on the durable
//! path is I/O the storm cannot reach: it looks crash-safe in every
//! test and tears on a real disk. So `std::fs`, `File::`, and
//! `OpenOptions::` are confined to: `crates/store/src/io.rs` (the
//! `RealFs` passthrough itself), `crates/lint/` (the linter reads the
//! source tree it audits), and `crates/bench/` (bench roots live in
//! `temp_dir`, and the trait-overhead guard times a raw `std::fs` loop
//! *on purpose* as its baseline). Test code is exempt: fixtures and
//! temp-dir helpers are not on the durable path.
//!
//! [`StoreFs`]: ../../../store/src/io.rs

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

const ALLOWED_FILES: [&str; 1] = ["crates/store/src/io.rs"];
const ALLOWED_DIRS: [&str; 2] = ["crates/lint/", "crates/bench/"];

/// The rule: see the module docs for the confinement rationale.
pub struct FsDiscipline;

impl Rule for FsDiscipline {
    fn name(&self) -> &'static str {
        "fs-discipline"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&ctx.path.as_str())
            || ALLOWED_DIRS.iter().any(|d| ctx.path.starts_with(d))
        {
            return;
        }
        for (needle, what) in [
            (&["std", "::", "fs"][..], "std::fs"),
            (&["File", "::"][..], "File::"),
            (&["OpenOptions", "::"][..], "OpenOptions::"),
        ] {
            for i in ctx.find_all(needle) {
                if ctx.in_test(i) {
                    continue;
                }
                ctx.report(
                    out,
                    self.name(),
                    ctx.toks[i].line,
                    format!(
                        "{what} outside store::io bypasses the StoreFs trait — I/O the \
                         fault-injecting SimFs can never reach"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{rules_fired, run_at};

    #[test]
    fn flags_direct_fs_access_in_production_code() {
        let src = "use std::fs;\n\
                   fn save(p: &std::path::Path) { fs::write(p, b\"x\").unwrap(); }\n\
                   fn open(p: &std::path::Path) { let _ = File::open(p); }\n\
                   fn opts() { let _ = OpenOptions::new(); }";
        let found = run_at("crates/store/src/x.rs", src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "fs-discipline"));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 3);
        assert_eq!(found[2].line, 4);
    }

    #[test]
    fn store_io_lint_and_bench_are_sanctioned() {
        let src = "fn f(p: &std::path::Path) { std::fs::write(p, b\"x\").unwrap(); }";
        assert!(run_at("crates/store/src/io.rs", src).is_empty());
        assert!(run_at("crates/lint/src/walk.rs", src).is_empty());
        assert!(run_at("crates/bench/src/serve_load.rs", src).is_empty());
    }

    #[test]
    fn store_allowlist_is_io_only() {
        // The WAL and snapshot modules must go through the trait too —
        // they are exactly the code the fault sweep exists to exercise.
        let src = "fn f(p: &std::path::Path) { std::fs::write(p, b\"x\").unwrap(); }";
        assert_eq!(run_at("crates/store/src/wal.rs", src).len(), 1);
        assert_eq!(run_at("crates/store/src/snapshot.rs", src).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn temp() { let _ = std::fs::remove_dir_all(\"/tmp/x\"); }\n}";
        assert!(run_at("crates/serve/src/router.rs", src).is_empty());
    }

    #[test]
    fn trait_usage_and_string_mentions_do_not_fire() {
        let src = "fn f(fs: &Fs, p: &std::path::Path) { fs.write_sync(p, b\"x\").unwrap(); }\n\
                   pub const DOC: &str = \"std::fs::File::open is banned\";\n\
                   fn g(file: &mut Box<dyn StoreFile>) { file.sync_data().unwrap(); }";
        assert_eq!(rules_fired("crates/store/src/wal.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "// lint:allow(fs-discipline) one-shot migration tool, not on the durable path\n\
                   fn f() { let _ = std::fs::read(\"x\"); }";
        assert!(run_at("crates/core/src/x.rs", src).is_empty());
    }
}
