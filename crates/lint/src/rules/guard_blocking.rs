//! `guard-across-blocking` — no lock guard held across a blocking
//! channel/thread call.
//!
//! The serving layer's backpressure design makes this the deadlock
//! shape: `util::channel::send`/`recv` block on a condvar until a peer
//! makes progress, and a worker that blocks while holding a
//! `Mutex`/`RwLock` guard can be the very thing preventing that peer
//! from progressing (e.g. holding a session lock while `send`ing into a
//! full queue whose drainer needs the same session). The rule flags a
//! guard *binding* — a `let` whose initializer ends in `.lock()`,
//! `.read()` or `.write()` — that is still live in the same block when a
//! `.send(` / `.try_send(` / `.recv(` / `.join(` call appears. An
//! explicit `drop(guard)` before the call ends the guard's liveness.
//!
//! Temporary guards (`map.read().get(..)` chains that end the statement)
//! are not bindings and are not flagged.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::lex::TokKind;
use crate::rules::Rule;

/// Method tails that acquire a guard when they end a `let` initializer.
const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];
/// Method names that can block on peer progress.
const BLOCKERS: [&str; 4] = ["send", "try_send", "recv", "join"];

/// The rule. Test code is exempt (tests routinely hold guards across
/// `join` on purpose, with the full schedule in view).
pub struct GuardAcrossBlocking;

impl Rule for GuardAcrossBlocking {
    fn name(&self) -> &'static str {
        "guard-across-blocking"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks = &ctx.toks;
        let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
        for i in 0..toks.len() {
            if text(i) != Some("let") || ctx.in_test(i) {
                continue;
            }
            let d = ctx.depth[i];
            // `let [mut] <name> [: T] = …;` — simple bindings only.
            let mut j = i + 1;
            if text(j) == Some("mut") {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let guard_name = name_tok.text.clone();
            // Find the statement-ending `;` back at the let's depth.
            let Some(end) = (j..toks.len()).find(|&k| text(k) == Some(";") && ctx.depth[k] == d)
            else {
                continue;
            };
            // Guard binding iff the initializer ends `.lock()`/`.read()`/`.write()`.
            let is_guard = end >= 4
                && text(end - 4) == Some(".")
                && toks.get(end - 3).is_some_and(|t| ACQUIRERS.contains(&t.text.as_str()))
                && text(end - 2) == Some("(")
                && text(end - 1) == Some(")");
            if !is_guard {
                continue;
            }
            let acquired_line = toks[i].line;
            // Scan the rest of the enclosing block for a blocking call,
            // stopping at `drop(<guard>)` or the block's closing brace.
            let mut k = end + 1;
            while k < toks.len() {
                if text(k) == Some("}") && ctx.depth[k] == d {
                    break; // end of the guard's scope
                }
                if ctx.seq(k, &["drop", "(", &guard_name, ")"]) {
                    break; // explicitly released
                }
                if text(k) == Some(".")
                    && toks.get(k + 1).is_some_and(|t| BLOCKERS.contains(&t.text.as_str()))
                    && text(k + 2) == Some("(")
                {
                    ctx.report(
                        out,
                        self.name(),
                        toks[k + 1].line,
                        format!(
                            ".{}( while guard `{}` (acquired line {acquired_line}) is live — \
                             a blocking call under a lock can deadlock against channel \
                             backpressure; drop the guard first",
                            toks[k + 1].text, guard_name
                        ),
                    );
                    break; // one finding per guard binding
                }
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn guard_live_across_send_fires() {
        let src = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  let g = m.lock();\n  \
                   tx.send(*g);\n}";
        let found = run_at("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "guard-across-blocking");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn drop_before_send_and_inner_scope_pass() {
        let dropped = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  let g = m.lock();\n  \
                       let v = *g;\n  drop(g);\n  tx.send(v);\n}";
        assert!(run_at("crates/serve/src/x.rs", dropped).is_empty());
        let scoped = "fn f(m: &Mutex<u8>, tx: &Sender<u8>) {\n  let v = { let g = m.lock(); *g };\n  \
                      tx.send(v);\n}";
        assert!(run_at("crates/serve/src/x.rs", scoped).is_empty());
    }

    #[test]
    fn temporary_guards_and_rwlock_variants() {
        let temp = "fn f(m: &RwLock<Map>) -> usize { let n = m.read().len();\n  n }";
        assert!(run_at("crates/serve/src/x.rs", temp).is_empty());
        let write = "fn f(m: &RwLock<u8>, rx: &Receiver<u8>) {\n  let mut g = m.write();\n  \
                     *g = rx.recv().unwrap_or(0);\n}";
        let found = run_at("crates/core/src/x.rs", write);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "guard-across-blocking");
    }

    #[test]
    fn join_under_guard_fires() {
        let src = "fn f(m: &Mutex<u8>, h: JoinHandle<()>) {\n  let g = m.lock();\n  \
                   let _ = h.join();\n}";
        assert_eq!(run_at("crates/graph/src/x.rs", src).len(), 1);
    }
}
