//! `wallclock` — wall-clock reads are banned outside the three places
//! that own time.
//!
//! The reproduction's experiments and the serving layer's tests depend
//! on *virtual* time: `Flaky` latency is an accrued counter, deadlines
//! charge it explicitly, and a request script must produce
//! byte-identical responses on any machine at any load. One stray
//! `Instant::now()` in an operator turns a deterministic replay into a
//! flaky one. Time is therefore confined to: `crates/serve/src/deadline.rs`
//! (the deadline clock), `crates/util/src/bench.rs` (the bench harness),
//! `crates/store/src/wal.rs` (the WAL's fsync-latency accounting — disk
//! sync time is real wall time by definition, observable only through
//! `StoreStats`, never through a protocol response), and `crates/bench/`
//! (experiment drivers, which *measure* wall time on purpose).

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

const ALLOWED_FILES: [&str; 3] = [
    "crates/serve/src/deadline.rs",
    "crates/util/src/bench.rs",
    "crates/store/src/wal.rs",
];
const ALLOWED_DIRS: [&str; 1] = ["crates/bench/"];

/// The rule. Applies to test code too: a test that reads the wall clock
/// is a test whose outcome depends on the machine.
pub struct Wallclock;

impl Rule for Wallclock {
    fn name(&self) -> &'static str {
        "wallclock"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        if ALLOWED_FILES.contains(&ctx.path.as_str())
            || ALLOWED_DIRS.iter().any(|d| ctx.path.starts_with(d))
        {
            return;
        }
        for clock in ["Instant", "SystemTime"] {
            for i in ctx.find_all(&[clock, "::", "now"]) {
                ctx.report(
                    out,
                    self.name(),
                    ctx.toks[i].line,
                    format!(
                        "{clock}::now() outside serve::deadline / util::bench / crates/bench \
                         breaks virtual-time determinism"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{rules_fired, run_at};

    #[test]
    fn flags_wall_clock_reads_anywhere_including_tests() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { let t = std::time::SystemTime::now(); }\n}";
        let found = run_at("crates/graph/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "wallclock"));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 4);
    }

    #[test]
    fn allowed_owners_of_time_pass() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run_at("crates/serve/src/deadline.rs", src).is_empty());
        assert!(run_at("crates/util/src/bench.rs", src).is_empty());
        assert!(run_at("crates/bench/src/e3_steiner.rs", src).is_empty());
        // The WAL's fsync-latency accounting owns real disk time.
        assert!(run_at("crates/store/src/wal.rs", src).is_empty());
    }

    #[test]
    fn store_allowlist_is_the_wal_only() {
        // Durability stats may time fsyncs, but nothing else in the
        // store crate gets the wall clock: snapshots, recovery, and the
        // router's replay path must all stay virtually timed.
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(run_at("crates/store/src/store.rs", src).len(), 1);
        assert_eq!(run_at("crates/store/src/lib.rs", src).len(), 1);
        assert_eq!(run_at("crates/serve/src/router.rs", src).len(), 1);
    }

    #[test]
    fn retry_and_breaker_machinery_is_not_allowlisted() {
        // The resilience layer (retry backoff, circuit breakers) runs on
        // a virtual clock by design; a wall-clock read there must fire.
        // This pins that no allowlist entry was added for it.
        let src = "fn f() { let t = Instant::now(); }";
        let found = run_at("crates/services/src/health.rs", src);
        assert_eq!(found.len(), 1, "health.rs must not own wall time");
        assert!(run_at("crates/services/src/faults.rs", src).len() == 1);
    }

    #[test]
    fn string_mentions_do_not_fire() {
        assert_eq!(
            rules_fired("crates/core/src/x.rs", "fn f() { log(\"Instant::now\"); }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "// lint:allow(wallclock) boot banner timestamp, never in a result\n\
                   fn f() { let t = SystemTime::now(); }";
        assert!(run_at("crates/core/src/x.rs", src).is_empty());
    }
}
