//! The rule engine: every invariant is one [`Rule`] over a [`FileCtx`].
//!
//! Rule catalogue (see `DESIGN.md` § Static analysis for the rationale):
//!
//! | rule | strict | scope |
//! |------|--------|-------|
//! | `wallclock` | yes | everywhere except `serve::deadline`, `util::bench`, `crates/bench` |
//! | `randomstate` | yes | everywhere except `crates/util` |
//! | `panic-path` | yes | `crates/serve/src` request paths (not tests, not the smoke harness) |
//! | `unsafe-safety` | yes | everywhere |
//! | `relaxed-atomics` | no | non-test code, all crates |
//! | `guard-across-blocking` | no | non-test code, all crates |
//! | `spawn-discipline` | no | non-test code except `serve::pool` |
//!
//! *Strict* rules may never appear in the baseline: a finding is fixed
//! or suppressed inline with a reason, never ratcheted.

pub mod guard_blocking;
pub mod panic_path;
pub mod randomstate;
pub mod relaxed_atomics;
pub mod spawn_discipline;
pub mod unsafe_safety;
pub mod wallclock;

use crate::file::FileCtx;
use crate::findings::Finding;

/// One invariant checker.
pub trait Rule {
    /// The kebab-case rule name used in findings, suppressions, and the
    /// baseline.
    fn name(&self) -> &'static str;
    /// Scan one file, appending findings.
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>);
}

/// Every rule, in catalogue order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wallclock::Wallclock),
        Box::new(randomstate::RandomStateRule),
        Box::new(panic_path::PanicPath),
        Box::new(relaxed_atomics::RelaxedAtomics),
        Box::new(guard_blocking::GuardAcrossBlocking),
        Box::new(spawn_discipline::SpawnDiscipline),
        Box::new(unsafe_safety::UnsafeSafety),
    ]
}

/// Rule names whose findings can never be baselined ("strict"): they
/// guard the determinism contract itself, so the only ways past them
/// are a fix or an inline `lint:allow` with a reason.
pub const STRICT: [&str; 4] = ["wallclock", "randomstate", "panic-path", "unsafe-safety"];

/// Every rule name (for suppression validation).
pub fn names() -> Vec<&'static str> {
    all().iter().map(|r| r.name()).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Run every rule over `src` as if it lived at `path`; return the
    /// surviving findings in canonical order.
    pub fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let names = names();
        let ctx = FileCtx::new(path, src, &names);
        let mut out = ctx.bad_suppressions.clone();
        for rule in all() {
            rule.check(&ctx, &mut out);
        }
        crate::findings::sort(&mut out);
        out
    }

    /// Rule names that fired, deduplicated, sorted.
    pub fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = run_at(path, src).iter().map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }
}
