//! The rule engine: per-file invariants are a [`Rule`] over a
//! [`FileCtx`]; cross-file invariants are a [`TreeRule`] over the
//! phase-1 [`SymbolIndex`] and call graph.
//!
//! Rule catalogue (see `DESIGN.md` § Static analysis for the rationale):
//!
//! | rule | strict | scope |
//! |------|--------|-------|
//! | `wallclock` | yes | everywhere except `serve::deadline`, `util::bench`, `crates/bench` |
//! | `fs-discipline` | yes | non-test code everywhere except `store::io`, `crates/lint`, `crates/bench` |
//! | `randomstate` | yes | everywhere except `crates/util` |
//! | `panic-path` | yes | `crates/serve/src` request paths (not tests, not the smoke harness) |
//! | `unsafe-safety` | yes | everywhere |
//! | `hot-path-alloc` | yes | declared `lint:hotpath` regions |
//! | `lock-order` | yes | non-test code, all crates except `crates/util` |
//! | `protocol-exhaustiveness` | yes | the `Op` enum and its companion artifacts |
//! | `relaxed-atomics` | no | non-test code, all crates |
//! | `guard-across-blocking` | no | non-test code, all crates (single-block and interprocedural) |
//! | `spawn-discipline` | no | non-test code except `serve::pool` |
//! | `stale-suppression` | yes | every `lint:allow` that silences nothing |
//!
//! *Strict* rules may never appear in the baseline: a finding is fixed
//! or suppressed inline with a reason, never ratcheted.
//! `stale-suppression` is stricter still — it is not a suppressible
//! rule name at all, so a stale allow cannot be allowed; it is deleted.

pub mod fs_discipline;
pub mod guard_blocking;
pub mod hotpath;
pub mod lock_order;
pub mod panic_path;
pub mod protocol;
pub mod randomstate;
pub mod relaxed_atomics;
pub mod spawn_discipline;
pub mod unsafe_safety;
pub mod wallclock;

use crate::callgraph::CallGraph;
use crate::file::FileCtx;
use crate::findings::Finding;
use crate::index::SymbolIndex;

/// One per-file invariant checker (phase 1).
pub trait Rule {
    /// The kebab-case rule name used in findings, suppressions, and the
    /// baseline.
    fn name(&self) -> &'static str;
    /// Scan one file, appending findings.
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>);
}

/// One whole-tree invariant checker (phase 2): sees every file at once
/// through the symbol index and the call graph.
pub trait TreeRule {
    /// The kebab-case rule name.
    fn name(&self) -> &'static str;
    /// Scan the tree, appending findings.
    fn check(&self, index: &SymbolIndex, graph: &CallGraph, out: &mut Vec<Finding>);
}

/// Every per-file rule, in catalogue order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wallclock::Wallclock),
        Box::new(fs_discipline::FsDiscipline),
        Box::new(randomstate::RandomStateRule),
        Box::new(panic_path::PanicPath),
        Box::new(relaxed_atomics::RelaxedAtomics),
        Box::new(guard_blocking::GuardAcrossBlocking),
        Box::new(spawn_discipline::SpawnDiscipline),
        Box::new(unsafe_safety::UnsafeSafety),
        Box::new(hotpath::HotPathAlloc),
    ]
}

/// Every whole-tree rule, in catalogue order.
pub fn tree_rules() -> Vec<Box<dyn TreeRule>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(protocol::ProtocolExhaustiveness),
    ]
}

/// Rule names whose findings can never be baselined ("strict"): they
/// guard the determinism and deadlock-freedom contracts themselves, so
/// the only ways past them are a fix or an inline `lint:allow` with a
/// reason.
pub const STRICT: &[&str] = &[
    "wallclock",
    "fs-discipline",
    "randomstate",
    "panic-path",
    "unsafe-safety",
    "hot-path-alloc",
    "lock-order",
    "protocol-exhaustiveness",
];

/// Every suppressible rule name (for `lint:allow` validation). Note
/// `stale-suppression` is deliberately absent: allowing a stale allow
/// is itself a `bad-suppression`.
pub fn names() -> Vec<&'static str> {
    let mut n: Vec<&'static str> = all().iter().map(|r| r.name()).collect();
    n.extend(tree_rules().iter().map(|r| r.name()));
    n
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::Finding;

    /// Run the full two-phase pipeline over `src` as if it lived at
    /// `path`; return the surviving findings in canonical order.
    pub fn run_at(path: &str, src: &str) -> Vec<Finding> {
        crate::analyze_source(path, src)
    }

    /// Rule names that fired, deduplicated, sorted.
    pub fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = run_at(path, src).iter().map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }
}
