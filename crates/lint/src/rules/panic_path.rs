//! `panic-path` — no panics on `crates/serve` request paths.
//!
//! A panic in a pooled worker has two failure modes, both worse than an
//! error response: without a catch it kills the worker (shrinking the
//! pool until the server deadlocks), and even with the pool's
//! `catch_unwind` net it turns a typed, client-dispatchable error into a
//! generic `internal`. Request-path code must route failures through the
//! [`ErrorKind`] taxonomy instead.
//!
//! Scope: all non-test code under `crates/serve/src/` **except**
//! `smoke.rs` — the smoke subcommand is a client-side checker whose job
//! is to abort loudly when a response is malformed; it runs no requests,
//! it issues them.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

/// Panicking idents followed by `(`.
const CALLS: [&str; 2] = ["unwrap", "expect"];
/// Panicking macros followed by `!`.
const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// The rule.
pub struct PanicPath;

impl Rule for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        if !ctx.path.starts_with("crates/serve/src/") || ctx.path == "crates/serve/src/smoke.rs" {
            return;
        }
        for (name, follower, what) in CALLS
            .iter()
            .map(|c| (*c, "(", "panics the worker on Err/None"))
            .chain(MACROS.iter().map(|m| (*m, "!", "panics the worker")))
        {
            for i in ctx.find_all(&[name, follower]) {
                if ctx.in_test(i) {
                    continue;
                }
                ctx.report(
                    out,
                    self.name(),
                    ctx.toks[i].line,
                    format!(
                        "{name}{} on a serve request path {what}; route through the \
                         ErrorKind taxonomy (`internal` for invariant failures)",
                        if follower == "(" { "()" } else { "!" }
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn flags_each_panicking_form() {
        let src = "fn f(x: Option<u8>) {\n  x.unwrap();\n  x.expect(\"boom\");\n  \
                   panic!(\"no\");\n  unreachable!();\n}";
        let found = run_at("crates/serve/src/server.rs", src);
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.rule == "panic-path"));
        assert_eq!(found.iter().map(|f| f.line).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn tests_other_crates_and_the_smoke_harness_pass() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(run_at("crates/core/src/engine.rs", src).is_empty());
        assert!(run_at("crates/serve/src/smoke.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u8>.unwrap(); }\n}";
        assert!(run_at("crates/serve/src/pool.rs", in_test).is_empty());
    }

    #[test]
    fn unwrap_or_variants_pass() {
        let src = "fn f(x: Option<u8>) { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }";
        assert!(run_at("crates/serve/src/server.rs", src).is_empty());
    }
}
