//! `hot-path-alloc` — no allocating calls inside declared hot-path
//! regions.
//!
//! The zero-copy serving work (CoW worlds, borrowed request views,
//! pooled scratch) is guarded dynamically by a counting-allocator test,
//! but that test only covers the call sites it drives. This rule makes
//! the guarantee static: a region bracketed by
//!
//! ```text
//! // lint:hotpath(begin)
//! …
//! // lint:hotpath(end)
//! ```
//!
//! may not contain `format!`, `vec!`, `.to_string()`, `.to_owned()`,
//! `.to_vec()`, `.clone()`, `String::from`, `Vec::new`, or
//! `Box::new`. Cold branches inside a region (error arms, pool-miss
//! fallbacks) are annotated with `// lint:allow(hot-path-alloc)
//! <reason>` — the point is that every allocation on a declared hot
//! path is either absent or visibly justified. Unbalanced or nested
//! markers are themselves findings, so a region cannot silently
//! swallow the rest of a file.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

/// `.method(` calls that allocate.
const ALLOC_METHODS: [&str; 4] = ["to_string", "to_owned", "to_vec", "clone"];
/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];
/// `Type::fn` paths that allocate.
const ALLOC_PATHS: [(&str, &str); 3] = [("String", "from"), ("Vec", "new"), ("Box", "new")];

const BEGIN: &str = "lint:hotpath(begin)";
const END: &str = "lint:hotpath(end)";

/// The rule. Test code inside a region is exempt (tests assert on the
/// hot path, they are not on it).
pub struct HotPathAlloc;

impl Rule for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        // Parse regions from the comment stream (inclusive line spans).
        let mut regions: Vec<(u32, u32)> = Vec::new();
        let mut open: Option<u32> = None;
        for c in &ctx.comments {
            if c.text.contains(BEGIN) {
                if let Some(at) = open {
                    ctx.report(
                        out,
                        self.name(),
                        c.line,
                        format!("nested lint:hotpath(begin) — region opened line {at} is still open"),
                    );
                } else {
                    open = Some(c.line);
                }
            } else if c.text.contains(END) {
                match open.take() {
                    Some(b) => regions.push((b, c.line)),
                    None => ctx.report(
                        out,
                        self.name(),
                        c.line,
                        "lint:hotpath(end) without a matching begin".to_string(),
                    ),
                }
            }
        }
        if let Some(at) = open {
            ctx.report(
                out,
                self.name(),
                at,
                "lint:hotpath(begin) never closed — add lint:hotpath(end)".to_string(),
            );
        }
        if regions.is_empty() {
            return;
        }
        let region_of = |line: u32| regions.iter().find(|&&(b, e)| line >= b && line <= e);
        let toks = &ctx.toks;
        let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
        for i in 0..toks.len() {
            let Some(&(begin, _)) = region_of(toks[i].line) else { continue };
            if ctx.in_test(i) {
                continue;
            }
            let flag = |what: &str| {
                format!(
                    "{what} allocates inside the hot-path region starting line {begin}; \
                     hoist it out, reuse scratch, or lint:allow with a reason"
                )
            };
            if ALLOC_MACROS.contains(&toks[i].text.as_str()) && text(i + 1) == Some("!") {
                ctx.report(out, self.name(), toks[i].line, flag(&format!("{}!", toks[i].text)));
            }
            if text(i) == Some(".")
                && toks.get(i + 1).is_some_and(|t| ALLOC_METHODS.contains(&t.text.as_str()))
                && text(i + 2) == Some("(")
            {
                ctx.report(
                    out,
                    self.name(),
                    toks[i + 1].line,
                    flag(&format!(".{}()", toks[i + 1].text)),
                );
            }
            for (ty, f) in ALLOC_PATHS {
                if ctx.seq(i, &[ty, "::", f]) {
                    ctx.report(out, self.name(), toks[i].line, flag(&format!("{ty}::{f}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn allocations_fire_only_inside_regions() {
        let src = "fn cold() -> String { format!(\"x{}\", 1) }\n\
                   // lint:hotpath(begin)\n\
                   fn hot(s: &str) -> usize { s.len() }\n\
                   fn warm(s: &str) -> String { s.to_string() }\n\
                   // lint:hotpath(end)\n\
                   fn cold2(v: &[u8]) -> Vec<u8> { v.to_vec() }";
        let found = run_at("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "hot-path-alloc");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn every_banned_form_fires() {
        let src = "// lint:hotpath(begin)\n\
                   fn f(s: &str, v: &[u8]) {\n\
                     let a = format!(\"{s}\");\n\
                     let b = vec![1];\n\
                     let c = s.to_string();\n\
                     let d = s.to_owned();\n\
                     let e = v.to_vec();\n\
                     let g = a.clone();\n\
                     let h = String::from(s);\n\
                     let i: Vec<u8> = Vec::new();\n\
                     let j = Box::new(1);\n\
                   }\n\
                   // lint:hotpath(end)";
        let found = run_at("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 9, "{found:?}");
    }

    #[test]
    fn suppression_and_tests_inside_regions_pass() {
        let src = "// lint:hotpath(begin)\n\
                   fn f(s: &str) -> String {\n\
                     s.to_string() // lint:allow(hot-path-alloc) cold fallback, pool miss only\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                     fn t() { let x = format!(\"ok\"); }\n\
                   }\n\
                   // lint:hotpath(end)";
        assert!(run_at("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn unbalanced_markers_are_findings() {
        let unclosed = "// lint:hotpath(begin)\nfn f() {}";
        let found = run_at("crates/serve/src/x.rs", unclosed);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("never closed"));
        let dangling = "fn f() {}\n// lint:hotpath(end)";
        let found = run_at("crates/serve/src/x.rs", dangling);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("without a matching begin"));
        let nested = "// lint:hotpath(begin)\n// lint:hotpath(begin)\nfn f() {}\n// lint:hotpath(end)";
        let found = run_at("crates/serve/src/x.rs", nested);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("nested"));
    }
}
