//! `randomstate` — the std default hasher is banned outside `crates/util`.
//!
//! `std::collections::HashMap/HashSet` seed SipHash from process-level
//! randomness, so iteration order differs run to run. Any code that
//! iterates such a map — rendering, tie-breaking, test assertions —
//! becomes nondeterministic, which is exactly the class of bug the
//! Karma/Q/Steiner experiment tables cannot tolerate. The workspace rule
//! is: collections hash with the in-tree FxHash shims
//! (`copycat_util::hash::FxHashMap`/`FxHashSet`) or an ordered map.
//! `crates/util` itself is exempt — it defines the shims and
//! differential-tests them against std.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

/// Constructor tails that pick the default (random) hasher.
const CONSTRUCTORS: [&str; 3] = ["new", "with_capacity", "default"];

/// The rule. Applies to test code too — a test iterating a std map can
/// pass on one run and fail on the next. (Named with a `Rule` suffix so
/// the needle below does not match its own definition.)
pub struct RandomStateRule;

impl Rule for RandomStateRule {
    fn name(&self) -> &'static str {
        "randomstate"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        if ctx.path.starts_with("crates/util/") {
            return;
        }
        for ty in ["HashMap", "HashSet"] {
            for ctor in CONSTRUCTORS {
                for i in ctx.find_all(&[ty, "::", ctor]) {
                    ctx.report(
                        out,
                        self.name(),
                        ctx.toks[i].line,
                        format!(
                            "std {ty}::{ctor}() uses the random-seeded default hasher; use \
                             copycat_util::hash::Fx{ty} for deterministic iteration"
                        ),
                    );
                }
            }
        }
        for i in ctx.find_all(&["RandomState"]) {
            ctx.report(
                out,
                self.name(),
                ctx.toks[i].line,
                "std RandomState is seeded per-process; use FxBuildHasher".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn flags_every_default_hasher_constructor() {
        let src = "fn f() {\n  let a = std::collections::HashMap::new();\n  \
                   let b = HashSet::with_capacity(8);\n  let c: HashMap<u8, u8> = HashMap::default();\n}";
        let found = run_at("crates/linkage/src/x.rs", src);
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.rule == "randomstate"));
    }

    #[test]
    fn fx_shims_and_util_itself_pass() {
        let fx = "fn f() { let a = FxHashMap::default(); let b: FxHashSet<u8> = FxHashSet::default(); }";
        assert!(run_at("crates/linkage/src/x.rs", fx).is_empty());
        let std_use = "fn f() { let a = HashMap::new(); }";
        assert!(run_at("crates/util/src/hash.rs", std_use).is_empty());
    }

    #[test]
    fn btreemap_is_fine() {
        assert!(run_at("crates/core/src/x.rs", "fn f() { let a = BTreeMap::new(); }").is_empty());
    }
}
