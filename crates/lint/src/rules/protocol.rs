//! `protocol-exhaustiveness` — every `Op` variant is fully wired.
//!
//! The wire protocol's single source of truth is the `Op` enum in
//! `crates/serve/src/protocol.rs`. Rust's own exhaustiveness checking
//! covers the `match`es, but nothing in the compiler connects a variant
//! to the *artifacts around the code*: the `ALL` metrics table, the
//! server dispatch, the golden smoke transcript, and — for mutating
//! ops — the journal/replay durability tests. This rule closes that
//! loop. For each variant it checks:
//!
//! 1. listed in `Op::ALL` (metrics iteration order),
//! 2. given a wire name in `as_str()`,
//! 3. classified exactly once by `mutates()` (the WAL admission filter),
//! 4. mentioned in the server dispatch file (`server.rs`),
//! 5. exercised by the smoke transcript in `tests/golden/` (its wire
//!    name appears as an `"op"` value), and
//! 6. when mutating, covered by the router's journal/replay tests
//!    (`tests/durability.rs`).
//!
//! The synthetic `Invalid` variant is exempt from 5 and 6 — it is never
//! parsed from the wire. Wire names are derived from variant idents by
//! snake-casing (the lexer collapses string literals, so `as_str`'s
//! right-hand sides are unreadable here); the derivation matching
//! `as_str` is pinned by `wire_names_follow_variant_idents` in the
//! serve crate's protocol tests.
//!
//! The rule triggers only when the protocol file is part of the
//! analyzed set, so single-file fixtures stay silent.

use crate::callgraph::CallGraph;
use crate::file::FileCtx;
use crate::findings::Finding;
use crate::index::SymbolIndex;
use crate::lex::TokKind;
use crate::rules::TreeRule;
use std::collections::{BTreeMap, BTreeSet};

const PROTOCOL_FILE: &str = "crates/serve/src/protocol.rs";
const DISPATCH_FILE: &str = "crates/serve/src/server.rs";
const TRANSCRIPT_SUFFIX: &str = "tests/golden/wire_transcript.txt";
const DURABILITY_SUFFIX: &str = "serve/tests/durability.rs";
const ENUM: &str = "Op";

/// The rule.
pub struct ProtocolExhaustiveness;

impl TreeRule for ProtocolExhaustiveness {
    fn name(&self) -> &'static str {
        "protocol-exhaustiveness"
    }

    fn check(&self, index: &SymbolIndex, _graph: &CallGraph, out: &mut Vec<Finding>) {
        let Some(proto) = index.file_at(PROTOCOL_FILE) else { return };
        let Some(op) = index.enum_at(PROTOCOL_FILE, ENUM) else {
            out.push(Finding::new(
                self.name(),
                PROTOCOL_FILE,
                1,
                format!("protocol file defines no `enum {ENUM}` — the wire protocol lost its source of truth"),
            ));
            return;
        };
        let in_all = mentions_in_const_all(proto);
        let in_as_str = mentions_in_fns(index, proto, "as_str");
        let mutates = mutates_classification(index, proto);
        let dispatch = index.file_at(DISPATCH_FILE);
        let dispatch_mentions = dispatch.map(all_op_mentions);
        if dispatch.is_none() {
            out.push(Finding::new(
                self.name(),
                PROTOCOL_FILE,
                op.line,
                format!("dispatch file {DISPATCH_FILE} is not in the analyzed tree — cannot check op handling"),
            ));
        }
        let transcript = index.aux_ending(TRANSCRIPT_SUFFIX);
        if transcript.is_none() {
            out.push(Finding::new(
                self.name(),
                PROTOCOL_FILE,
                op.line,
                format!("smoke transcript ({TRANSCRIPT_SUFFIX}) was not loaded — cannot check op coverage"),
            ));
        }
        let durability = index.aux_ending(DURABILITY_SUFFIX);
        if durability.is_none() {
            out.push(Finding::new(
                self.name(),
                PROTOCOL_FILE,
                op.line,
                format!("journal/replay tests ({DURABILITY_SUFFIX}) were not loaded — cannot check mutating-op coverage"),
            ));
        }
        for (variant, line) in &op.variants {
            let mut missing = |what: String| {
                out.push(Finding::new(
                    self.name(),
                    PROTOCOL_FILE,
                    *line,
                    format!("Op::{variant} {what}"),
                ));
            };
            if !in_all.contains(variant.as_str()) {
                missing(format!("is missing from {ENUM}::ALL — metrics will never see it"));
            }
            if !in_as_str.contains(variant.as_str()) {
                missing("has no wire name in as_str()".to_string());
            }
            let class = mutates.get(variant.as_str());
            if class.is_none() {
                missing(
                    "is not classified by mutates() — the WAL admission filter ignores it"
                        .to_string(),
                );
            }
            if let Some(d) = &dispatch_mentions {
                if !d.contains(variant.as_str()) {
                    missing(format!(
                        "is never mentioned in {DISPATCH_FILE} — requests of this class have no handler"
                    ));
                }
            }
            if variant == "Invalid" {
                continue; // synthetic: never on the wire, never journaled
            }
            let wire = snake_case(variant);
            if let Some(t) = transcript {
                if !mentions_wire_op(&t.text, &wire) {
                    missing(format!(
                        "(wire `{wire}`) is not exercised by the smoke transcript — add a request to {TRANSCRIPT_SUFFIX}"
                    ));
                }
            }
            if class == Some(&true) {
                if let Some(d) = durability {
                    if !mentions_wire_op(&d.text, &wire) {
                        missing(format!(
                            "mutates but (wire `{wire}`) never appears in the journal/replay tests — recovery for it is untested"
                        ));
                    }
                }
            }
        }
    }
}

/// `CamelCase` → `snake_case` (how `as_str` names every op).
pub fn snake_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, ch) in ident.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

/// Whether `"op":"<wire>"` appears in raw text, in either plain JSON
/// form or the `\"`-escaped form used inside Rust string literals.
fn mentions_wire_op(text: &str, wire: &str) -> bool {
    text.contains(&format!("\"op\":\"{wire}\""))
        || text.contains(&format!("\\\"op\\\":\\\"{wire}\\\""))
}

/// Variant idents mentioned as `Op::<V>` inside `const ALL = [ … ]`.
fn mentions_in_const_all(ctx: &FileCtx) -> BTreeSet<&str> {
    let toks = &ctx.toks;
    let mut out = BTreeSet::new();
    let Some(at) = ctx.find_all(&["const", "ALL"]).into_iter().next() else {
        return out;
    };
    // Skip the type annotation (`[Op; 29]` has its own `;`): mentions
    // are collected from `=` to the statement's closing `;` at an
    // untracked bracket depth of zero.
    let Some(eq) = (at..toks.len()).find(|&k| toks[k].text == "=") else { return out };
    let mut brackets = 0i64;
    for k in eq + 1..toks.len() {
        match toks[k].text.as_str() {
            "[" => brackets += 1,
            "]" => brackets -= 1,
            ";" if brackets == 0 => break,
            _ => {}
        }
        if ctx.seq(k, &[ENUM, "::"]) {
            if let Some(v) = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                out.insert(v.text.as_str());
            }
        }
    }
    out
}

/// Variant idents mentioned as `Op::<V>` inside every fn named `name`
/// defined in this file.
fn mentions_in_fns<'a>(index: &'a SymbolIndex, ctx: &'a FileCtx, name: &str) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    for f in index.fns.iter().filter(|f| f.name == name) {
        if index.files[f.file].path != ctx.path {
            continue;
        }
        for k in f.body.0..f.body.1 {
            if ctx.seq(k, &[ENUM, "::"]) {
                if let Some(v) = ctx.toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                    out.insert(v.text.as_str());
                }
            }
        }
    }
    out
}

/// Every `Op::<V>` mention in a file's non-test tokens.
fn all_op_mentions(ctx: &FileCtx) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for k in 0..ctx.toks.len() {
        if ctx.in_test(k) {
            continue;
        }
        if ctx.seq(k, &[ENUM, "::"]) {
            if let Some(v) = ctx.toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                out.insert(v.text.as_str());
            }
        }
    }
    out
}

/// `variant → mutates?` parsed from the match arms of `mutates()`:
/// `Op::A | Op::B => true,` groups classify every accumulated variant
/// by the literal after `=>`.
fn mutates_classification<'a>(
    index: &'a SymbolIndex,
    ctx: &'a FileCtx,
) -> BTreeMap<&'a str, bool> {
    let mut out = BTreeMap::new();
    for f in index.fns.iter().filter(|f| f.name == "mutates") {
        if index.files[f.file].path != ctx.path {
            continue;
        }
        let mut group: Vec<&str> = Vec::new();
        let mut k = f.body.0;
        while k < f.body.1 {
            if ctx.seq(k, &[ENUM, "::"]) {
                if let Some(v) = ctx.toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                    group.push(v.text.as_str());
                    k += 3;
                    continue;
                }
            }
            // `=>` lexes as two punct tokens.
            if ctx.toks[k].text == "=" && ctx.toks.get(k + 1).is_some_and(|t| t.text == ">") {
                match ctx.toks.get(k + 2).map(|t| t.text.as_str()) {
                    Some("true") => group.drain(..).for_each(|v| {
                        out.insert(v, true);
                    }),
                    Some("false") => group.drain(..).for_each(|v| {
                        out.insert(v, false);
                    }),
                    _ => group.clear(), // non-literal arm: unclassified
                }
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::snake_case;
    use crate::analyze_files_with_aux;
    use crate::index::AuxFile;

    /// A miniature but fully-wired protocol: two ops, one mutating.
    const PROTO_OK: &str = "pub enum Op { Ping, Paste, Invalid }\n\
        impl Op {\n\
          pub const ALL: [Op; 3] = [Op::Ping, Op::Paste, Op::Invalid];\n\
          pub fn as_str(self) -> &'static str { match self { Op::Ping => \"ping\", Op::Paste => \"paste\", Op::Invalid => \"invalid\" } }\n\
          pub fn mutates(self) -> bool { match self { Op::Paste => true, Op::Ping | Op::Invalid => false } }\n\
        }";
    const SERVER_OK: &str =
        "fn dispatch(op: Op) { match op { Op::Ping => a(), Op::Paste => b(), Op::Invalid => c() } }";

    fn aux() -> Vec<AuxFile> {
        vec![
            AuxFile {
                path: "crates/serve/tests/golden/wire_transcript.txt".to_string(),
                text: "{\"op\":\"ping\"}\n{\"op\":\"paste\",\"text\":\"x\"}\n".to_string(),
            },
            AuxFile {
                path: "crates/serve/tests/durability.rs".to_string(),
                text: "const S: &str = \"{\\\"op\\\":\\\"paste\\\"}\";".to_string(),
            },
        ]
    }

    fn run(proto: &str, server: &str, aux: Vec<AuxFile>) -> Vec<crate::findings::Finding> {
        analyze_files_with_aux(
            &[
                ("crates/serve/src/protocol.rs", proto),
                ("crates/serve/src/server.rs", server),
            ],
            aux,
        )
    }

    #[test]
    fn fully_wired_protocol_is_clean() {
        assert_eq!(run(PROTO_OK, SERVER_OK, aux()), vec![]);
    }

    #[test]
    fn each_gap_is_its_own_finding() {
        // Drop Paste from ALL, as_str, mutates, and dispatch all at once.
        let proto = "pub enum Op { Ping, Paste, Invalid }\n\
            impl Op {\n\
              pub const ALL: [Op; 2] = [Op::Ping, Op::Invalid];\n\
              pub fn as_str(self) -> &'static str { match self { Op::Ping => \"ping\", _ => \"x\" } }\n\
              pub fn mutates(self) -> bool { match self { Op::Ping | Op::Invalid => false, _ => true } }\n\
            }";
        let server = "fn dispatch(op: Op) { match op { Op::Ping => a(), Op::Invalid => c(), _ => d() } }";
        let found = run(proto, server, aux());
        let msgs: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("missing from Op::ALL")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("no wire name")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("not classified by mutates()")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("no handler")), "{msgs:?}");
        assert!(found.iter().all(|f| f.rule == "protocol-exhaustiveness"));
        assert!(found.iter().all(|f| f.file == "crates/serve/src/protocol.rs"));
    }

    #[test]
    fn transcript_and_journal_coverage_are_checked() {
        // Transcript misses paste; durability misses it too.
        let thin = vec![
            AuxFile {
                path: "crates/serve/tests/golden/wire_transcript.txt".to_string(),
                text: "{\"op\":\"ping\"}\n".to_string(),
            },
            AuxFile {
                path: "crates/serve/tests/durability.rs".to_string(),
                text: "const S: &str = \"{\\\"op\\\":\\\"open_doc\\\"}\";".to_string(),
            },
        ];
        let found = run(PROTO_OK, SERVER_OK, thin);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("not exercised by the smoke transcript"));
        assert!(found[1].message.contains("recovery for it is untested"));
    }

    #[test]
    fn missing_companion_files_are_findings_not_silence() {
        let found = run(PROTO_OK, SERVER_OK, Vec::new());
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.message.contains("smoke transcript")));
        assert!(found.iter().any(|f| f.message.contains("journal/replay tests")));
    }

    #[test]
    fn rule_is_silent_without_the_protocol_file() {
        let found = analyze_files_with_aux(
            &[("crates/serve/src/server.rs", "fn f() {}")],
            Vec::new(),
        );
        assert!(found.is_empty());
    }

    #[test]
    fn snake_case_matches_wire_names() {
        for (ident, wire) in [
            ("Ping", "ping"),
            ("CreateSession", "create_session"),
            ("ColumnSuggestions", "column_suggestions"),
            ("SetColumnType", "set_column_type"),
        ] {
            assert_eq!(snake_case(ident), wire);
        }
    }
}
