//! `unsafe-safety` — every `unsafe` carries a `// SAFETY:` proof.
//!
//! The workspace currently contains no `unsafe` at all, and this rule is
//! the ratchet that keeps any future block honest: an `unsafe` token
//! (block, fn, impl or trait) must have a comment containing `SAFETY:`
//! on its line or within two lines above, stating the invariant that
//! makes it sound. Applies everywhere, tests included — an unsound test
//! is still UB.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

/// The proof marker looked for in comments.
pub const MARKER: &str = "SAFETY:";

/// The rule.
pub struct UnsafeSafety;

impl Rule for UnsafeSafety {
    fn name(&self) -> &'static str {
        "unsafe-safety"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for i in ctx.find_all(&["unsafe"]) {
            let line = ctx.toks[i].line;
            if ctx.justified(line, MARKER) {
                continue;
            }
            ctx.report(
                out,
                self.name(),
                line,
                format!("`unsafe` without a `// {MARKER} <invariant>` comment"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn bare_unsafe_fires_even_in_tests() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(run_at("crates/util/src/x.rs", src).len(), 1);
        let test = "#[test]\nfn t(p: *const u8) { let _ = unsafe { *p }; }";
        assert_eq!(run_at("crates/util/src/x.rs", test).len(), 1);
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n  // SAFETY: p is derived from a live &u8 above\n  \
                   unsafe { *p }\n}";
        assert!(run_at("crates/util/src/x.rs", src).is_empty());
    }
}
