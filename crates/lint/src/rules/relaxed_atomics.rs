//! `relaxed-atomics` — every `Ordering::Relaxed` carries its proof.
//!
//! Relaxed is the right ordering for monotone statistics counters and
//! index dispensers, and the wrong one the moment a reader *reconciles*
//! one atomic against another (the serve `stats` total==responses check
//! is the canonical example: it needs Release increments and Acquire
//! loads to never observe responses > total). The rule cannot tell the
//! two apart — so it demands the author state which one this is: each
//! `Ordering::Relaxed` site must have a comment containing `relaxed:`
//! on the same line or within two lines above, naming why no reader
//! orders against this access.

use crate::file::FileCtx;
use crate::findings::Finding;
use crate::rules::Rule;

/// The justification marker looked for in comments.
pub const MARKER: &str = "relaxed:";

/// The rule. Test code is exempt: tests synchronize via `join`/scope
/// exit, which makes Relaxed counters exact there.
pub struct RelaxedAtomics;

impl Rule for RelaxedAtomics {
    fn name(&self) -> &'static str {
        "relaxed-atomics"
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for i in ctx.find_all(&["Ordering", "::", "Relaxed"]) {
            if ctx.in_test(i) {
                continue;
            }
            let line = ctx.toks[i].line;
            if ctx.justified(line, MARKER) {
                continue;
            }
            ctx.report(
                out,
                self.name(),
                line,
                format!(
                    "Ordering::Relaxed without a `// {MARKER} <why>` justification — \
                     if any reader reconciles this against another atomic, use \
                     Release/Acquire instead"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::run_at;

    #[test]
    fn unjustified_relaxed_fires() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let found = run_at("crates/services/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "relaxed-atomics");
    }

    #[test]
    fn trailing_and_preceding_justifications_pass() {
        let trailing =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // relaxed: pure stat\n}";
        assert!(run_at("crates/services/src/x.rs", trailing).is_empty());
        let above = "fn f(c: &AtomicU64) {\n  // relaxed: monotone counter, no reader reconciles\n  \
                     c.fetch_add(1,\n    Ordering::Relaxed);\n}";
        assert!(run_at("crates/services/src/x.rs", above).is_empty());
    }

    #[test]
    fn acquire_release_need_no_comment_and_tests_are_exempt() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Release); c.load(Ordering::Acquire); }";
        assert!(run_at("crates/serve/src/x.rs", src).is_empty());
        let test = "#[cfg(test)]\nmod t {\n  fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}";
        assert!(run_at("crates/serve/src/x.rs", test).is_empty());
    }
}
