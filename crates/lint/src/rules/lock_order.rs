//! `lock-order` — cross-function lock-acquisition order analysis.
//!
//! Phase 2's deadlock pass. From the symbol index it derives, per
//! crate, a directed graph over lock *classes* (see
//! [`crate::index::receiver_class`] naming): an edge `A → B` means
//! some non-test function acquires `B` — directly, or transitively
//! through the intra-crate call graph — while holding a guard on `A`.
//! Three finding shapes come out:
//!
//! 1. **Cycles** (`lock-order`): `A → B` and `B → … → A` both exist —
//!    two threads taking the classes in opposite orders can deadlock.
//!    Every edge participating in a cycle is reported at its
//!    acquisition site, with the call-path provenance attached.
//! 2. **Re-entry** (`lock-order`): a guard on `A` is still live when
//!    `A` is acquired again (directly or via a callee) and at least
//!    one side is exclusive — guaranteed self-deadlock on the
//!    non-reentrant `util::sync` shims (read→read is allowed).
//! 3. **Interprocedural guard-across-blocking**
//!    (`guard-across-blocking`): a call made under a live guard
//!    reaches a `send`/`recv`/`join` somewhere down the call chain —
//!    the same deadlock shape the per-file rule catches in a single
//!    block, upgraded across function boundaries.
//!
//! `crates/util` is exempt: it *implements* the lock and channel
//! primitives (condvar loops legitimately hold the state lock), and
//! its internals are covered by their own property tests.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::index::SymbolIndex;
use crate::rules::TreeRule;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose lock usage is the primitive layer itself.
const EXEMPT_CRATES: [&str; 1] = ["util"];

/// One recorded order edge `from → to` with its site and provenance.
struct Edge {
    file: String,
    line: u32,
    provenance: Vec<String>,
}

/// The rule.
pub struct LockOrder;

impl TreeRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn check(&self, index: &SymbolIndex, graph: &CallGraph, out: &mut Vec<Finding>) {
        // (crate, from class, to class) → first recorded edge.
        let mut edges: BTreeMap<(String, String, String), Edge> = BTreeMap::new();
        for (fi, f) in index.fns.iter().enumerate() {
            if f.in_test || EXEMPT_CRATES.contains(&f.crate_name.as_str()) {
                continue;
            }
            let file = index.files[f.file].path.clone();
            for g in &f.guards {
                let in_range = |tok: usize| tok >= g.live.0 && tok < g.live.1;
                // Direct acquisitions under the guard.
                for l in &f.locks {
                    if !in_range(l.tok) {
                        continue;
                    }
                    if l.class == g.class {
                        if l.exclusive || g.exclusive {
                            out.push(Finding::new(
                                self.name(),
                                file.clone(),
                                l.line,
                                format!(
                                    "lock `{}` acquired again while guard `{}` (line {}) already \
                                     holds it — self-deadlock on non-reentrant locks",
                                    l.class, g.name, g.line
                                ),
                            ));
                        }
                    } else {
                        edges
                            .entry((f.crate_name.clone(), g.class.clone(), l.class.clone()))
                            .or_insert_with(|| Edge {
                                file: file.clone(),
                                line: l.line,
                                provenance: vec![index.fn_site(f)],
                            });
                    }
                }
                // Calls under the guard: what the callee can acquire or
                // block on counts as happening here.
                for c in &f.calls {
                    if !in_range(c.tok) {
                        continue;
                    }
                    // One report per call site and lock class: a name
                    // resolving to several defs is one diagnosis.
                    let mut blocked_reported = false;
                    let mut classes_reported: BTreeSet<&str> = BTreeSet::new();
                    for &callee in graph.resolve(&f.crate_name, &c.name) {
                        if callee == fi {
                            continue;
                        }
                        if graph.can_block[callee] && !blocked_reported {
                            blocked_reported = true;
                            let mut prov = vec![index.fn_site(f)];
                            prov.extend(graph.block_chain(index, callee));
                            out.push(Finding {
                                rule: "guard-across-blocking",
                                file: file.clone(),
                                line: c.line,
                                message: format!(
                                    "call to {}() while guard `{}` (class `{}`, line {}) is live \
                                     reaches a blocking send/recv/join down the call chain; \
                                     drop the guard first",
                                    c.name, g.name, g.class, g.line
                                ),
                                provenance: prov,
                            });
                        }
                        for (class, exclusive) in graph.reachable_locks[callee].iter() {
                            if !classes_reported.insert(class.as_str()) {
                                continue;
                            }
                            let mut prov = vec![index.fn_site(f)];
                            prov.extend(graph.lock_chain(index, callee, class));
                            if *class == g.class {
                                if *exclusive || g.exclusive {
                                    out.push(Finding {
                                        rule: self.name(),
                                        file: file.clone(),
                                        line: c.line,
                                        message: format!(
                                            "call to {}() while guard `{}` holds `{}` (line {}) \
                                             re-acquires the same lock class down the call \
                                             chain — self-deadlock on non-reentrant locks",
                                            c.name, g.name, g.class, g.line
                                        ),
                                        provenance: prov,
                                    });
                                }
                            } else {
                                edges
                                    .entry((
                                        f.crate_name.clone(),
                                        g.class.clone(),
                                        class.clone(),
                                    ))
                                    .or_insert_with(|| Edge {
                                        file: file.clone(),
                                        line: c.line,
                                        provenance: prov,
                                    });
                            }
                        }
                    }
                }
            }
        }
        // Cycle detection per crate over the class graph.
        let mut adj: BTreeMap<&str, BTreeMap<&str, BTreeSet<&str>>> = BTreeMap::new();
        for (krate, from, to) in edges.keys() {
            adj.entry(krate).or_default().entry(from).or_default().insert(to);
        }
        for ((krate, from, to), edge) in &edges {
            let Some(crate_adj) = adj.get(krate.as_str()) else { continue };
            if let Some(back) = path_between(crate_adj, to, from) {
                let cycle: Vec<&str> =
                    std::iter::once(from.as_str()).chain(back.iter().copied()).collect();
                out.push(Finding {
                    rule: self.name(),
                    file: edge.file.clone(),
                    line: edge.line,
                    message: format!(
                        "lock-order cycle in crate `{krate}`: {} — two threads taking these \
                         locks in opposite orders can deadlock; pick one global order",
                        cycle.join(" -> "),
                    ),
                    provenance: edge.provenance.clone(),
                });
            }
        }
    }
}

/// BFS path `from → … → to` over the class adjacency, inclusive of
/// both endpoints. `None` if unreachable.
fn path_between<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(at) = queue.pop_front() {
        if at == to {
            let mut path = vec![at];
            let mut cur = at;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(at).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, at);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::analyze_source;

    #[test]
    fn opposing_orders_across_functions_are_a_cycle() {
        let src = "impl R {\n\
                   fn close(&self) {\n  let j = self.journal.lock();\n  self.sessions.lock();\n}\n\
                   fn stats(&self) {\n  let map = self.sessions.lock();\n  self.journal.lock();\n}\n\
                   }";
        let found = analyze_source("crates/serve/src/x.rs", src);
        assert!(
            found.iter().filter(|f| f.rule == "lock-order").count() >= 2,
            "both edges of the cycle report: {found:?}"
        );
        assert!(found.iter().any(|f| f.message.contains("journal -> sessions")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl R {\n\
                   fn a(&self) {\n  let j = self.journal.lock();\n  self.sessions.lock();\n}\n\
                   fn b(&self) {\n  let j = self.journal.lock();\n  self.sessions.lock();\n}\n\
                   }";
        assert!(analyze_source("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn reentry_through_a_callee_is_flagged_with_provenance() {
        let src = "impl R {\n\
                   fn outer(&self) {\n  let g = self.sessions.lock();\n  self.inner();\n}\n\
                   fn inner(&self) {\n  self.sessions.lock();\n}\n\
                   }";
        let found = analyze_source("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "lock-order");
        assert!(found[0].message.contains("re-acquires the same lock class"));
        assert!(found[0].provenance.iter().any(|p| p.contains("fn inner")));
    }

    #[test]
    fn read_read_reentry_is_allowed_but_write_read_is_not() {
        let rr = "fn f(&self) {\n  let g = self.map.read();\n  self.map.read();\n}";
        assert!(analyze_source("crates/query/src/x.rs", rr).is_empty());
        let wr = "fn f(&self) {\n  let g = self.map.write();\n  self.map.read();\n}";
        let found = analyze_source("crates/query/src/x.rs", wr);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("self-deadlock"));
    }

    #[test]
    fn blocking_via_callee_upgrades_guard_across_blocking() {
        let src = "impl W {\n\
                   fn publish(&self) {\n  let g = self.state.lock();\n  self.fanout();\n}\n\
                   fn fanout(&self) {\n  self.tx.send(1);\n}\n\
                   }";
        let found = analyze_source("crates/serve/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "guard-across-blocking");
        assert!(found[0].provenance.iter().any(|p| p.contains("fn fanout")));
    }

    #[test]
    fn util_crate_is_exempt_and_tests_are_skipped() {
        let src = "fn close(&self) {\n  let j = self.journal.lock();\n  self.sessions.lock();\n}\n\
                   fn stats(&self) {\n  let map = self.sessions.lock();\n  self.journal.lock();\n}";
        assert!(analyze_source("crates/util/src/channel.rs", src).is_empty());
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}");
        assert!(analyze_source("crates/serve/src/x.rs", &in_test).is_empty());
    }
}
