//! The `copycat-lint` binary. See the crate docs for semantics.
//!
//! Exit codes: 0 clean, 1 findings (or an invalid baseline, or a blown
//! wall-time budget), 2 usage or I/O failure.

use copycat_lint::{analyze_tree, baseline, findings, load_baseline, walk, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: copycat-lint [--root <dir>] [--budget-ms <n>] <check|json|baseline>

  check     lint crates/*/src and fail on any non-baseline finding
            (--budget-ms also fails the run if analysis takes longer)
  json      print the full findings report as JSON (includes runtime_ms)
  baseline  regenerate LINT_BASELINE.json (ratchet), printing a diff";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<String> = None;
    let mut budget_ms: Option<u64> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--budget-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget_ms = Some(n),
                None => return usage("--budget-ms needs a number"),
            },
            "check" | "json" | "baseline" if cmd.is_none() => cmd = Some(a),
            other => return usage(&format!("unrecognized argument {other:?}")),
        }
    }
    let Some(cmd) = cmd else { return usage("missing subcommand") };
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read cwd: {e}")),
            };
            match walk::find_root(&cwd) {
                Some(r) => r,
                None => return fail("no workspace root (Cargo.toml + crates/) above cwd; pass --root"),
            }
        }
    };
    // Timing the analyzer itself is the one legitimate wall-clock read
    // in this crate: the budget guards CI latency, not determinism.
    let started = std::time::Instant::now(); // lint:allow(wallclock) measures the linter's own CI latency, not simulated time
    let found = match analyze_tree(&root) {
        Ok(f) => f,
        Err(e) => return fail(&format!("walking {}: {e}", root.display())),
    };
    let runtime_ms = started.elapsed().as_millis() as u64;
    let over_budget = budget_ms.is_some_and(|b| runtime_ms > b);
    match cmd.as_str() {
        "json" => {
            println!("{}", findings::report_json(&found, Some(runtime_ms)));
            ExitCode::SUCCESS
        }
        "baseline" => {
            let old = match load_baseline(&root) {
                Ok(b) => b,
                Err(e) => return fail(&e),
            };
            let new = baseline::from_findings(&found);
            let strict_remaining: Vec<_> =
                found.iter().filter(|f| !new.counts.contains_key(&(f.rule.to_string(), f.file.clone()))).collect();
            if let Err(e) = std::fs::write(root.join(BASELINE_FILE), format!("{}\n", baseline::to_json(&new))) {
                return fail(&format!("writing {BASELINE_FILE}: {e}"));
            }
            let diff = baseline::diff_summary(&old, &new);
            if diff.is_empty() {
                println!("copycat-lint baseline: unchanged ({} entries)", new.counts.len());
            } else {
                println!("copycat-lint baseline: {} change(s)", diff.len());
                for line in diff {
                    println!("  {line}");
                }
            }
            if !strict_remaining.is_empty() {
                eprintln!(
                    "warning: {} strict-rule finding(s) were NOT baselined (strict rules are \
                     un-baselineable) — fix or lint:allow them:",
                    strict_remaining.len()
                );
                for f in strict_remaining {
                    eprintln!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
                }
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let base = match load_baseline(&root) {
                Ok(b) => b,
                Err(e) => return fail(&e),
            };
            let verdict = baseline::compare(&found, &base);
            for (rule, file, n) in &verdict.illegal_entries {
                eprintln!(
                    "{BASELINE_FILE}: illegal entry [{rule}] {file} ({n}) — strict rules \
                     cannot be baselined"
                );
            }
            for f in &verdict.violations {
                eprintln!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
                for p in &f.provenance {
                    eprintln!("    via {p}");
                }
            }
            for (rule, file, was, now) in &verdict.improvements {
                eprintln!(
                    "note: [{rule}] {file} improved {was} -> {now}; run `copycat-lint baseline` \
                     to ratchet down"
                );
            }
            if over_budget {
                eprintln!(
                    "copycat-lint: analysis took {runtime_ms}ms, over the --budget-ms {}ms budget",
                    budget_ms.unwrap_or(0)
                );
            }
            if verdict.clean() && !over_budget {
                println!(
                    "copycat-lint: clean ({} finding(s), all baselined; {} baseline entr(ies); {runtime_ms}ms)",
                    found.len(),
                    base.counts.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "copycat-lint: {} violation(s) ({} illegal baseline entr(ies))",
                    verdict.violations.len(),
                    verdict.illegal_entries.len()
                );
                ExitCode::FAILURE
            }
        }
        _ => usage("unreachable subcommand"),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("copycat-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("copycat-lint: {msg}");
    ExitCode::from(2)
}
