//! File discovery: every `crates/*/src/**/*.rs` under the repo root.
//!
//! The walk is sorted at every level, so the file list — and therefore
//! the finding order even before the final sort — is independent of
//! filesystem enumeration order. Test directories (`crates/*/tests/`)
//! are deliberately out of scope: they host fixtures (including this
//! crate's deliberately-violating ones) and client-side test drivers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Repo-relative (`/`-separated) paths of every lintable file, sorted.
pub fn lintable_files(root: &Path) -> io::Result<Vec<String>> {
    let crates = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    let mut files = Vec::new();
    for member in members {
        let src = member.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Walk upward from `start` to the workspace root: the first directory
/// holding both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
