//! Findings: what a rule reports, plus stable ordering and JSON.

use copycat_util::json::Json;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (kebab-case, e.g. `panic-path`).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Rule provenance: the files/symbols that contributed to this
    /// finding beyond the site itself. Per-file rules leave it empty;
    /// cross-file rules record the chain (e.g. the call path that
    /// carries a lock acquisition into a guarded region, or the fixture
    /// a protocol variant is missing from).
    pub provenance: Vec<String>,
}

impl Finding {
    /// A finding with no cross-file provenance (the per-file case).
    pub fn new(rule: &'static str, file: impl Into<String>, line: u32, message: String) -> Finding {
        Finding { rule, file: file.into(), line, message, provenance: Vec::new() }
    }

    /// The canonical sort key: findings are reported in `(file, line,
    /// rule, message)` order regardless of the order files were walked
    /// or rules ran — the stability the property test pins.
    pub fn sort_key(&self) -> (String, u32, &'static str, String) {
        (self.file.clone(), self.line, self.rule, self.message.clone())
    }

    /// JSON for one finding.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("rule".into(), Json::str(self.rule)),
            ("file".into(), Json::str(&self.file)),
            ("line".into(), Json::Num(self.line as f64)),
            ("message".into(), Json::str(&self.message)),
        ];
        if !self.provenance.is_empty() {
            fields.push((
                "provenance".into(),
                Json::Arr(self.provenance.iter().map(|p| Json::str(p)).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Sort findings into canonical order.
pub fn sort(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// The `copycat-lint json` payload: every finding plus per-rule totals
/// and, when measured, the wall-time the two-phase analysis took.
pub fn report_json(findings: &[Finding], runtime_ms: Option<u64>) -> Json {
    let mut by_rule: Vec<(String, u64)> = Vec::new();
    for f in findings {
        match by_rule.iter_mut().find(|(r, _)| r == f.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.to_string(), 1)),
        }
    }
    by_rule.sort();
    let mut fields = vec![
        ("total".into(), Json::Num(findings.len() as f64)),
        (
            "by_rule".into(),
            Json::obj(by_rule.into_iter().map(|(r, n)| (r, Json::Num(n as f64))).collect()),
        ),
        ("findings".into(), Json::Arr(findings.iter().map(Finding::to_json).collect())),
    ];
    if let Some(ms) = runtime_ms {
        fields.push(("runtime_ms".into(), Json::Num(ms as f64)));
    }
    Json::obj(fields)
}
