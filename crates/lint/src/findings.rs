//! Findings: what a rule reports, plus stable ordering and JSON.

use copycat_util::json::Json;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (kebab-case, e.g. `panic-path`).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// The canonical sort key: findings are reported in `(file, line,
    /// rule, message)` order regardless of the order files were walked
    /// or rules ran — the stability the property test pins.
    pub fn sort_key(&self) -> (String, u32, &'static str, String) {
        (self.file.clone(), self.line, self.rule, self.message.clone())
    }

    /// JSON for one finding.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule".into(), Json::str(self.rule)),
            ("file".into(), Json::str(&self.file)),
            ("line".into(), Json::Num(self.line as f64)),
            ("message".into(), Json::str(&self.message)),
        ])
    }
}

/// Sort findings into canonical order.
pub fn sort(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// The `copycat-lint json` payload: every finding plus per-rule totals.
pub fn report_json(findings: &[Finding]) -> Json {
    let mut by_rule: Vec<(String, u64)> = Vec::new();
    for f in findings {
        match by_rule.iter_mut().find(|(r, _)| r == f.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.to_string(), 1)),
        }
    }
    by_rule.sort();
    Json::obj(vec![
        ("total".into(), Json::Num(findings.len() as f64)),
        (
            "by_rule".into(),
            Json::obj(by_rule.into_iter().map(|(r, n)| (r, Json::Num(n as f64))).collect()),
        ),
        ("findings".into(), Json::Arr(findings.iter().map(Finding::to_json).collect())),
    ])
}
