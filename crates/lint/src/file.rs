//! Per-file analysis context: the lexed token stream plus everything
//! rules share — brace depths, `#[cfg(test)]`/`#[test]` regions, inline
//! suppressions, and justification-comment lookup.

use crate::lex::{lex, Comment, Lexed, Tok, TokKind};
use crate::findings::Finding;

/// How many lines above a site a justification comment may sit and
/// still attach to it (same line always counts).
pub const JUSTIFY_WINDOW: u32 = 2;

/// One parsed `// lint:allow(<rule>) reason` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory reason text after the closing paren.
    pub reason: String,
    /// Lines this suppression covers: its own line and the next line
    /// that carries a code token.
    pub lines: Vec<u32>,
    /// The line the comment itself is on (for misuse reports).
    pub at: u32,
}

/// Everything a rule gets to look at for one file.
pub struct FileCtx {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Brace depth *before* each token (`{` raises the depth of the
    /// tokens after it).
    pub depth: Vec<u32>,
    /// Parsed `lint:allow` suppressions, in source order. The analysis
    /// pipeline applies them centrally *after* all rules ran, so it can
    /// tell which ones actually silenced something (stale detection).
    pub suppressions: Vec<Suppression>,
    /// Token-index ranges inside `#[cfg(test)] mod … { }` or `#[test] fn
    /// … { }` bodies (half-open).
    test_tok_ranges: Vec<(usize, usize)>,
    /// Suppression comments that failed to parse (missing reason or
    /// unknown rule) — surfaced as findings so they cannot rot silently.
    pub bad_suppressions: Vec<Finding>,
}

impl FileCtx {
    /// Lex and index one file.
    pub fn new(path: &str, src: &str, known_rules: &[&'static str]) -> FileCtx {
        let Lexed { toks, comments } = lex(src);
        let depth = brace_depths(&toks);
        let test_tok_ranges = test_regions(&toks);
        let mut ctx = FileCtx {
            path: path.to_string(),
            toks,
            comments,
            depth,
            suppressions: Vec::new(),
            test_tok_ranges,
            bad_suppressions: Vec::new(),
        };
        ctx.parse_suppressions(known_rules);
        ctx
    }

    /// Whether token `i` sits inside a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_tok_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Whether the token texts starting at `i` equal `needle`.
    pub fn seq(&self, i: usize, needle: &[&str]) -> bool {
        needle.len() <= self.toks.len() - i.min(self.toks.len())
            && needle
                .iter()
                .enumerate()
                .all(|(j, w)| self.toks.get(i + j).is_some_and(|t| t.text == *w))
    }

    /// Indices where `needle` matches, in order.
    pub fn find_all(&self, needle: &[&str]) -> Vec<usize> {
        (0..self.toks.len()).filter(|&i| self.seq(i, needle)).collect()
    }

    /// Whether a comment containing `marker` sits on `line` or within
    /// [`JUSTIFY_WINDOW`] lines above it.
    pub fn justified(&self, line: u32, marker: &str) -> bool {
        let lo = line.saturating_sub(JUSTIFY_WINDOW);
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= line && c.text.contains(marker))
    }

    /// Whether a finding of `rule` on `line` is suppressed.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.lines.contains(&line))
    }

    /// Emit a raw finding. Suppressions are applied centrally by the
    /// analysis pipeline (which also tracks which ones were used), not
    /// at emission time.
    pub fn report(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        out.push(Finding::new(rule, self.path.clone(), line, message));
    }

    fn parse_suppressions(&mut self, known_rules: &[&'static str]) {
        for c in &self.comments {
            // Doc comments (`///`, `//!` — text starts with `/` or `!`)
            // never suppress: they *document* the syntax, including in
            // this very crate.
            if c.text.starts_with('/') || c.text.starts_with('!') {
                continue;
            }
            let Some(idx) = c.text.find("lint:allow(") else { continue };
            let rest = &c.text[idx + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else {
                self.bad_suppressions.push(Finding::new(
                    "bad-suppression",
                    self.path.clone(),
                    c.line,
                    "malformed lint:allow — missing `)`".to_string(),
                ));
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim().to_string();
            if !known_rules.contains(&rule.as_str()) {
                self.bad_suppressions.push(Finding::new(
                    "bad-suppression",
                    self.path.clone(),
                    c.line,
                    format!("lint:allow names unknown rule {rule:?}"),
                ));
                continue;
            }
            if reason.is_empty() {
                self.bad_suppressions.push(Finding::new(
                    "bad-suppression",
                    self.path.clone(),
                    c.line,
                    format!("lint:allow({rule}) needs a reason: `// lint:allow({rule}) <why>`"),
                ));
                continue;
            }
            // A trailing suppression (code on its own line) covers that
            // line only; a standalone one covers the next code line.
            let mut lines = vec![c.line];
            let trailing = self.toks.iter().any(|t| t.line == c.line);
            if !trailing {
                if let Some(next) = self.toks.iter().map(|t| t.line).find(|&l| l > c.end_line) {
                    lines.push(next);
                }
            }
            self.suppressions.push(Suppression { rule, reason, lines, at: c.line });
        }
    }
}

/// Brace depth before each token.
fn brace_depths(toks: &[Tok]) -> Vec<u32> {
    let mut depth = 0u32;
    let mut out = Vec::with_capacity(toks.len());
    for t in toks {
        out.push(depth);
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

/// Token ranges covered by `#[cfg(test)]`-gated modules and `#[test]`
/// functions. Only the two exact attribute spellings are recognized —
/// `#[cfg(not(test))]` and friends stay in scope, by design.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        let is_test_attr = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("test")
            && text(i + 3) == Some("]");
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        let after_attr = i + if is_cfg_test { 7 } else { 4 };
        // Find the `{` that opens the gated item and match it.
        let mut j = after_attr;
        while j < toks.len() && text(j) != Some("{") {
            // Another item boundary before any brace: a gated `mod m;`
            // or `use`, nothing to exclude.
            if text(j) == Some(";") {
                break;
            }
            j += 1;
        }
        if text(j) == Some("{") {
            let mut depth = 0i64;
            let mut k = j;
            while k < toks.len() {
                match text(k) {
                    Some("{") => depth += 1,
                    Some("}") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            ranges.push((i, (k + 1).min(toks.len())));
            i = k + 1;
        } else {
            i = j + 1;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/x/src/lib.rs", src, &["wallclock", "panic-path"])
    }

    #[test]
    fn test_regions_cover_gated_modules_and_fns() {
        let src = "fn live() { a(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { b(); }\n}\n\
                   #[test]\nfn standalone() { c(); }\nfn live2() { d(); }";
        let c = ctx(src);
        let idx_of = |name: &str| c.toks.iter().position(|t| t.text == name).unwrap();
        assert!(!c.in_test(idx_of("a")));
        assert!(c.in_test(idx_of("b")));
        assert!(c.in_test(idx_of("c")));
        assert!(!c.in_test(idx_of("d")));
    }

    #[test]
    fn cfg_not_test_stays_in_scope() {
        let c = ctx("#[cfg(not(test))]\nmod prod { fn f() { a(); } }");
        let a = c.toks.iter().position(|t| t.text == "a").unwrap();
        assert!(!c.in_test(a));
    }

    #[test]
    fn suppression_covers_trailing_and_next_line() {
        let src = "f(); // lint:allow(wallclock) bench-only path\n\
                   // lint:allow(panic-path) startup, no request in flight\n\
                   g();";
        let c = ctx(src);
        assert!(c.suppressed("wallclock", 1));
        assert!(c.suppressed("panic-path", 3));
        assert!(!c.suppressed("panic-path", 1));
        assert!(!c.suppressed("wallclock", 3));
        assert!(c.bad_suppressions.is_empty());
    }

    #[test]
    fn reasonless_or_unknown_suppressions_are_findings() {
        let c = ctx("// lint:allow(wallclock)\nf();\n// lint:allow(no-such-rule) why\ng();");
        assert_eq!(c.bad_suppressions.len(), 2);
        assert!(!c.suppressed("wallclock", 2));
    }

    #[test]
    fn justification_window() {
        let src = "// relaxed: pure counter\nx.fetch_add(1);\n\n\n\ny.fetch_add(1);";
        let c = ctx(src);
        assert!(c.justified(2, "relaxed:"));
        assert!(!c.justified(6, "relaxed:"));
    }
}
