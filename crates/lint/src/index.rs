//! Phase-1 symbol index: what the whole-tree rules see.
//!
//! Built once per analysis run from the already-lexed [`FileCtx`]s, the
//! index records, per file, every `fn` definition (with its body token
//! range), every `enum` definition (with its variant list), and — per
//! function — the lock acquisitions, lock-guard bindings with their
//! liveness ranges, blocking channel/thread calls, and plain call
//! sites. Cross-file rules ([`crate::rules::TreeRule`]) consume it via
//! the conservative name-based call graph in [`crate::callgraph`].
//!
//! Soundness model (documented, deliberate): lock *identity* is the
//! last identifier of the receiver path (`self.sessions.lock()` →
//! class `sessions`), so two locks that alias through differently
//! named locals are distinct classes (under-approximation), and two
//! unrelated fields sharing a name in one crate merge (conservative
//! over-approximation). Calls resolve by bare name within the defining
//! crate only; cross-crate edges and closures are out of scope.

use crate::file::FileCtx;
use crate::lex::TokKind;

/// Method tails that acquire a lock guard.
pub const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];
/// Method names that can block on peer progress (channel/thread).
pub const BLOCKERS: [&str; 4] = ["send", "try_send", "recv", "join"];

/// Idents that look like calls but never resolve to an in-crate `fn`.
const NON_CALLS: [&str; 13] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "move", "Some", "None", "Ok",
    "Err",
];

/// One lock acquisition site (binding or temporary).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock class: the receiver path's last identifier.
    pub class: String,
    /// `lock()`/`write()` (true) vs `read()` (false).
    pub exclusive: bool,
    /// Token index of the acquirer ident.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// One `let`-bound guard with its liveness token range.
#[derive(Debug, Clone)]
pub struct GuardSite {
    /// The binding name.
    pub name: String,
    /// Lock class of the acquired lock.
    pub class: String,
    /// Whether the guard is exclusive (`lock`/`write`).
    pub exclusive: bool,
    /// Half-open token range the guard is live over (after the binding
    /// statement's `;`, until scope end or `drop(<name>)`).
    pub live: (usize, usize),
    /// Line of the `let`.
    pub line: u32,
}

/// One call site (free `f(…)` or method `.f(…)`).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (no path qualification).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// One `fn` definition and the per-function facts rules consume.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// Owning crate (`serve` for `crates/serve/src/...`).
    pub crate_name: String,
    /// Index into [`SymbolIndex::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Half-open token range of the body (inside the braces).
    pub body: (usize, usize),
    /// Whether the definition sits in a test region.
    pub in_test: bool,
    /// Direct lock acquisitions (bindings and temporaries).
    pub locks: Vec<LockSite>,
    /// `let`-bound guards with liveness.
    pub guards: Vec<GuardSite>,
    /// Direct blocking calls (`.send(`/`.try_send(`/`.recv(`/`.join(`).
    pub blocking: Vec<CallSite>,
    /// Every plain call site, for the call graph.
    pub calls: Vec<CallSite>,
}

/// One `enum` definition with its variant list.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Index into [`SymbolIndex::files`].
    pub file: usize,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// `(variant name, line)` in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// A raw (un-lexed) companion file cross-file rules read as text —
/// golden transcripts and test drivers that live outside the lint walk.
#[derive(Debug, Clone)]
pub struct AuxFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Raw file contents.
    pub text: String,
}

/// The whole-tree symbol index (phase 1's output).
pub struct SymbolIndex {
    /// Every analyzed file, sorted by path (the pipeline sorts).
    pub files: Vec<FileCtx>,
    /// Every `fn` definition, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Every `enum` definition, in (file, token) order.
    pub enums: Vec<EnumDef>,
    /// Companion raw files, sorted by path.
    pub aux: Vec<AuxFile>,
}

impl SymbolIndex {
    /// Build the index over already-constructed file contexts. `files`
    /// must be sorted by path (the pipeline guarantees it), so the
    /// index — and everything derived from it — is independent of walk
    /// order.
    pub fn build(files: Vec<FileCtx>, mut aux: Vec<AuxFile>) -> SymbolIndex {
        aux.sort_by(|a, b| a.path.cmp(&b.path));
        let mut fns = Vec::new();
        let mut enums = Vec::new();
        for (fi, ctx) in files.iter().enumerate() {
            index_file(fi, ctx, &mut fns, &mut enums);
        }
        SymbolIndex { files, fns, enums, aux }
    }

    /// The context of the file at exactly `path`, if analyzed.
    pub fn file_at(&self, path: &str) -> Option<&FileCtx> {
        self.files.iter().find(|c| c.path == path)
    }

    /// The aux file whose path ends with `suffix`, if loaded.
    pub fn aux_ending(&self, suffix: &str) -> Option<&AuxFile> {
        self.aux.iter().find(|a| a.path.ends_with(suffix))
    }

    /// The enum named `name` defined in the file at exactly `path`.
    pub fn enum_at(&self, path: &str, name: &str) -> Option<&EnumDef> {
        self.enums
            .iter()
            .find(|e| e.name == name && self.files[e.file].path == path)
    }

    /// Every non-test `fn` named `name` in `crate_name`.
    pub fn fns_named<'a>(
        &'a self,
        crate_name: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = (usize, &'a FnDef)> {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| !f.in_test && f.crate_name == crate_name && f.name == name)
    }

    /// `file:line` for a function (finding/provenance rendering).
    pub fn fn_site(&self, f: &FnDef) -> String {
        format!("{}:{} fn {}", self.files[f.file].path, f.line, f.name)
    }
}

/// `crates/<name>/src/…` → `<name>`; anything else isolates as itself.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or(path)
        .to_string()
}

fn index_file(fi: usize, ctx: &FileCtx, fns: &mut Vec<FnDef>, enums: &mut Vec<EnumDef>) {
    let toks = &ctx.toks;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let crate_name = crate_of(&ctx.path);
    let mut i = 0;
    while i < toks.len() {
        match text(i) {
            Some("fn") if toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                let d = ctx.depth[i];
                // Body opens at the first `{` back at the fn's depth; a
                // `;` there first means a bodiless trait declaration.
                let mut j = i + 2;
                let mut open = None;
                let mut bodiless = false;
                while j < toks.len() {
                    if ctx.depth[j] == d {
                        match text(j) {
                            Some("{") => {
                                open = Some(j);
                                break;
                            }
                            Some(";") => {
                                bodiless = true;
                                break;
                            }
                            Some("fn") => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let Some(open) = open else {
                    // A bodiless trait declaration still gets an entry
                    // (empty body range) so `fns_named` sees the name.
                    if bodiless {
                        fns.push(FnDef {
                            name: toks[i + 1].text.clone(),
                            crate_name: crate_name.clone(),
                            file: fi,
                            line: toks[i].line,
                            body: (j, j),
                            in_test: ctx.in_test(i),
                            locks: Vec::new(),
                            guards: Vec::new(),
                            blocking: Vec::new(),
                            calls: Vec::new(),
                        });
                    }
                    i += 2;
                    continue;
                };
                // The matching `}` is the first close recorded at d+1.
                let close = (open + 1..toks.len())
                    .find(|&k| text(k) == Some("}") && ctx.depth[k] == d + 1)
                    .unwrap_or(toks.len());
                let body = (open + 1, close);
                let mut def = FnDef {
                    name: toks[i + 1].text.clone(),
                    crate_name: crate_name.clone(),
                    file: fi,
                    line: toks[i].line,
                    body,
                    in_test: ctx.in_test(i),
                    locks: Vec::new(),
                    guards: Vec::new(),
                    blocking: Vec::new(),
                    calls: Vec::new(),
                };
                index_body(ctx, &mut def);
                fns.push(def);
                // Nested fns are rare and still indexed: resume right
                // after the name so the inner scan revisits the body.
                i += 2;
            }
            Some("enum") if toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                let d = ctx.depth[i];
                if let Some(open) =
                    (i + 2..toks.len()).find(|&k| text(k) == Some("{") && ctx.depth[k] == d)
                {
                    let close = (open + 1..toks.len())
                        .find(|&k| text(k) == Some("}") && ctx.depth[k] == d + 1)
                        .unwrap_or(toks.len());
                    let mut variants = Vec::new();
                    // Brace depth alone does not see tuple payloads
                    // (`Tuple(u8, Vec<T>)` keeps its commas at the body
                    // depth), so track paren/bracket nesting too.
                    let mut nest = 0i64;
                    for k in open + 1..close {
                        // A variant: an ident at the body's top depth,
                        // outside any payload group, whose predecessor
                        // opens the body, follows a comma, or closes a
                        // variant attribute.
                        if toks[k].kind == TokKind::Ident
                            && ctx.depth[k] == d + 1
                            && nest == 0
                            && matches!(text(k - 1), Some("{") | Some(",") | Some("]"))
                        {
                            variants.push((toks[k].text.clone(), toks[k].line));
                        }
                        match text(k) {
                            Some("(") | Some("[") => nest += 1,
                            Some(")") | Some("]") => nest -= 1,
                            _ => {}
                        }
                    }
                    enums.push(EnumDef {
                        name: toks[i + 1].text.clone(),
                        file: fi,
                        line: toks[i].line,
                        variants,
                    });
                    i = open + 1;
                } else {
                    i += 2;
                }
            }
            _ => i += 1,
        }
    }
}

/// Fill a function's lock/guard/blocking/call site lists.
fn index_body(ctx: &FileCtx, def: &mut FnDef) {
    let toks = &ctx.toks;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let (start, end) = def.body;
    // Closures handed to `spawn(…)` run on *another* thread: nothing
    // inside the spawn call's argument group counts as this function's
    // own locking/blocking behaviour.
    let spawned = spawn_arg_ranges(ctx, start, end.min(toks.len()));
    for k in start..end.min(toks.len()) {
        if spawned.iter().any(|&(s, e)| k >= s && k < e) {
            continue;
        }
        // Lock acquisition: `.lock()` / `.read()` / `.write()` — the
        // zero-argument call is what distinguishes guard acquisition
        // from `io::Read::read(buf)`-style calls.
        if text(k) == Some(".")
            && toks.get(k + 1).is_some_and(|t| ACQUIRERS.contains(&t.text.as_str()))
            && text(k + 2) == Some("(")
            && text(k + 3) == Some(")")
        {
            def.locks.push(LockSite {
                class: receiver_class(ctx, k),
                exclusive: toks[k + 1].text != "read",
                tok: k + 1,
                line: toks[k + 1].line,
            });
        }
        // Blocking calls, same shape the per-file rule matches — except
        // `join`, which must be zero-arg: `handle.join()` blocks on a
        // thread, `path.join(seg)` and `vec.join(sep)` do not.
        if text(k) == Some(".")
            && toks.get(k + 1).is_some_and(|t| BLOCKERS.contains(&t.text.as_str()))
            && text(k + 2) == Some("(")
            && (toks[k + 1].text != "join" || text(k + 3) == Some(")"))
        {
            def.blocking.push(CallSite {
                name: toks[k + 1].text.clone(),
                tok: k + 1,
                line: toks[k + 1].line,
            });
        }
        // Plain call sites: `name(` that is not a definition, keyword,
        // or tuple-constructor-ish ident. Macros (`name!`) are skipped
        // by the `(` requirement.
        if toks[k].kind == TokKind::Ident
            && text(k + 1) == Some("(")
            && !NON_CALLS.contains(&toks[k].text.as_str())
            && text(k.wrapping_sub(1)) != Some("fn")
        {
            def.calls.push(CallSite { name: toks[k].text.clone(), tok: k, line: toks[k].line });
        }
        // Guard bindings: `let [mut] name = … .lock|read|write();`
        if text(k) == Some("let") {
            let d = ctx.depth[k];
            let mut j = k + 1;
            if text(j) == Some("mut") {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let Some(semi) =
                (j..end.min(toks.len())).find(|&m| text(m) == Some(";") && ctx.depth[m] == d)
            else {
                continue;
            };
            let is_guard = semi >= 4
                && text(semi - 4) == Some(".")
                && toks.get(semi - 3).is_some_and(|t| ACQUIRERS.contains(&t.text.as_str()))
                && text(semi - 2) == Some("(")
                && text(semi - 1) == Some(")");
            if !is_guard {
                continue;
            }
            let guard_name = name_tok.text.clone();
            // Liveness: to scope end (`}` at the let's depth) or an
            // explicit `drop(<name>)`.
            let mut stop = end.min(toks.len());
            let mut m = semi + 1;
            while m < end.min(toks.len()) {
                if text(m) == Some("}") && ctx.depth[m] == d {
                    stop = m;
                    break;
                }
                if ctx.seq(m, &["drop", "(", &guard_name, ")"]) {
                    stop = m;
                    break;
                }
                m += 1;
            }
            def.guards.push(GuardSite {
                name: guard_name,
                class: receiver_class(ctx, semi - 4),
                exclusive: toks[semi - 3].text != "read",
                live: (semi + 1, stop),
                line: toks[k].line,
            });
        }
    }
}

/// Token ranges covered by the argument group of every `spawn(…)` call
/// in `[start, end)` — half-open, starting at the `(`.
fn spawn_arg_ranges(ctx: &FileCtx, start: usize, end: usize) -> Vec<(usize, usize)> {
    let toks = &ctx.toks;
    let mut out = Vec::new();
    let mut k = start;
    while k < end {
        if toks[k].text == "spawn" && toks.get(k + 1).is_some_and(|t| t.text == "(") {
            let mut depth = 0i64;
            let mut m = k + 1;
            while m < toks.len() {
                match toks[m].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            out.push((k + 1, (m + 1).min(toks.len())));
            k = m + 1;
        } else {
            k += 1;
        }
    }
    out
}

/// The lock class for an acquisition whose `.` sits at `dot`: the last
/// identifier of the receiver path (`self.sessions.lock()` →
/// `sessions`, `shard(name).write()` → `shard`). Unresolvable shapes
/// collapse to `<expr>` — still a class, just a merged one.
fn receiver_class(ctx: &FileCtx, dot: usize) -> String {
    let toks = &ctx.toks;
    if dot == 0 {
        return "<expr>".to_string();
    }
    let prev = &toks[dot - 1];
    match prev.text.as_str() {
        ")" | "]" => {
            // Walk back over the bracketed group to the ident before it.
            let (open, close) = if prev.text == ")" { ("(", ")") } else { ("[", "]") };
            let mut depth = 0i64;
            let mut k = dot - 1;
            loop {
                let t = toks[k].text.as_str();
                if t == close {
                    depth += 1;
                } else if t == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return "<expr>".to_string();
                }
                k -= 1;
            }
            if k > 0 && toks[k - 1].kind == TokKind::Ident {
                toks[k - 1].text.clone()
            } else {
                "<expr>".to_string()
            }
        }
        _ if prev.kind == TokKind::Ident || prev.kind == TokKind::Lit => prev.text.clone(),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> SymbolIndex {
        let ctx = FileCtx::new("crates/serve/src/x.rs", src, &crate::rules::names());
        SymbolIndex::build(vec![ctx], Vec::new())
    }

    #[test]
    fn fn_bodies_and_nesting() {
        let idx = index_of(
            "fn outer(a: u8) -> u8 { inner(a) }\n\
             fn inner(a: u8) -> u8 { a }\n\
             trait T { fn decl(&self); }\n\
             impl S { fn method(&self) { self.field.lock(); } }",
        );
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "decl", "method"]);
        assert_eq!(idx.fns[0].calls.len(), 1);
        assert_eq!(idx.fns[0].calls[0].name, "inner");
        // The bodiless trait decl has an empty body range.
        assert_eq!(idx.fns[2].body.0, idx.fns[2].body.1);
        assert_eq!(idx.fns[3].locks.len(), 1);
        assert_eq!(idx.fns[3].locks[0].class, "field");
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let idx = index_of(
            "enum E<T> {\n  Plain,\n  Tuple(u8, Vec<[u8; 4]>),\n  Struct { x: T },\n  #[cfg(unix)]\n  Gated,\n}",
        );
        assert_eq!(idx.enums.len(), 1);
        let vars: Vec<&str> = idx.enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(vars, vec!["Plain", "Tuple", "Struct", "Gated"]);
    }

    #[test]
    fn guards_lock_classes_and_liveness() {
        let idx = index_of(
            "fn f(&self) {\n  let g = self.sessions.lock();\n  use_it(&g);\n  drop(g);\n  after();\n}\n\
             fn t(&self) { let n = self.map.read().len(); }",
        );
        let f = &idx.fns[0];
        assert_eq!(f.guards.len(), 1);
        assert_eq!(f.guards[0].class, "sessions");
        assert!(f.guards[0].exclusive);
        // Liveness ends at drop: the `after` call is outside the range.
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.tok >= f.guards[0].live.1);
        // `.read().len()` is a temporary: a lock site, not a guard.
        let t = &idx.fns[1];
        assert!(t.guards.is_empty());
        assert_eq!(t.locks.len(), 1);
        assert!(!t.locks[0].exclusive);
    }

    #[test]
    fn receiver_classes_resolve_through_calls_and_io_reads_are_excluded() {
        let idx = index_of(
            "fn f(&self, i: usize) {\n  self.shard(i).write();\n  self.shards[i].state.lock();\n}\n\
             fn g(r: &mut impl Read, buf: &mut [u8]) { r.read(buf); }",
        );
        let classes: Vec<&str> = idx.fns[0].locks.iter().map(|l| l.class.as_str()).collect();
        assert_eq!(classes, vec!["shard", "state"]);
        // `read(buf)` takes an argument — not a guard acquisition.
        assert!(idx.fns[1].locks.is_empty());
    }

    #[test]
    fn crate_names_come_from_paths() {
        assert_eq!(crate_of("crates/serve/src/router.rs"), "serve");
        assert_eq!(crate_of("crates/query/src/a/b.rs"), "query");
        assert_eq!(crate_of("weird.rs"), "weird.rs");
    }
}
