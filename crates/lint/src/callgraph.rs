//! Phase-1½: a conservative, name-based, intra-crate call graph over
//! the symbol index, with transitive lock/blocking closures.
//!
//! Resolution is deliberately blunt: a call site `f(…)` or `.f(…)`
//! edges to **every** non-test `fn f` defined in the same crate.
//! That over-approximates (same-named methods on different types
//! merge) and under-approximates (cross-crate calls, closures, and
//! trait dispatch into other crates are invisible) — both directions
//! are documented soundness caveats in `DESIGN.md § Cross-file static
//! analysis`. The closures answer the two questions the lock-order
//! rules ask: *which lock classes can running `f` acquire?* and *can
//! running `f` block on channel/thread progress?*

use crate::index::SymbolIndex;
use std::collections::{BTreeMap, BTreeSet};

/// Method names so common across std types (maps, vecs, options,
/// builders) that resolving them by bare name to same-crate `fn`s is
/// pure noise: `sessions.lock().remove(k)` is `HashMap::remove`, not
/// whatever `fn remove` the crate happens to define. Call sites with
/// these names never resolve — a documented under-approximation.
const UBIQUITOUS: [&str; 24] = [
    "new", "default", "from", "get", "get_mut", "insert", "remove", "push", "pop", "len",
    "is_empty", "contains", "contains_key", "entry", "iter", "next", "clone", "parse", "clear",
    "take", "drain", "extend", "with_capacity", "flush",
];

/// The call graph plus fixpoint closures, indexed like
/// [`SymbolIndex::fns`].
pub struct CallGraph {
    /// `(crate, name)` → defining fn indices (non-test only).
    by_name: BTreeMap<(String, String), Vec<usize>>,
    /// Per fn: resolved same-crate callee indices, sorted, deduped.
    pub callees: Vec<Vec<usize>>,
    /// Per fn: every `(lock class, exclusive)` it can acquire, itself
    /// or transitively through callees.
    pub reachable_locks: Vec<BTreeSet<(String, bool)>>,
    /// Per fn: whether it can block (`send`/`recv`/`join`), itself or
    /// transitively.
    pub can_block: Vec<bool>,
}

impl CallGraph {
    /// Build the graph and run the closures to fixpoint.
    pub fn build(index: &SymbolIndex) -> CallGraph {
        let n = index.fns.len();
        let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in index.fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry((f.crate_name.clone(), f.name.clone())).or_default().push(i);
            }
        }
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in index.fns.iter().enumerate() {
            let mut out = BTreeSet::new();
            for c in &f.calls {
                if UBIQUITOUS.contains(&c.name.as_str()) {
                    continue;
                }
                if let Some(defs) = by_name.get(&(f.crate_name.clone(), c.name.clone())) {
                    out.extend(defs.iter().copied());
                }
            }
            callees[i] = out.into_iter().collect();
        }
        let mut reachable_locks: Vec<BTreeSet<(String, bool)>> = index
            .fns
            .iter()
            .map(|f| f.locks.iter().map(|l| (l.class.clone(), l.exclusive)).collect())
            .collect();
        let mut can_block: Vec<bool> = index.fns.iter().map(|f| !f.blocking.is_empty()).collect();
        // Fixpoint propagation over the (possibly cyclic) graph.
        loop {
            let mut changed = false;
            for i in 0..n {
                for &c in &callees[i] {
                    if c == i {
                        continue;
                    }
                    if can_block[c] && !can_block[i] {
                        can_block[i] = true;
                        changed = true;
                    }
                    if !reachable_locks[c].is_subset(&reachable_locks[i]) {
                        let add: Vec<_> = reachable_locks[c]
                            .difference(&reachable_locks[i])
                            .cloned()
                            .collect();
                        reachable_locks[i].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CallGraph { by_name, callees, reachable_locks, can_block }
    }

    /// Non-test fns named `name` in `crate_name` (call-site resolution).
    /// Ubiquitous std-ish names never resolve, matching edge building.
    pub fn resolve(&self, crate_name: &str, name: &str) -> &[usize] {
        if UBIQUITOUS.contains(&name) {
            return &[];
        }
        self.by_name
            .get(&(crate_name.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A shortest call chain from `from` to a fn that *directly*
    /// satisfies `hit`, as `file:line fn name` strings — the provenance
    /// attached to interprocedural findings. `None` if unreachable.
    pub fn chain_to(
        &self,
        index: &SymbolIndex,
        from: usize,
        hit: impl Fn(usize) -> bool,
    ) -> Option<Vec<String>> {
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(i) = queue.pop_front() {
            if hit(i) {
                let mut path = vec![i];
                let mut at = i;
                while at != from {
                    at = prev[&at];
                    path.push(at);
                }
                path.reverse();
                return Some(path.iter().map(|&f| index.fn_site(&index.fns[f])).collect());
            }
            for &c in &self.callees[i] {
                if seen.insert(c) {
                    prev.insert(c, i);
                    queue.push_back(c);
                }
            }
        }
        None
    }

    /// Provenance chain from `from` to a direct acquisition of `class`.
    pub fn lock_chain(&self, index: &SymbolIndex, from: usize, class: &str) -> Vec<String> {
        self.chain_to(index, from, |i| index.fns[i].locks.iter().any(|l| l.class == class))
            .unwrap_or_default()
    }

    /// Provenance chain from `from` to a direct blocking call.
    pub fn block_chain(&self, index: &SymbolIndex, from: usize) -> Vec<String> {
        self.chain_to(index, from, |i| !index.fns[i].blocking.is_empty()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileCtx;
    use crate::index::AuxFile;

    fn graph(src: &str) -> (SymbolIndex, CallGraph) {
        let ctx = FileCtx::new("crates/serve/src/x.rs", src, &crate::rules::names());
        let idx = SymbolIndex::build(vec![ctx], Vec::<AuxFile>::new());
        let g = CallGraph::build(&idx);
        (idx, g)
    }

    #[test]
    fn transitive_locks_and_blocking_propagate_through_cycles() {
        let (idx, g) = graph(
            "fn a(&self) { self.b(); }\n\
             fn b(&self) { self.c(); self.a() }\n\
             fn c(&self) { self.state.lock(); self.rx.recv(); }",
        );
        let pos = |n: &str| idx.fns.iter().position(|f| f.name == n).unwrap();
        for f in ["a", "b", "c"] {
            assert!(g.can_block[pos(f)], "{f} blocks transitively");
            assert!(
                g.reachable_locks[pos(f)].contains(&("state".to_string(), true)),
                "{f} reaches the state lock"
            );
        }
        let chain = g.lock_chain(&idx, pos("a"), "state");
        assert_eq!(chain.len(), 3, "a -> b -> c: {chain:?}");
    }

    #[test]
    fn test_fns_and_other_crates_do_not_resolve() {
        let ctx1 = FileCtx::new(
            "crates/serve/src/x.rs",
            "fn caller(&self) { helper(); }",
            &crate::rules::names(),
        );
        let ctx2 = FileCtx::new(
            "crates/query/src/y.rs",
            "fn helper() { x.lock(); }\n#[test]\nfn caller() { helper(); }",
            &crate::rules::names(),
        );
        let idx = SymbolIndex::build(vec![ctx1, ctx2], Vec::new());
        let g = CallGraph::build(&idx);
        let caller = idx.fns.iter().position(|f| f.name == "caller" && !f.in_test).unwrap();
        // `helper` lives in another crate: no edge, no reachable lock.
        assert!(g.callees[caller].is_empty());
        assert!(g.reachable_locks[caller].is_empty());
        // Test fns never appear as resolution targets.
        assert!(g.resolve("query", "caller").is_empty());
        assert_eq!(g.resolve("query", "helper").len(), 1);
    }
}
