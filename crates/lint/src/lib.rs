//! copycat-lint: the in-tree determinism & concurrency invariant
//! checker.
//!
//! The reproduction's quantitative claims — byte-identical
//! concurrent-vs-sequential replay, virtual-time deadlines, seedable
//! experiments — rest on invariants no compiler enforces: nobody reads
//! the wall clock outside the deadline/bench modules, nobody iterates a
//! random-seeded hash map, no request path panics, no lock guard blocks
//! on a channel. This crate enforces them mechanically, hermetically
//! (no clippy plugins, no registry crates): a lightweight Rust lexer
//! ([`lex`]), a token-tree matcher with per-file context ([`file`]), a
//! rule engine ([`rules`]), machine-readable findings ([`findings`]),
//! and a committed ratchet ([`baseline`]) that lets the finding count
//! only go down.
//!
//! ## Two-phase analysis
//!
//! Analysis runs in two phases over the whole tree:
//!
//! 1. **Per-file** ([`rules::Rule`]): each file's token stream is
//!    scanned independently — wallclock reads, panic paths, hot-path
//!    allocations, and friends.
//! 2. **Whole-tree** ([`rules::TreeRule`]): a symbol index
//!    ([`index::SymbolIndex`]) and a conservative intra-crate call
//!    graph ([`callgraph::CallGraph`]) are built over all files at
//!    once, then interprocedural rules run — lock-order cycles,
//!    guard-held-across-transitively-blocking-call, and protocol
//!    exhaustiveness against companion artifacts (golden transcripts,
//!    durability tests) loaded as raw [`index::AuxFile`]s.
//!
//! Files are sorted by path before either phase, so findings are
//! independent of directory-walk order (pinned by a shuffle property
//! test).
//!
//! ## Suppressions
//!
//! A finding is silenced inline with
//!
//! ```text
//! // lint:allow(<rule>) <reason>
//! ```
//!
//! on the offending line (trailing) or the line above (standalone). The
//! reason is mandatory; a reasonless or unknown-rule `lint:allow` is
//! itself a finding (`bad-suppression`). Suppressions are applied
//! *centrally* after both phases, which is what makes staleness
//! detectable: a `lint:allow` that silenced nothing this run becomes a
//! `stale-suppression` finding — suppressions cannot outlive the code
//! they excuse. Two rules accept justification comments instead:
//! `relaxed-atomics` wants `// relaxed: <why>` and `unsafe-safety`
//! wants `// SAFETY: <invariant>` at the site.
//!
//! ## CLI
//!
//! - `copycat-lint check [--budget-ms N]` — exit non-zero on any
//!   non-baseline finding, or if analysis blows the wall-time budget.
//! - `copycat-lint json` — full findings report (with rule provenance
//!   and runtime) as JSON on stdout.
//! - `copycat-lint baseline` — regenerate `LINT_BASELINE.json`, printing
//!   a diff summary. Strict rules are never written to the baseline.

pub mod baseline;
pub mod callgraph;
pub mod file;
pub mod findings;
pub mod index;
pub mod lex;
pub mod rules;
pub mod walk;

use crate::callgraph::CallGraph;
use crate::file::FileCtx;
use crate::findings::Finding;
use crate::index::{AuxFile, SymbolIndex};
use std::io;
use std::path::Path;

/// Companion files the tree rules read as raw text, relative to the
/// repo root. Loaded by [`analyze_tree`]; missing ones are reported by
/// the rules that need them, not silently skipped.
pub const AUX_FILES: &[&str] = &[
    "crates/serve/tests/golden/wire_transcript.txt",
    "crates/serve/tests/durability.rs",
];

/// Run the full two-phase pipeline over one file's source, `path`
/// being its repo-relative `/`-separated location (rule scoping keys
/// off it). Returns findings in canonical sorted order, suppressions
/// applied and stale ones reported.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    analyze_files_with_aux(&[(path, src)], Vec::new())
}

/// Analyze a pre-loaded set of `(path, source)` files with no
/// companion files. Output order is independent of input order (the
/// property the shuffle test pins).
pub fn analyze_files<S: AsRef<str>>(files: &[(S, S)]) -> Vec<Finding> {
    let pairs: Vec<(&str, &str)> = files.iter().map(|(p, s)| (p.as_ref(), s.as_ref())).collect();
    analyze_files_with_aux(&pairs, Vec::new())
}

/// The testable core of [`analyze_tree`]: the full two-phase pipeline
/// over pre-loaded files plus raw companion files.
pub fn analyze_files_with_aux(files: &[(&str, &str)], aux: Vec<AuxFile>) -> Vec<Finding> {
    let names = rules::names();
    let mut ctxs: Vec<FileCtx> = files.iter().map(|(p, s)| FileCtx::new(p, s, &names)).collect();
    ctxs.sort_by(|a, b| a.path.cmp(&b.path));
    // Phase 1: per-file rules, raw (unsuppressed) findings.
    let mut raw: Vec<Finding> = Vec::new();
    for ctx in &ctxs {
        raw.extend(ctx.bad_suppressions.iter().cloned());
        for rule in rules::all() {
            rule.check(ctx, &mut raw);
        }
    }
    // Phase 2: whole-tree rules over the symbol index and call graph.
    let index = SymbolIndex::build(ctxs, aux);
    let graph = CallGraph::build(&index);
    for rule in rules::tree_rules() {
        rule.check(&index, &graph, &mut raw);
    }
    // Central suppression pass: drop suppressed findings, remember
    // which suppressions earned their keep, report the rest as stale.
    let mut out: Vec<Finding> = Vec::new();
    let mut used: Vec<(usize, usize)> = Vec::new(); // (file, suppression) pairs
    for f in raw {
        let hit = index.files.iter().enumerate().find_map(|(fi, ctx)| {
            if ctx.path != f.file {
                return None;
            }
            ctx.suppressions
                .iter()
                .position(|s| s.rule == f.rule && s.lines.contains(&f.line))
                .map(|si| (fi, si))
        });
        match hit {
            Some(pair) => used.push(pair),
            None => out.push(f),
        }
    }
    for (fi, ctx) in index.files.iter().enumerate() {
        for (si, s) in ctx.suppressions.iter().enumerate() {
            if !used.contains(&(fi, si)) {
                out.push(Finding::new(
                    "stale-suppression",
                    ctx.path.clone(),
                    s.at,
                    format!(
                        "lint:allow({}) suppresses nothing — the finding it excused is gone; delete the comment",
                        s.rule
                    ),
                ));
            }
        }
    }
    findings::sort(&mut out);
    out
}

/// Walk `crates/*/src/**/*.rs` under `root`, load the companion files,
/// and run the full two-phase analysis.
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files: Vec<(String, String)> = Vec::new();
    for rel in walk::lintable_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    let mut aux = Vec::new();
    for rel in AUX_FILES {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            aux.push(AuxFile { path: (*rel).to_string(), text });
        }
    }
    let pairs: Vec<(&str, &str)> =
        files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    Ok(analyze_files_with_aux(&pairs, aux))
}

/// The committed baseline's file name, relative to the repo root.
pub const BASELINE_FILE: &str = "LINT_BASELINE.json";

/// Load the committed baseline (absent file = empty baseline).
pub fn load_baseline(root: &Path) -> Result<baseline::Baseline, String> {
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(baseline::Baseline::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    baseline::from_json(&text)
}
