//! copycat-lint: the in-tree determinism & concurrency invariant
//! checker.
//!
//! The reproduction's quantitative claims — byte-identical
//! concurrent-vs-sequential replay, virtual-time deadlines, seedable
//! experiments — rest on invariants no compiler enforces: nobody reads
//! the wall clock outside the deadline/bench modules, nobody iterates a
//! random-seeded hash map, no request path panics, no lock guard blocks
//! on a channel. This crate enforces them mechanically, hermetically
//! (no clippy plugins, no registry crates): a lightweight Rust lexer
//! ([`lex`]), a token-tree matcher with per-file context ([`file`]), a
//! rule engine ([`rules`]), machine-readable findings ([`findings`]),
//! and a committed ratchet ([`baseline`]) that lets the finding count
//! only go down.
//!
//! ## Suppressions
//!
//! A finding is silenced inline with
//!
//! ```text
//! // lint:allow(<rule>) <reason>
//! ```
//!
//! on the offending line (trailing) or the line above (standalone). The
//! reason is mandatory; a reasonless or unknown-rule `lint:allow` is
//! itself a finding (`bad-suppression`). Two rules accept justification
//! comments instead: `relaxed-atomics` wants `// relaxed: <why>` and
//! `unsafe-safety` wants `// SAFETY: <invariant>` at the site.
//!
//! ## CLI
//!
//! - `copycat-lint check` — exit non-zero on any non-baseline finding.
//! - `copycat-lint json` — full findings report as JSON on stdout.
//! - `copycat-lint baseline` — regenerate `LINT_BASELINE.json`, printing
//!   a diff summary. Strict rules are never written to the baseline.

pub mod baseline;
pub mod file;
pub mod findings;
pub mod lex;
pub mod rules;
pub mod walk;

use crate::file::FileCtx;
use crate::findings::Finding;
use std::io;
use std::path::Path;

/// Run every rule over one file's source, `path` being its
/// repo-relative `/`-separated location (rule scoping keys off it).
/// Returns findings in canonical sorted order, suppressions applied.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let names = rules::names();
    let ctx = FileCtx::new(path, src, &names);
    let mut out = ctx.bad_suppressions.clone();
    for rule in rules::all() {
        rule.check(&ctx, &mut out);
    }
    findings::sort(&mut out);
    out
}

/// Analyze a pre-loaded set of `(path, source)` files — the testable
/// core of [`analyze_tree`]. Output order is independent of input
/// order (the property the stable-order test pins).
pub fn analyze_files<S: AsRef<str>>(files: &[(S, S)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, src) in files {
        out.extend(analyze_source(path.as_ref(), src.as_ref()));
    }
    findings::sort(&mut out);
    out
}

/// Walk `crates/*/src/**/*.rs` under `root` and analyze everything.
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for rel in walk::lintable_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(analyze_source(&rel, &src));
    }
    findings::sort(&mut out);
    Ok(out)
}

/// The committed baseline's file name, relative to the repo root.
pub const BASELINE_FILE: &str = "LINT_BASELINE.json";

/// Load the committed baseline (absent file = empty baseline).
pub fn load_baseline(root: &Path) -> Result<baseline::Baseline, String> {
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(baseline::Baseline::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    baseline::from_json(&text)
}
