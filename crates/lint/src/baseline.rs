//! The findings baseline: a committed ratchet that only goes down.
//!
//! `LINT_BASELINE.json` records, per `(rule, file)`, how many findings
//! are tolerated. `copycat-lint check` fails on any finding *beyond*
//! its baselined count — so new debt cannot land — and nags when the
//! live count drops below the baseline, so paid-off debt gets locked in
//! with `copycat-lint baseline`. Strict rules ([`crate::rules::STRICT`])
//! and malformed suppressions may never be baselined at all: for those,
//! the only ways forward are a fix or an inline `lint:allow` reason.

use crate::findings::Finding;
use crate::rules::STRICT;
use copycat_util::json::Json;
use std::collections::BTreeMap;

/// Tolerated finding counts per `(rule, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file) → count`, ordered for stable serialization.
    pub counts: BTreeMap<(String, String), u64>,
}

/// The verdict of comparing live findings against the baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Findings beyond their baselined count (check fails).
    pub violations: Vec<Finding>,
    /// Baseline entries naming strict rules (check fails: un-baselineable).
    pub illegal_entries: Vec<(String, String, u64)>,
    /// `(rule, file, baselined, live)` where live < baselined — the
    /// ratchet can be tightened.
    pub improvements: Vec<(String, String, u64, u64)>,
}

impl Verdict {
    /// Whether `check` should exit zero.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.illegal_entries.is_empty()
    }
}

/// Group findings into `(rule, file) → count`.
pub fn count(findings: &[Finding]) -> BTreeMap<(String, String), u64> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
    }
    m
}

/// A rule that may never carry baseline entries. Beyond the strict
/// set, malformed and stale suppressions are un-baselineable: tolerated
/// suppression rot defeats the point of tracking it.
fn unbaselineable(rule: &str) -> bool {
    STRICT.contains(&rule) || rule == "bad-suppression" || rule == "stale-suppression"
}

/// Compare live findings against a baseline.
pub fn compare(findings: &[Finding], baseline: &Baseline) -> Verdict {
    let mut v = Verdict::default();
    for (&(ref rule, ref file), &allowed) in &baseline.counts {
        if unbaselineable(rule) {
            v.illegal_entries.push((rule.clone(), file.clone(), allowed));
        }
    }
    let live = count(findings);
    for (key @ &(ref rule, ref file), &n) in &live {
        let allowed = if unbaselineable(rule) { 0 } else { baseline.counts.get(key).copied().unwrap_or(0) };
        if n > allowed {
            // Surface the individual findings; the trailing `allowed`
            // ones (by sorted order they are interchangeable) stay quiet.
            let mut over = n - allowed;
            for f in findings.iter().filter(|f| f.rule == rule && &f.file == file) {
                if over == 0 {
                    break;
                }
                v.violations.push(f.clone());
                over -= 1;
            }
        }
    }
    for (key @ &(ref rule, ref file), &allowed) in &baseline.counts {
        if unbaselineable(rule) {
            continue;
        }
        let n = live.get(key).copied().unwrap_or(0);
        if n < allowed {
            v.improvements.push((rule.clone(), file.clone(), allowed, n));
        }
    }
    v
}

/// Build the baseline that tolerates exactly the given findings —
/// minus strict-rule findings, which are never written.
pub fn from_findings(findings: &[Finding]) -> Baseline {
    let mut counts = count(findings);
    counts.retain(|(rule, _), _| !unbaselineable(rule));
    Baseline { counts }
}

/// Serialize to the committed JSON shape.
pub fn to_json(b: &Baseline) -> Json {
    Json::obj(vec![
        ("version".into(), Json::Num(1.0)),
        (
            "entries".into(),
            Json::Arr(
                b.counts
                    .iter()
                    .map(|((rule, file), n)| {
                        Json::obj(vec![
                            ("rule".into(), Json::str(rule)),
                            ("file".into(), Json::str(file)),
                            ("count".into(), Json::Num(*n as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parse the committed JSON shape. `Err` carries a human message.
pub fn from_json(text: &str) -> Result<Baseline, String> {
    let j = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let entries = j
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "baseline has no \"entries\" array".to_string())?;
    let mut counts = BTreeMap::new();
    for e in entries {
        let rule = e.get("rule").and_then(Json::as_str).ok_or("entry missing \"rule\"")?;
        let file = e.get("file").and_then(Json::as_str).ok_or("entry missing \"file\"")?;
        let n = e.get("count").and_then(Json::as_f64).ok_or("entry missing \"count\"")?;
        counts.insert((rule.to_string(), file.to_string()), n as u64);
    }
    Ok(Baseline { counts })
}

/// Human diff summary between two baselines (for `copycat-lint baseline`).
pub fn diff_summary(old: &Baseline, new: &Baseline) -> Vec<String> {
    let mut lines = Vec::new();
    for (key @ (rule, file), n) in &new.counts {
        match old.counts.get(key) {
            None => lines.push(format!("+ {rule} {file}: {n}")),
            Some(o) if o != n => lines.push(format!("~ {rule} {file}: {o} -> {n}")),
            _ => {}
        }
    }
    for (key @ (rule, file), o) in &old.counts {
        if !new.counts.contains_key(key) {
            lines.push(format!("- {rule} {file}: {o} -> 0"));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding::new(rule, file, line, "m".to_string())
    }

    #[test]
    fn ratchet_blocks_growth_and_reports_shrink() {
        let baseline = from_findings(&[
            f("relaxed-atomics", "a.rs", 1),
            f("relaxed-atomics", "a.rs", 2),
            f("spawn-discipline", "b.rs", 1),
        ]);
        // Same counts: clean.
        assert!(compare(&[f("relaxed-atomics", "a.rs", 9), f("relaxed-atomics", "a.rs", 10),
                          f("spawn-discipline", "b.rs", 3)], &baseline).clean());
        // One more in a.rs: exactly one violation escapes.
        let v = compare(
            &[f("relaxed-atomics", "a.rs", 1), f("relaxed-atomics", "a.rs", 2),
              f("relaxed-atomics", "a.rs", 3), f("spawn-discipline", "b.rs", 1)],
            &baseline,
        );
        assert_eq!(v.violations.len(), 1);
        // One fewer: clean, with an improvement nag.
        let v = compare(&[f("relaxed-atomics", "a.rs", 1), f("spawn-discipline", "b.rs", 1)], &baseline);
        assert!(v.clean());
        assert_eq!(v.improvements, vec![("relaxed-atomics".into(), "a.rs".into(), 2, 1)]);
    }

    #[test]
    fn strict_rules_cannot_be_baselined() {
        // from_findings refuses to write them…
        let b = from_findings(&[f("wallclock", "a.rs", 1), f("relaxed-atomics", "a.rs", 2)]);
        assert_eq!(b.counts.len(), 1);
        // …a hand-edited baseline naming them is itself a violation…
        let mut hacked = Baseline::default();
        hacked.counts.insert(("panic-path".into(), "x.rs".into()), 5);
        let v = compare(&[], &hacked);
        assert!(!v.clean());
        assert_eq!(v.illegal_entries.len(), 1);
        // …and strict findings violate even when "covered".
        let v = compare(&[f("panic-path", "x.rs", 3)], &hacked);
        assert_eq!(v.violations.len(), 1);
    }

    #[test]
    fn json_roundtrip_and_diff() {
        let b = from_findings(&[f("relaxed-atomics", "a.rs", 1), f("guard-across-blocking", "c.rs", 2)]);
        let round = from_json(&to_json(&b).to_string()).unwrap();
        assert_eq!(b, round);
        let empty = Baseline::default();
        let d = diff_summary(&b, &empty);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|l| l.starts_with("- ")));
    }
}
