//! A lightweight Rust lexer: code tokens plus a separate comment list.
//!
//! The rule engine does not need a real parse tree — every invariant it
//! enforces is expressible over a flat token stream with line numbers
//! and brace depths. The lexer therefore only has to get the *boundaries*
//! right: string/char/byte/raw-string literals must never leak their
//! contents as tokens (rule needles live inside the lint's own source as
//! string literals), comments must be captured verbatim (suppressions
//! and justification comments are parsed out of them), and `::` must be
//! one token so needles like `Instant :: now` are three tokens long.
//!
//! Everything else is deliberately loose: numbers are "a digit then
//! whatever alphanumeric tail follows", lifetimes are single tokens, and
//! all remaining punctuation is one character per token.

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (single char, except the combined `::`).
    Punct,
    /// String / char / byte / numeric literal, or a lifetime.
    Lit,
}

/// One code token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (literals keep their quotes).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line or block, doc or plain), text without delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment body, delimiters stripped, newlines preserved.
    pub text: String,
}

/// Lexed file: the code token stream and the comment list, in order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments and whitespace removed).
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src`. Never fails: unterminated literals/comments consume to
/// end-of-file, which is the only sane recovery for a linter.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                self.string_literal(line);
            } else if c == '\'' {
                self.quote(line);
            } else if is_raw_string_start(&self.chars[self.pos..]) {
                self.raw_string(line);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump(); // `b`
                self.quote(line);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                self.string_literal(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if c == '_' || c.is_alphanumeric() {
                self.ident(line);
            } else if c == ':' && self.peek(1) == Some(':') {
                self.bump();
                self.bump();
                self.push(TokKind::Punct, "::".to_string(), line);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // whatever is escaped, including `"` and `\`
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Lit, "\"…\"".to_string(), line);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        self.bump(); // `'`
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: consume escape, then to closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Lit, "'…'".to_string(), line);
            }
            (Some(c), Some('\'')) => {
                // `'x'`: a one-char literal.
                let _ = c;
                self.bump();
                self.bump();
                self.push(TokKind::Lit, "'…'".to_string(), line);
            }
            (Some(c), _) if c == '_' || c.is_alphanumeric() => {
                // A lifetime: `'a`, `'static`, …
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lit, text, line);
            }
            _ => {
                // Degenerate (`'(`…): emit the quote as punctuation.
                self.push(TokKind::Punct, "'".to_string(), line);
            }
        }
    }

    fn raw_string(&mut self, line: u32) {
        // Prefix: `r`, `br`, or `rb`, then `#…#"`.
        while let Some(c) = self.peek(0) {
            if c == 'r' || c == 'b' {
                self.bump();
            } else {
                break;
            }
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening `"`
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Lit, "r\"…\"".to_string(), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // One decimal point, and never the `..` of a range.
                seen_dot = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Lit, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

/// Whether `rest` starts a raw (byte) string: `r"`, `r#`, `br"`, `br#`,
/// `rb…` — a letter prefix of r/b followed by optional hashes and `"`.
fn is_raw_string_start(rest: &[char]) -> bool {
    let mut i = 0;
    let mut saw_r = false;
    while i < 2 {
        match rest.get(i) {
            Some('r') => {
                saw_r = true;
                i += 1;
            }
            Some('b') if i == 0 => i += 1,
            _ => break,
        }
    }
    if !saw_r || i == 0 {
        return false;
    }
    while rest.get(i) == Some(&'#') {
        i += 1;
    }
    rest.get(i) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        assert_eq!(
            texts("let x = Instant::now();"),
            vec!["let", "x", "=", "Instant", "::", "now", "(", ")", ";"]
        );
    }

    #[test]
    fn strings_never_leak_tokens() {
        let l = lex("let s = \"Instant::now() // not a comment\"; f(s)");
        assert!(l.toks.iter().all(|t| t.text != "Instant" && t.text != "now"));
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex(r####"let a = r#"quote " inside"#; let b = "esc \" end"; done"####);
        let names: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Ident).collect();
        assert_eq!(names.last().unwrap().text, "done");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").len(),
            lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").toks.len()
        );
        let l = lex("let c: char = ';'; struct S<'long_lifetime>;");
        // The `;` inside the char literal must not terminate anything.
        assert_eq!(l.toks.iter().filter(|t| t.text == ";").count(), 2);
        assert!(l.toks.iter().any(|t| t.text == "'long_lifetime"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("a();\n// first\nb(); // trailing\n/* block\nspans */ c();");
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].line, 2);
        assert_eq!(l.comments[0].text.trim(), "first");
        assert_eq!(l.comments[1].line, 3);
        assert_eq!(l.comments[2].line, 4);
        assert_eq!(l.comments[2].end_line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ token");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "token");
    }

    #[test]
    fn ranges_are_not_floats() {
        assert_eq!(texts("for i in 0..10 {}"), vec!["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
        assert_eq!(texts("let x = 1.5;"), vec!["let", "x", "=", "1.5", ";"]);
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
