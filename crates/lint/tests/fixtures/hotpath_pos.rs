//! Positive fixture: an allocation inside a declared hot-path region.

// lint:hotpath(begin)
fn encode(s: &str) -> String {
    s.to_string()
}
// lint:hotpath(end)
