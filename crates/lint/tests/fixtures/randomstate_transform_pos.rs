//! Fixture: a transform-enumeration memo on the random-seeded std
//! hasher. The learner's tie-breaking walks memoized sub-programs; with
//! RandomState the walk order (and thus which equal-cost program wins)
//! would differ per process.

use std::collections::{HashMap, HashSet};

pub fn memoized_enumeration(positions: &[usize]) -> usize {
    let mut memo: HashMap<Vec<usize>, f64> = HashMap::new();
    memo.insert(positions.to_vec(), 0.0);
    let mut seen: HashSet<usize> = HashSet::new();
    seen.extend(positions.iter().copied());
    memo.len() + seen.len()
}
