//! Positive fixture for the interprocedural upgrade: the blocking send
//! hides one call away from the live guard.

impl Worker {
    fn publish(&self) {
        let g = self.state.lock();
        self.fanout();
    }

    fn fanout(&self) {
        self.tx.send(1);
    }
}
