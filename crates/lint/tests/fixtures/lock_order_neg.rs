//! Negative fixture: every function takes the two lock classes in the
//! same global order, and shared-read re-entry stays legal.

impl Router {
    fn close(&self) {
        let j = self.journal.lock();
        self.sessions.lock();
    }

    fn stats(&self) {
        let j = self.journal.lock();
        self.sessions.lock();
    }

    fn snapshot(&self) {
        let a = self.placement.read();
        self.placement.read();
    }
}
