//! Fixture: the `unsafe` block documents its invariant.

pub fn reinterpret(v: &[u8]) -> u32 {
    assert!(v.len() >= 4);
    // SAFETY: length asserted above; read_unaligned imposes no
    // alignment requirement on the source pointer.
    unsafe { std::ptr::read_unaligned(v.as_ptr() as *const u32) }
}
