//! Fixture: the same transform-enumeration memo on the deterministic
//! FxHash shims — memo hits and equal-cost tie-breaks replay
//! identically on every run and thread.

use copycat_util::hash::{FxHashMap, FxHashSet};

pub fn memoized_enumeration(positions: &[usize]) -> usize {
    let mut memo: FxHashMap<Vec<usize>, f64> = FxHashMap::default();
    memo.insert(positions.to_vec(), 0.0);
    let mut seen: FxHashSet<usize> = FxHashSet::default();
    seen.extend(positions.iter().copied());
    memo.len() + seen.len()
}
