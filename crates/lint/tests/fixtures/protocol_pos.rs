//! Positive fixture for protocol-exhaustiveness: `Paste` exists as an
//! enum variant but is missing from ALL, as_str, and mutates(); the
//! companion dispatch file in the test omits its handler too.

pub enum Op {
    Ping,
    Paste,
    Invalid,
}

impl Op {
    pub const ALL: [Op; 2] = [Op::Ping, Op::Invalid];

    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            _ => "x",
        }
    }

    pub fn mutates(self) -> bool {
        match self {
            Op::Ping | Op::Invalid => false,
            _ => true,
        }
    }
}
