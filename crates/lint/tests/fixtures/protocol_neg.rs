//! Negative fixture for protocol-exhaustiveness: every variant is in
//! ALL, named on the wire, classified by mutates(), and (per the
//! companion files the test supplies) dispatched, transcripted, and
//! covered by durability tests.

pub enum Op {
    Ping,
    Paste,
    Invalid,
}

impl Op {
    pub const ALL: [Op; 3] = [Op::Ping, Op::Paste, Op::Invalid];

    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Paste => "paste",
            Op::Invalid => "invalid",
        }
    }

    pub fn mutates(self) -> bool {
        match self {
            Op::Paste => true,
            Op::Ping | Op::Invalid => false,
        }
    }
}
