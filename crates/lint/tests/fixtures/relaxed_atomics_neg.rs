//! Fixture: every Relaxed carries a `relaxed:` justification; stronger
//! orderings need none.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // relaxed: standalone stat counter, nothing reconciles it.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(c: &AtomicU64) {
    c.store(1, Ordering::Release);
}

pub fn observe(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}
