//! Fixture: a lock guard held across a blocking channel send.

use copycat_util::sync::Mutex;
use std::sync::mpsc::Sender;

pub fn drain(m: &Mutex<Vec<String>>, tx: &Sender<String>) {
    let guard = m.lock();
    for item in guard.iter() {
        let _ = tx.send(item.clone());
    }
}
