//! Negative fixture: a call under a guard is fine when nothing down
//! the callee chain blocks.

impl Worker {
    fn publish(&self) {
        let g = self.state.lock();
        self.fanout();
    }

    fn fanout(&self) -> usize {
        1 + 1
    }
}
