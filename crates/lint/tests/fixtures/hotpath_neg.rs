//! Negative fixture: the region only appends into caller buffers, the
//! one cold allocation is justified, and code outside regions is free.

// lint:hotpath(begin)
fn encode(s: &str, out: &mut String) {
    out.push_str(s);
}

fn cold_fallback(s: &str) -> String {
    s.to_string() // lint:allow(hot-path-alloc) pool-miss fallback, never on the warm path
}
// lint:hotpath(end)

fn outside(v: &[u8]) -> Vec<u8> {
    v.to_vec()
}
