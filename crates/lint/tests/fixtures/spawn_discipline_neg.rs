//! Fixture: scoped threads join deterministically and are welcome.

pub fn scoped_sum(xs: &mut [u64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(move || *x += 1);
        }
    });
}
