//! Positive fixture: `close` takes journal → sessions while `stats`
//! takes sessions → journal — a cross-function lock-order cycle.

impl Router {
    fn close(&self) {
        let j = self.journal.lock();
        self.sessions.lock();
    }

    fn stats(&self) {
        let map = self.sessions.lock();
        self.journal.lock();
    }
}
