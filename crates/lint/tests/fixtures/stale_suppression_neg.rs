//! Negative fixture: a suppression that actually silences a finding is
//! earned, not stale.

fn measure() -> std::time::Instant {
    std::time::Instant::now() // lint:allow(wallclock) fixture exercises an earned suppression
}
