//! Fixture: panicking operators on a serve request path (this file is
//! analyzed under a virtual `crates/serve/src/` path).

pub fn parse(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn must(v: Result<u32, String>) -> u32 {
    v.expect("value present")
}

pub fn never(flag: bool) -> u32 {
    if flag {
        panic!("boom");
    }
    0
}
