//! Positive fixture: a lint:allow that silences nothing is itself a
//! finding — suppressions cannot outlive the code they excused.

fn add(a: u32, b: u32) -> u32 {
    a + b // lint:allow(wallclock) this line reads no clock at all
}
