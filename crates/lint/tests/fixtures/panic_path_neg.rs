//! Fixture: fallible spellings on the request path, panics confined to
//! test regions (also under a virtual `crates/serve/src/` path).

pub fn parse(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn must(v: Result<u32, String>) -> u32 {
    v.unwrap_or_else(|_| 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(parse(Some(1)), 1);
        assert_eq!(Some(2).unwrap(), 2);
    }
}
