//! Fixture: duration arithmetic and clock *mentions* are fine — only a
//! real `Instant::now()` / `SystemTime::now()` call site fires.

pub fn micros(d: std::time::Duration) -> u128 {
    d.as_micros()
}

/// String literals never match token needles.
pub const DOC: &str = "Instant::now() is banned; SystemTime::now() too";
