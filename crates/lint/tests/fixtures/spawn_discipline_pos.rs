//! Fixture: free-range thread spawns outside the worker pool.

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}

pub fn named() -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("rogue".to_string())
        .spawn(|| {})
        .map(|_| ())
}
