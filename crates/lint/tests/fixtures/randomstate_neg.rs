//! Fixture: the deterministic FxHash shims are the sanctioned spelling.

use copycat_util::hash::{FxHashMap, FxHashSet};

pub fn build() -> usize {
    let mut m: FxHashMap<String, u32> = FxHashMap::default();
    m.insert("x".into(), 1);
    let s: FxHashSet<u32> = FxHashSet::default();
    m.len() + s.len()
}
