//! Fixture: an `unsafe` block with no `SAFETY:` comment.

pub fn reinterpret(v: &[u8]) -> u32 {
    unsafe { std::ptr::read_unaligned(v.as_ptr() as *const u32) }
}
