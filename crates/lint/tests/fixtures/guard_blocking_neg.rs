//! Fixture: the guard is dropped (or scoped out) before blocking.

use copycat_util::sync::Mutex;
use std::sync::mpsc::Sender;

pub fn drain_after_drop(m: &Mutex<Vec<String>>, tx: &Sender<String>) {
    let guard = m.lock();
    let batch = guard.clone();
    drop(guard);
    for item in batch {
        let _ = tx.send(item);
    }
}

pub fn drain_after_scope(m: &Mutex<Vec<String>>, tx: &Sender<String>) {
    let batch = {
        let guard = m.lock();
        guard.clone()
    };
    for item in batch {
        let _ = tx.send(item);
    }
}
