//! Fixture: filesystem access through the `StoreFs` trait, string
//! mentions, and test-only temp-dir helpers are all fine.

pub fn persist(fs: &Fs, path: &std::path::Path, bytes: &[u8]) {
    fs.write_sync(path, bytes).unwrap();
}

pub fn append(file: &mut Box<dyn StoreFile>, bytes: &[u8]) {
    file.write_all(bytes).unwrap();
    file.sync_data().unwrap();
}

/// String literals never match token needles.
pub const DOC: &str = "std::fs and File::open are banned outside store::io";

#[cfg(test)]
mod tests {
    /// Test scaffolding may clean temp dirs directly.
    fn temp_root() {
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("fixture"));
    }
}
