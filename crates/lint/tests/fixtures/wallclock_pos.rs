//! Fixture: wall-clock reads outside the deadline/bench exemptions.

pub fn elapsed() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
