//! Fixture: direct filesystem access in production store code — every
//! one of these is I/O the fault-injecting `SimFs` can never reach.

use std::fs;

pub fn persist(path: &std::path::Path, bytes: &[u8]) {
    fs::write(path, bytes).unwrap();
}

pub fn open_journal(path: &std::path::Path) -> std::fs::File {
    File::open(path).unwrap()
}

pub fn open_for_append(path: &std::path::Path) -> std::fs::File {
    OpenOptions::new().append(true).open(path).unwrap()
}
