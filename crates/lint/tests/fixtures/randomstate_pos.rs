//! Fixture: std hash collections with the random-seeded default hasher.

use std::collections::{HashMap, HashSet};

pub fn build() -> usize {
    let mut m: HashMap<String, u32> = HashMap::new();
    m.insert("x".into(), 1);
    let s: HashSet<u32> = HashSet::default();
    m.len() + s.len()
}
