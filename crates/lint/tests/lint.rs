//! End-to-end tests for copycat-lint: every rule against its positive
//! and negative fixture, finding-order stability under shuffled input,
//! and a self-check of the real tree against the committed baseline.

use copycat_lint::{analyze_files, analyze_source, analyze_tree, load_baseline};
use copycat_util::check::check;

/// `(rule, virtual path, positive fixture, negative fixture)`. The
/// virtual path places the fixture where the rule applies — fixtures
/// live under `tests/fixtures/`, which the tree walk never visits.
const FIXTURES: &[(&str, &str, &str, &str)] = &[
    (
        "wallclock",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/wallclock_pos.rs"),
        include_str!("fixtures/wallclock_neg.rs"),
    ),
    (
        "randomstate",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/randomstate_pos.rs"),
        include_str!("fixtures/randomstate_neg.rs"),
    ),
    (
        "randomstate",
        "crates/transform/src/fixture.rs",
        include_str!("fixtures/randomstate_transform_pos.rs"),
        include_str!("fixtures/randomstate_transform_neg.rs"),
    ),
    (
        "panic-path",
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/panic_path_pos.rs"),
        include_str!("fixtures/panic_path_neg.rs"),
    ),
    (
        "relaxed-atomics",
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/relaxed_atomics_pos.rs"),
        include_str!("fixtures/relaxed_atomics_neg.rs"),
    ),
    (
        "guard-across-blocking",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/guard_blocking_pos.rs"),
        include_str!("fixtures/guard_blocking_neg.rs"),
    ),
    (
        "spawn-discipline",
        "crates/services/src/fixture.rs",
        include_str!("fixtures/spawn_discipline_pos.rs"),
        include_str!("fixtures/spawn_discipline_neg.rs"),
    ),
    (
        "unsafe-safety",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/unsafe_safety_pos.rs"),
        include_str!("fixtures/unsafe_safety_neg.rs"),
    ),
];

#[test]
fn every_positive_fixture_fires_exactly_its_rule() {
    for (rule, path, pos, _) in FIXTURES {
        let findings = analyze_source(path, pos);
        assert!(
            !findings.is_empty(),
            "{rule}: positive fixture produced no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{rule}: positive fixture also fired {} at {}:{}",
                f.rule, f.file, f.line
            );
        }
    }
}

#[test]
fn every_negative_fixture_is_clean() {
    for (rule, path, _, neg) in FIXTURES {
        let findings = analyze_source(path, neg);
        assert!(
            findings.is_empty(),
            "{rule}: negative fixture fired {:?}",
            findings
                .iter()
                .map(|f| format!("{} at line {}", f.rule, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn finding_order_is_independent_of_walk_order() {
    // The corpus: every positive fixture under a distinct path (the
    // real walk never hands the analyzer duplicate paths).
    let corpus: Vec<(String, String)> = FIXTURES
        .iter()
        .enumerate()
        .map(|(i, (rule, _, pos, _))| {
            let dir = if *rule == "panic-path" { "serve" } else { "query" };
            (
                format!("crates/{dir}/src/fixture_{i}.rs"),
                pos.to_string(),
            )
        })
        .collect();
    let canonical = analyze_files(&corpus);
    assert!(!canonical.is_empty());
    check("lint.shuffle_invariance", 64, &[], |g| {
        // A Fisher-Yates permutation drawn from the generator.
        let mut shuffled = corpus.clone();
        for i in (1..shuffled.len()).rev() {
            let j = g.usize_in(0..i + 1);
            shuffled.swap(i, j);
        }
        let got = analyze_files(&shuffled);
        if got == canonical {
            Ok(())
        } else {
            Err(format!(
                "shuffled input changed the report: {} vs {} findings",
                got.len(),
                canonical.len()
            ))
        }
    });
}

#[test]
fn real_tree_matches_committed_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = analyze_tree(&root).expect("walk the repo");
    let baseline = load_baseline(&root).expect("parse committed baseline");
    let verdict = copycat_lint::baseline::compare(&findings, &baseline);
    assert!(
        verdict.illegal_entries.is_empty(),
        "baseline names unbaselineable rules: {:?}",
        verdict.illegal_entries
    );
    assert!(
        verdict.violations.is_empty(),
        "tree has non-baselined findings:\n{}",
        verdict
            .violations
            .iter()
            .map(|f| format!("  {} {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Strict rules must be at zero outright, not merely baselined.
    for ((rule, file), n) in &baseline.counts {
        assert!(
            !copycat_lint::rules::STRICT.contains(&rule.as_str()),
            "strict rule {rule} baselined for {file} (count {n})"
        );
    }
}
