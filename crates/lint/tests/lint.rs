//! End-to-end tests for copycat-lint: every rule against its positive
//! and negative fixture, finding-order stability under shuffled input,
//! and a self-check of the real tree against the committed baseline.

use copycat_lint::index::AuxFile;
use copycat_lint::{
    analyze_files_with_aux, analyze_source, analyze_tree, load_baseline,
};
use copycat_util::check::check;

/// `(rule, virtual path, positive fixture, negative fixture)`. The
/// virtual path places the fixture where the rule applies — fixtures
/// live under `tests/fixtures/`, which the tree walk never visits.
const FIXTURES: &[(&str, &str, &str, &str)] = &[
    (
        "wallclock",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/wallclock_pos.rs"),
        include_str!("fixtures/wallclock_neg.rs"),
    ),
    (
        "fs-discipline",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/fs_discipline_pos.rs"),
        include_str!("fixtures/fs_discipline_neg.rs"),
    ),
    (
        "randomstate",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/randomstate_pos.rs"),
        include_str!("fixtures/randomstate_neg.rs"),
    ),
    (
        "randomstate",
        "crates/transform/src/fixture.rs",
        include_str!("fixtures/randomstate_transform_pos.rs"),
        include_str!("fixtures/randomstate_transform_neg.rs"),
    ),
    (
        "panic-path",
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/panic_path_pos.rs"),
        include_str!("fixtures/panic_path_neg.rs"),
    ),
    (
        "relaxed-atomics",
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/relaxed_atomics_pos.rs"),
        include_str!("fixtures/relaxed_atomics_neg.rs"),
    ),
    (
        "guard-across-blocking",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/guard_blocking_pos.rs"),
        include_str!("fixtures/guard_blocking_neg.rs"),
    ),
    (
        "spawn-discipline",
        "crates/services/src/fixture.rs",
        include_str!("fixtures/spawn_discipline_pos.rs"),
        include_str!("fixtures/spawn_discipline_neg.rs"),
    ),
    (
        "unsafe-safety",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/unsafe_safety_pos.rs"),
        include_str!("fixtures/unsafe_safety_neg.rs"),
    ),
    (
        "lock-order",
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/lock_order_pos.rs"),
        include_str!("fixtures/lock_order_neg.rs"),
    ),
    (
        "guard-across-blocking",
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/guard_blocking_via_callee_pos.rs"),
        include_str!("fixtures/guard_blocking_via_callee_neg.rs"),
    ),
    (
        "hot-path-alloc",
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/hotpath_pos.rs"),
        include_str!("fixtures/hotpath_neg.rs"),
    ),
    (
        "stale-suppression",
        "crates/query/src/fixture.rs",
        include_str!("fixtures/stale_suppression_pos.rs"),
        include_str!("fixtures/stale_suppression_neg.rs"),
    ),
];

/// The protocol-exhaustiveness fixtures are multi-file by nature (the
/// rule audits the protocol against its dispatch and test artifacts),
/// so they run through [`analyze_files_with_aux`] instead of the
/// per-file table above.
const PROTOCOL_POS: &str = include_str!("fixtures/protocol_pos.rs");
const PROTOCOL_NEG: &str = include_str!("fixtures/protocol_neg.rs");
const DISPATCH_POS: &str =
    "fn dispatch(op: Op) { match op { Op::Ping => a(), Op::Invalid => c(), _ => d() } }";
const DISPATCH_NEG: &str =
    "fn dispatch(op: Op) { match op { Op::Ping => a(), Op::Paste => b(), Op::Invalid => c() } }";

fn protocol_aux() -> Vec<AuxFile> {
    vec![
        AuxFile {
            path: "crates/serve/tests/golden/wire_transcript.txt".to_string(),
            text: "{\"op\":\"ping\"}\n{\"op\":\"paste\",\"text\":\"x\"}\n".to_string(),
        },
        AuxFile {
            path: "crates/serve/tests/durability.rs".to_string(),
            text: "const S: &str = \"{\\\"op\\\":\\\"paste\\\"}\";".to_string(),
        },
    ]
}

#[test]
fn protocol_positive_set_fires_exactly_its_rule() {
    let found = analyze_files_with_aux(
        &[
            ("crates/serve/src/protocol.rs", PROTOCOL_POS),
            ("crates/serve/src/server.rs", DISPATCH_POS),
        ],
        protocol_aux(),
    );
    assert!(!found.is_empty(), "positive protocol set produced no findings");
    for f in &found {
        assert_eq!(f.rule, "protocol-exhaustiveness", "{} at {}:{}", f.rule, f.file, f.line);
        assert_eq!(f.file, "crates/serve/src/protocol.rs");
    }
    // The four layers that dropped `Paste` each get their own finding.
    for gap in ["Op::ALL", "no wire name", "mutates()", "no handler"] {
        assert!(
            found.iter().any(|f| f.message.contains(gap)),
            "no finding mentions {gap:?}: {found:?}"
        );
    }
}

#[test]
fn protocol_negative_set_is_clean() {
    let found = analyze_files_with_aux(
        &[
            ("crates/serve/src/protocol.rs", PROTOCOL_NEG),
            ("crates/serve/src/server.rs", DISPATCH_NEG),
        ],
        protocol_aux(),
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn every_positive_fixture_fires_exactly_its_rule() {
    for (rule, path, pos, _) in FIXTURES {
        let findings = analyze_source(path, pos);
        assert!(
            !findings.is_empty(),
            "{rule}: positive fixture produced no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{rule}: positive fixture also fired {} at {}:{}",
                f.rule, f.file, f.line
            );
        }
    }
}

#[test]
fn every_negative_fixture_is_clean() {
    for (rule, path, _, neg) in FIXTURES {
        let findings = analyze_source(path, neg);
        assert!(
            findings.is_empty(),
            "{rule}: negative fixture fired {:?}",
            findings
                .iter()
                .map(|f| format!("{} at line {}", f.rule, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn finding_order_is_independent_of_walk_order() {
    // The corpus: every positive fixture under a distinct path (the
    // real walk never hands the analyzer duplicate paths), plus the
    // multi-file protocol set so the shuffle exercises both phases —
    // per-file rules AND the symbol-index/call-graph tree rules.
    let mut corpus: Vec<(String, String)> = FIXTURES
        .iter()
        .enumerate()
        .map(|(i, (rule, _, pos, _))| {
            let dir = if *rule == "panic-path" { "serve" } else { "query" };
            (
                format!("crates/{dir}/src/fixture_{i}.rs"),
                pos.to_string(),
            )
        })
        .collect();
    corpus.push(("crates/serve/src/protocol.rs".to_string(), PROTOCOL_POS.to_string()));
    corpus.push(("crates/serve/src/server.rs".to_string(), DISPATCH_POS.to_string()));
    let run = |files: &[(String, String)]| {
        let pairs: Vec<(&str, &str)> =
            files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        analyze_files_with_aux(&pairs, protocol_aux())
    };
    let canonical = run(&corpus);
    assert!(!canonical.is_empty());
    // Both phases contribute findings to the canonical report.
    assert!(canonical.iter().any(|f| f.rule == "wallclock"), "phase 1 absent");
    assert!(
        canonical.iter().any(|f| f.rule == "lock-order"),
        "phase 2 absent: {canonical:?}"
    );
    check("lint.shuffle_invariance", 64, &[], |g| {
        // A Fisher-Yates permutation drawn from the generator.
        let mut shuffled = corpus.clone();
        for i in (1..shuffled.len()).rev() {
            let j = g.usize_in(0..i + 1);
            shuffled.swap(i, j);
        }
        let got = run(&shuffled);
        if got == canonical {
            Ok(())
        } else {
            Err(format!(
                "shuffled input changed the report: {} vs {} findings",
                got.len(),
                canonical.len()
            ))
        }
    });
}

#[test]
fn real_tree_matches_committed_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = analyze_tree(&root).expect("walk the repo");
    let baseline = load_baseline(&root).expect("parse committed baseline");
    let verdict = copycat_lint::baseline::compare(&findings, &baseline);
    assert!(
        verdict.illegal_entries.is_empty(),
        "baseline names unbaselineable rules: {:?}",
        verdict.illegal_entries
    );
    assert!(
        verdict.violations.is_empty(),
        "tree has non-baselined findings:\n{}",
        verdict
            .violations
            .iter()
            .map(|f| format!("  {} {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Strict rules must be at zero outright, not merely baselined.
    for ((rule, file), n) in &baseline.counts {
        assert!(
            !copycat_lint::rules::STRICT.contains(&rule.as_str()),
            "strict rule {rule} baselined for {file} (count {n})"
        );
    }
}
