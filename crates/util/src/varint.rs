//! LEB128 variable-length integers — the WAL's length-prefix framing.
//!
//! Unsigned little-endian base-128: seven payload bits per byte, high
//! bit set on every byte except the last. Small record lengths (the
//! common case: one protocol line) cost one or two bytes; the encoding
//! caps at ten bytes for the full `u64` range. Decoding is defensive —
//! a truncated prefix reports [`VarintError::Truncated`] (the torn-tail
//! signal recovery relies on) and an over-long or overflowing encoding
//! reports [`VarintError::Overflow`] instead of wrapping silently.

/// Maximum encoded size of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_LEN: usize = 10;

/// Why a decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended before the terminating byte — a torn write.
    Truncated,
    /// More than [`MAX_LEN`] bytes, or payload bits beyond 64.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

/// Append the LEB128 encoding of `v` to `out`, returning the number of
/// bytes written.
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 `u64` from the front of `buf`, returning the value
/// and the number of bytes consumed.
pub fn decode_u64(buf: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_LEN {
            return Err(VarintError::Overflow);
        }
        let payload = u64::from(byte & 0x7F);
        // The tenth byte may only carry the one remaining bit.
        if i == MAX_LEN - 1 && payload > 1 {
            return Err(VarintError::Overflow);
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(VarintError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, Gen};

    fn round_trip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        let written = encode_u64(v, &mut buf);
        assert_eq!(written, buf.len());
        let (back, read) = decode_u64(&buf).unwrap();
        assert_eq!(read, buf.len());
        (back, read)
    }

    #[test]
    fn encodes_known_values() {
        for (v, bytes) in [
            (0u64, vec![0x00]),
            (1, vec![0x01]),
            (127, vec![0x7F]),
            (128, vec![0x80, 0x01]),
            (300, vec![0xAC, 0x02]),
            (16_383, vec![0xFF, 0x7F]),
            (16_384, vec![0x80, 0x80, 0x01]),
            (u64::MAX, vec![0xFF; 9].into_iter().chain([0x01]).collect()),
        ] {
            let mut out = Vec::new();
            encode_u64(v, &mut out);
            assert_eq!(out, bytes, "encoding of {v}");
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_u64(&buf[..cut]), Err(VarintError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn overlong_and_overflowing_encodings_are_rejected() {
        // Eleven continuation bytes: over MAX_LEN.
        assert_eq!(decode_u64(&[0x80; 11]), Err(VarintError::Overflow));
        // Ten bytes whose last carries more than the final bit.
        let mut too_big = vec![0xFF; 9];
        too_big.push(0x02);
        assert_eq!(decode_u64(&too_big), Err(VarintError::Overflow));
    }

    #[test]
    fn prop_round_trip_is_lossless() {
        use crate::{prop_ensure, prop_ensure_eq};
        check("varint_round_trip", 300, &[], |g: &mut Gen| {
            // Bias across magnitudes so every encoded length is hit.
            let bits = g.usize_in(0..64);
            let v = g.u64_in(0..u64::MAX) >> bits;
            let (back, len) = round_trip(v);
            prop_ensure_eq!(back, v);
            prop_ensure!(len >= 1 && len <= MAX_LEN, "len {len}");
            // Decoding ignores trailing garbage.
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            buf.extend_from_slice(&[0xAB, 0xCD]);
            let (again, read) =
                decode_u64(&buf).map_err(|e| format!("decode failed: {e}"))?;
            prop_ensure_eq!(again, v);
            prop_ensure_eq!(read, len);
            Ok(())
        });
    }
}
