//! Micro-benchmark timing harness: warmup, N samples, median/p95.
//!
//! Drop-in for the external micro-benchmark harness, with the same call shape
//! (`benchmark_group` / `sample_size` / `bench_function` / `iter`), so
//! the bench files keep their structure while depending on nothing
//! outside `std`. Output is one line per benchmark:
//!
//! ```text
//! e3/spcsh_300_nodes            median 1.84 ms   p95 2.01 ms   min 1.79 ms   (10 samples)
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counting wrapper around the system allocator, for memory
/// benchmarks and allocation-count regression tests. Install it as the
/// global allocator in a *binary or test crate* (never a library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: copycat_util::bench::CountingAlloc = copycat_util::bench::CountingAlloc::new();
/// ```
///
/// Counters are process-wide monotone totals; callers measure by
/// differencing [`AllocSnapshot`]s around the region of interest.
/// Counting uses relaxed atomics — the measured region must therefore
/// be single-threaded (or quiescent) for exact answers, which is how
/// the bench harness and the zero-alloc parse test use it.
pub struct CountingAlloc {
    allocs: AtomicU64,
    allocated_bytes: AtomicU64,
    freed_bytes: AtomicU64,
}

/// A point-in-time read of [`CountingAlloc`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocation calls so far (alloc + realloc; frees not counted).
    pub allocs: u64,
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Total bytes ever freed.
    pub freed_bytes: u64,
}

impl AllocSnapshot {
    /// Bytes currently live (allocated minus freed).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes.saturating_sub(self.freed_bytes)
    }

    /// Allocation calls between `earlier` and `self`.
    pub fn allocs_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocs.saturating_sub(earlier.allocs)
    }

    /// Net live-byte growth between `earlier` and `self`.
    pub fn live_growth_since(&self, earlier: &AllocSnapshot) -> i64 {
        self.live_bytes() as i64 - earlier.live_bytes() as i64
    }
}

impl CountingAlloc {
    /// A zeroed counter set (const, so it can be a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
        }
    }

    /// Read the counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            // relaxed: monotone counters differenced by a quiescent
            // reader; no cross-counter consistency is reconciled.
            allocs: self.allocs.load(Ordering::Relaxed),
            // relaxed: see above.
            allocated_bytes: self.allocated_bytes.load(Ordering::Relaxed),
            // relaxed: see above.
            freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the wrapper only bumps counters.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards to `System.alloc` unchanged; counter bumps never
    // touch the returned memory.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed: monotone counter, read only by quiescent snapshots.
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // relaxed: see above.
        self.allocated_bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller upholds `layout` validity.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards to `System.dealloc` unchanged; counter bumps
    // never touch `ptr`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // relaxed: monotone counter, read only by quiescent snapshots.
        self.freed_bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller guarantees `ptr`/`layout`
        // came from this allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards to `System.realloc` unchanged; counter bumps
    // never touch `ptr`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // relaxed: monotone counter, read only by quiescent snapshots.
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // relaxed: see above.
        self.allocated_bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        // relaxed: see above.
        self.freed_bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller upholds the realloc
        // contract for `ptr`, `layout`, and `new_size`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 20;

/// Minimum wall time spent warming up before sampling.
const WARMUP: Duration = Duration::from_millis(200);

/// Top-level driver; collects and prints results.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
}

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub label: String,
    /// Per-sample wall times, sorted ascending.
    pub samples: Vec<Duration>,
}

impl BenchResult {
    /// The p-th percentile sample (nearest-rank).
    pub fn percentile(&self, p: f64) -> Duration {
        let idx = ((self.samples.len() as f64 * p).ceil() as usize)
            .clamp(1, self.samples.len())
            - 1;
        self.samples[idx]
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        self.percentile(0.5)
    }
}

/// Render a duration with an appropriate unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Harness {
    /// A fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a named group; benchmarks in it are labeled `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { harness: self, prefix: name.into(), sample_size: DEFAULT_SAMPLES }
    }

    /// Run an ungrouped benchmark with the default sample count.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.run(name.into(), DEFAULT_SAMPLES, f);
    }

    fn run(&mut self, label: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        // Warmup: run the body until the warmup budget is spent (at
        // least once), so first-touch costs don't land in sample 0.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let mut b = Bencher { elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed.is_zero() {
                break; // body never called iter(); nothing to measure
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher { elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let result = BenchResult { label, samples };
        println!(
            "{:<44} median {:>9}   p95 {:>9}   min {:>9}   ({} samples)",
            result.label,
            fmt_duration(result.median()),
            fmt_duration(result.percentile(0.95)),
            fmt_duration(result.samples[0]),
            result.samples.len(),
        );
        self.results.push(result);
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of benchmarks sharing a label prefix and sample count.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Harness,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark as `group/name`.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.prefix, name.into());
        self.harness.run(label, self.sample_size, f);
    }

    /// End the group (accepted for call-shape compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark body; times the closure given to
/// [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `f` (its return value is black-boxed so
    /// the optimizer cannot delete the work).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Define a bench entry point: `bench_main!(bench_a, bench_b);`
/// expands to a `main` that runs each `fn(&mut Harness)` in order.
#[macro_export]
macro_rules! bench_main {
    ($($target:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::new();
            $($target(&mut harness);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_recorded_and_sorted() {
        let mut c = Harness::new();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        group.bench_function("spin", |b| {
            b.iter(|| (0..1000).sum::<u64>())
        });
        group.finish();
        let r = &c.results()[0];
        assert_eq!(r.label, "t/spin");
        assert_eq!(r.samples.len(), 5);
        assert!(r.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(r.median() <= r.percentile(0.95));
    }

    #[test]
    fn ungrouped_function_uses_default_samples() {
        let mut c = Harness::new();
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results()[0].samples.len(), DEFAULT_SAMPLES);
    }
}
