//! CRC-32 (IEEE 802.3) checksums for the durability layer.
//!
//! Every WAL record and snapshot payload carries a checksum so recovery
//! can tell a torn tail (the machine died mid-write) from good data.
//! The polynomial is the reflected IEEE one (`0xEDB88320`) — the same
//! CRC as gzip/zip — computed byte-at-a-time over a 256-entry table
//! built at compile time. Throughput is far beyond what a line-rate
//! request log needs, and the const table keeps the crate
//! dependency-free.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming data that arrives in
/// pieces (a record header then its body).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"length-prefixed, checksummed, fsync-batched";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"wal record payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip {byte}:{bit} undetected");
            }
        }
    }
}
