//! FxHash: the rustc hash function, in-tree.
//!
//! A fast, non-cryptographic, deterministic hash (multiply-rotate over
//! 8-byte words). Hashing is stable across runs and platforms of the
//! same word size, which keeps `FxHashMap` iteration-order-independent
//! code honest and the experiment harness reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc-hash hasher: `hash = (hash.rotl(5) ^ word) * SEED` per
/// 8-byte word, with the tail folded in by descending power of two.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(buf) as u64);
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u16::from_le_bytes(buf) as u64);
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng, StdRng};
    use std::hash::Hash;

    fn fx_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(fx_of(&"Coconut Creek"), fx_of(&"Coconut Creek"));
        assert_ne!(fx_of(&"Coconut Creek"), fx_of(&"Pompano Beach"));
        assert_ne!(fx_of(&1u64), fx_of(&2u64));
    }

    #[test]
    fn map_agrees_with_std_hashmap_on_random_workload() {
        // Same inserts/removes against FxHashMap and std HashMap must
        // leave identical contents — the hasher only changes layout.
        let mut fx: FxHashMap<String, i64> = FxHashMap::default();
        let mut std_map: HashMap<String, i64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20_000 {
            let key = format!("k{}", rng.gen_range(0..500));
            match rng.gen_range(0..3) {
                0 | 1 => {
                    let v = rng.gen_range(-1000i64..1000);
                    fx.insert(key.clone(), v);
                    std_map.insert(key, v);
                }
                _ => {
                    assert_eq!(fx.remove(&key), std_map.remove(&key));
                }
            }
        }
        assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fx.get(k), Some(v), "diverged at {k}");
        }
    }

    #[test]
    fn set_agrees_with_std_hashset() {
        let mut fx: FxHashSet<u64> = FxHashSet::default();
        let mut std_set: HashSet<u64> = HashSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(0u64..300);
            assert_eq!(fx.insert(v), std_set.insert(v));
        }
        assert_eq!(fx.len(), std_set.len());
    }
}
