//! Fixed-bucket latency histograms with lock-free recording.
//!
//! The serving layer's metrics registry wants per-request-class latency
//! quantiles that many worker threads can record into without
//! coordination. [`Histogram`] uses a fixed bucket ladder over
//! microseconds (1µs … 10s, plus an overflow bucket) and atomic
//! counters, so `record` is a single `fetch_add` and quantiles are a
//! cumulative walk at read time. Below 1ms — where the serve hot path
//! lives — the ladder is a dense 1–1.5–2–3–5–7 progression (≤1.5×
//! step), so sub-millisecond p50 shifts of a few tens of percent are
//! visible instead of quantized away; above 1ms it stays the coarser
//! 1–2–5 ladder. Quantiles report a bucket's upper bound — an
//! over-estimate never off by more than the ladder's step, which is
//! plenty for p50/p99 dashboards and regression tracking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket upper bounds in microseconds: a dense 1–1.5–2–3–5–7 ladder up
/// to 1ms (sub-ms latencies resolve to ≤1.5×), then 1–2–5 to 10s.
pub const BUCKET_BOUNDS_US: [u64; 34] = [
    1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 70, 100, 150, 200, 300, 500, 700, 1_000, 2_000, 5_000,
    10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
    // A short coarse tail so multi-second outliers still rank above
    // 10s instead of all collapsing into one overflow bucket.
    20_000_000, 50_000_000, 100_000_000, 200_000_000,
];

/// A concurrent fixed-bucket histogram of microsecond values.
#[derive(Debug)]
pub struct Histogram {
    /// One counter per bound, plus a final overflow bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time read of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (µs).
    pub sum_us: u64,
    /// Largest recorded value (µs).
    pub max_us: u64,
    /// Median estimate (µs; bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile estimate (µs; bucket upper bound).
    pub p99_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        // relaxed: published by the Release increment of `count` below.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Release pairs with the Acquire load in `count()`: a reader
        // whose rank is computed from this count also observes the
        // bucket increment above, so the cumulative walk in
        // `quantile_us` can never come up short of its rank.
        self.count.fetch_add(1, Ordering::Release);
        // relaxed: mean-only statistic; no reader reconciles it.
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // relaxed: monotone max; any stale read is still a valid max.
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Record a `Duration`.
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Values recorded so far. The Acquire pairs with the Release
    /// increment in [`record_us`](Histogram::record_us): every bucket
    /// write behind an observed count is visible after this load.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `q·count`. Zero when
    /// empty; the observed max for the overflow bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            // relaxed: the Acquire in `count()` above already ordered
            // every bucket write this rank depends on.
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    // relaxed: monotone max, see `record_us`.
                    .unwrap_or_else(|| self.max_us.load(Ordering::Relaxed));
            }
        }
        // relaxed: monotone max, see `record_us`.
        self.max_us.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot (exact when recording is quiescent,
    /// which is how tests read it; racing reads are never short of the
    /// observed count, see [`count`](Histogram::count)).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            // relaxed: mean-only statistic; no reader reconciles it.
            sum_us: self.sum_us.load(Ordering::Relaxed),
            // relaxed: monotone max, see `record_us`.
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum_us, (1..=1000u64).sum::<u64>());
        // p50 of 1..=1000 is 500; the 1-2-5 ladder reports its bucket's
        // upper bound, 500 exactly.
        assert_eq!(s.p50_us, 500);
        // p99 = 990 lands in the (500, 1000] bucket.
        assert_eq!(s.p99_us, 1000);
        assert_eq!(s.max_us, 1000);
    }

    #[test]
    fn sub_millisecond_buckets_resolve_fine_shifts() {
        // A 30µs-centered workload and a 45µs-centered workload land in
        // different buckets (30 vs 50) — the old 1-2-5 ladder reported
        // 50 for both, hiding sub-ms improvements.
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..100 {
            a.record_us(28);
            b.record_us(44);
        }
        assert_eq!(a.snapshot().p50_us, 30);
        assert_eq!(b.snapshot().p50_us, 50);
        // The ladder keeps its original coarse bounds too, so pinned
        // quantiles from the 1-2-5 era (500, 1000, …) stay bounds.
        for bound in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000] {
            assert!(BUCKET_BOUNDS_US.contains(&bound), "missing bound {bound}");
        }
    }

    #[test]
    fn overflow_reports_observed_max() {
        let h = Histogram::new();
        h.record_us(999_000_000);
        assert_eq!(h.quantile_us(0.5), 999_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }
}
