//! Hermetic in-tree runtime for the CopyCat workspace.
//!
//! The reproduction must build and test on any machine, offline, first
//! try — so nothing in this workspace may depend on the crates.io
//! registry. This crate provides dependency-free replacements for the
//! small slices of external-crate API the system actually uses:
//!
//! - [`rng`] — a seedable, deterministic PRNG (SplitMix64-seeded
//!   xoshiro256++) with a `rand`-style `StdRng`/`SeedableRng`/`Rng`
//!   surface (`gen_range`, `gen_bool`, `shuffle`).
//! - [`hash`] — the FxHash function with `FxHashMap`/`FxHashSet`
//!   aliases (replaces `rustc-hash`).
//! - [`json`] — a JSON value type, serializer and parser, plus the
//!   derive-free [`json::ToJson`]/[`json::FromJson`] trait pair
//!   (replaces `serde`/`serde_json`).
//! - [`check`] — a small property-testing harness with seeded case
//!   generation, tape-based shrinking, and regression-seed replay
//!   (replaces `proptest`).
//! - [`bench`] — a micro-benchmark harness with warmup and
//!   median/p95 reporting (replaces `criterion`).
//! - [`sync`] — non-poisoning `Mutex`/`RwLock` wrappers over `std`
//!   (replaces `parking_lot`).
//! - [`channel`] — a bounded MPMC channel with non-blocking
//!   backpressure (`try_send` → `Full`) and drain-on-close semantics
//!   (replaces `crossbeam-channel` for the serving layer's pools).
//! - [`hist`] — lock-free fixed-bucket latency histograms with
//!   p50/p99 estimates (the metrics registry's primitive).
//! - [`checksum`] — CRC-32 (IEEE) for WAL records and snapshots
//!   (replaces `crc32fast`).
//! - [`varint`] — LEB128 length prefixes for the WAL's record framing
//!   (replaces `integer-encoding`).
//! - [`zjson`] — a zero-copy flat-DOM JSON parser sharing [`json`]'s
//!   grammar: escape-free strings become spans into the input line,
//!   and a warm doc parses with zero heap allocations (the serve hot
//!   path's parser).
//!
//! Every generator in this crate is deterministic per seed, so bench
//! tables and property tests are bit-reproducible across runs on the
//! same machine.

pub mod bench;
pub mod channel;
pub mod check;
pub mod checksum;
pub mod hash;
pub mod hist;
pub mod json;
pub mod rng;
pub mod sync;
pub mod varint;
pub mod zjson;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::{Rng, SeedableRng, StdRng};
