//! Zero-copy JSON parsing into a reusable flat DOM.
//!
//! [`json::Json`](crate::json::Json) re-owns every string it parses —
//! fine for documents that outlive their input, wasteful for a serving
//! hot path that parses one request line, reads a handful of fields,
//! and throws the tree away. [`ZDoc`] parses the same grammar (same
//! escapes, same number rules, same error wording as
//! [`Json::parse`](crate::json::Json::parse)) into a flat `Vec` of
//! span-indexed nodes instead:
//!
//! - **Strings without escapes** — the overwhelmingly common case on
//!   the wire — become `(start, end)` spans into the input line. No
//!   copy, no allocation.
//! - **Strings with escapes** are unescaped once into a single arena
//!   `String` owned by the doc and spanned from there.
//! - **Containers** are nodes with first-child/next-sibling links, so
//!   the whole tree lives in one `Vec` whose capacity survives
//!   [`ZDoc::parse`] calls.
//!
//! Steady state, a warm `ZDoc` parses an escape-free request with
//! **zero** heap allocations (pinned by a counting-allocator test in
//! the serve crate). Spans are byte offsets, not pointers, so a doc
//! and the line it was parsed from can move (e.g. into a worker-pool
//! job) and be re-joined later with [`ZDoc::root`].
//!
//! Reads go through [`ZRef`], a `Copy` cursor pairing the doc with the
//! line. `ZRef::write` re-serializes canonically — byte-identical to
//! what [`Json::to_string`](crate::json::Json::to_string) would emit
//! for the same value, numbers included — and [`ZRef::raw`] returns
//! the verbatim input slice (how the server echoes request ids without
//! re-owning them).

use crate::json::{self, Json, JsonError};

/// Nesting depth limit, matching `json::MAX_DEPTH`.
const MAX_DEPTH: usize = 128;

/// "No node" sentinel for child/sibling links.
const NONE: u32 = u32::MAX;

/// Where a string span points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Span indexes the input line (escape-free fast path).
    Line,
    /// Span indexes the doc's unescape arena.
    Arena,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Null,
    Bool(bool),
    Num(f64),
    Str(Loc),
    Arr,
    Obj,
}

/// One parsed value in the flat DOM.
#[derive(Debug, Clone, Copy)]
struct Node {
    kind: Kind,
    /// String content span (`Str`), or first child (`Arr`/`Obj` in `a`,
    /// `NONE` when empty; `b` unused).
    a: u32,
    b: u32,
    /// Key span + location, when this node is an object member.
    key: Option<(u32, u32, Loc)>,
    /// Verbatim input span of the whole value (for [`ZRef::raw`]).
    raw: (u32, u32),
    /// Next sibling, `NONE` at the end of a container.
    next: u32,
}

/// A reusable flat-DOM JSON parser. See the module docs.
#[derive(Debug, Default)]
pub struct ZDoc {
    nodes: Vec<Node>,
    arena: String,
}

/// A cursor over one parsed value: the doc, the line it was parsed
/// from, and a node index.
#[derive(Debug, Clone, Copy)]
pub struct ZRef<'d> {
    doc: &'d ZDoc,
    line: &'d str,
    idx: u32,
}

impl ZDoc {
    /// An empty doc. Capacity grows on first parse and is reused after.
    pub fn new() -> ZDoc {
        ZDoc::default()
    }

    /// Parse a JSON document; trailing non-whitespace is an error.
    /// Grammar, limits, and error wording match `Json::parse`. The
    /// returned cursor borrows both the doc and the line.
    pub fn parse<'d>(&'d mut self, line: &'d str) -> Result<ZRef<'d>, JsonError> {
        self.nodes.clear();
        self.arena.clear();
        let mut p = P { bytes: line.as_bytes(), pos: 0, nodes: &mut self.nodes, arena: &mut self.arena };
        p.skip_ws();
        let root = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(ZRef { doc: self, line, idx: root })
    }

    /// Re-join a previously parsed doc with its line (both moved, e.g.
    /// across a worker queue) without re-parsing. `line` must be
    /// content-identical to the string [`ZDoc::parse`] succeeded on —
    /// spans are byte offsets into it.
    pub fn root<'d>(&'d self, line: &'d str) -> Option<ZRef<'d>> {
        if self.nodes.is_empty() {
            return None;
        }
        Some(ZRef { doc: self, line, idx: 0 })
    }
}

impl<'d> ZRef<'d> {
    fn node(&self) -> &'d Node {
        &self.doc.nodes[self.idx as usize]
    }

    fn span_str(&self, a: u32, b: u32, loc: Loc) -> Option<&'d str> {
        match loc {
            Loc::Line => self.line.get(a as usize..b as usize),
            Loc::Arena => self.doc.arena.get(a as usize..b as usize),
        }
    }

    /// The verbatim input slice this value was parsed from.
    pub fn raw(&self) -> &'d str {
        let (a, b) = self.node().raw;
        self.line.get(a as usize..b as usize).unwrap_or("")
    }

    /// The byte span of [`ZRef::raw`] in the source line — for callers
    /// that must carry the location across an owned move of the line
    /// (e.g. a worker queue) and re-slice on the other side.
    pub fn raw_span(&self) -> (u32, u32) {
        self.node().raw
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.node().kind, Kind::Null)
    }

    /// The string content, if this is a string. Borrows the input line
    /// (escape-free) or the doc's arena (unescaped once at parse).
    pub fn as_str(&self) -> Option<&'d str> {
        match self.node().kind {
            Kind::Str(loc) => self.span_str(self.node().a, self.node().b, loc),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self.node().kind {
            Kind::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The number as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self.node().kind {
            Kind::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this value is an array.
    pub fn is_arr(&self) -> bool {
        matches!(self.node().kind, Kind::Arr)
    }

    /// Whether this value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self.node().kind, Kind::Obj)
    }

    /// Iterate an array's items (empty for non-arrays).
    pub fn items(&self) -> Children<'d> {
        match self.node().kind {
            Kind::Arr => Children { doc: self.doc, line: self.line, idx: self.node().a },
            _ => Children { doc: self.doc, line: self.line, idx: NONE },
        }
    }

    /// Iterate an object's `(key, value)` members (empty for
    /// non-objects).
    pub fn entries(&self) -> Entries<'d> {
        match self.node().kind {
            Kind::Obj => Entries(Children { doc: self.doc, line: self.line, idx: self.node().a }),
            _ => Entries(Children { doc: self.doc, line: self.line, idx: NONE }),
        }
    }

    /// First member with this key, if this is an object (mirrors
    /// `Json::get`).
    pub fn get(&self, key: &str) -> Option<ZRef<'d>> {
        self.entries().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Member lookup returning `null` for missing keys / non-objects —
    /// the total-indexing convenience `Json`'s `Index` impl provides.
    pub fn field(&self, key: &str) -> FieldRef<'d> {
        match self.get(key) {
            Some(v) => FieldRef(Some(v)),
            None => FieldRef(None),
        }
    }

    /// Append the canonical serialization of this value — byte-for-byte
    /// what `Json::to_string` emits for the same value (strings are
    /// re-escaped canonically, numbers use the shortest-round-trip
    /// fixpoint format).
    pub fn write(&self, out: &mut String) {
        match self.node().kind {
            Kind::Null => out.push_str("null"),
            Kind::Bool(true) => out.push_str("true"),
            Kind::Bool(false) => out.push_str("false"),
            Kind::Num(n) => out.push_str(&json::format_number(n)),
            Kind::Str(_) => json::write_escaped(out, self.as_str().unwrap_or("")),
            Kind::Arr => {
                out.push('[');
                for (i, item) in self.items().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Kind::Obj => {
                out.push('{');
                for (i, (k, v)) in self.entries().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// An owned [`Json`] copy of this value (for values that must
    /// outlive the request line, e.g. pasted rows entering the engine).
    pub fn to_json(&self) -> Json {
        match self.node().kind {
            Kind::Null => Json::Null,
            Kind::Bool(b) => Json::Bool(b),
            Kind::Num(n) => Json::Num(n),
            Kind::Str(_) => Json::Str(self.as_str().unwrap_or("").to_string()),
            Kind::Arr => Json::Arr(self.items().map(|v| v.to_json()).collect()),
            Kind::Obj => Json::Obj(
                self.entries().map(|(k, v)| (k.to_string(), v.to_json())).collect(),
            ),
        }
    }
}

/// Wrapper making missing-field reads total: every accessor answers
/// `None`/`false` when the field was absent.
#[derive(Clone, Copy)]
pub struct FieldRef<'d>(Option<ZRef<'d>>);

impl<'d> FieldRef<'d> {
    /// The underlying value, if the field was present.
    pub fn value(&self) -> Option<ZRef<'d>> {
        self.0
    }

    /// String content, if present and a string.
    pub fn as_str(&self) -> Option<&'d str> {
        self.0.and_then(|v| v.as_str())
    }

    /// Number, if present and a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.0.and_then(|v| v.as_f64())
    }

    /// Integral number, if present, integral, and in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.and_then(|v| v.as_u64())
    }

    /// Boolean, if present and a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        self.0.and_then(|v| v.as_bool())
    }

    /// Whether the field was absent or explicitly `null`.
    pub fn is_missing_or_null(&self) -> bool {
        match self.0 {
            None => true,
            Some(v) => v.is_null(),
        }
    }
}

/// Sibling-chain iterator over a container's children.
pub struct Children<'d> {
    doc: &'d ZDoc,
    line: &'d str,
    idx: u32,
}

impl<'d> Iterator for Children<'d> {
    type Item = ZRef<'d>;

    fn next(&mut self) -> Option<ZRef<'d>> {
        if self.idx == NONE {
            return None;
        }
        let r = ZRef { doc: self.doc, line: self.line, idx: self.idx };
        self.idx = r.node().next;
        Some(r)
    }
}

/// Key/value iterator over an object's members.
pub struct Entries<'d>(Children<'d>);

impl<'d> Iterator for Entries<'d> {
    type Item = (&'d str, ZRef<'d>);

    fn next(&mut self) -> Option<(&'d str, ZRef<'d>)> {
        let v = self.0.next()?;
        let (a, b, loc) = v.node().key?;
        Some((v.span_str(a, b, loc)?, v))
    }
}

/// The parser. Mirrors `json::Parser` exactly — same acceptance, same
/// rejection, same error wording and byte positions — but emits flat
/// nodes instead of owned values.
struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
    nodes: &'a mut Vec<Node>,
    arena: &'a mut String,
}

impl P<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn push(&mut self, kind: Kind, raw_start: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            kind,
            a: NONE,
            b: NONE,
            key: None,
            raw: (raw_start, raw_start),
            next: NONE,
        });
        idx
    }

    fn finish(&mut self, idx: u32) {
        self.nodes[idx as usize].raw.1 = self.pos as u32;
    }

    fn literal(&mut self, word: &str, kind: Kind) -> Result<u32, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            let idx = self.push(kind, self.pos as u32);
            self.pos += word.len();
            self.finish(idx);
            Ok(idx)
        } else {
            Err(self.err(&format!("invalid literal (expected {word})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<u32, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Kind::Null),
            Some(b't') => self.literal("true", Kind::Bool(true)),
            Some(b'f') => self.literal("false", Kind::Bool(false)),
            Some(b'"') => {
                let start = self.pos as u32;
                let idx = self.push(Kind::Str(Loc::Line), start);
                let (a, b, loc) = self.string()?;
                let node = &mut self.nodes[idx as usize];
                node.kind = Kind::Str(loc);
                node.a = a;
                node.b = b;
                node.raw.1 = self.pos as u32;
                Ok(idx)
            }
            Some(b'[') => {
                let idx = self.push(Kind::Arr, self.pos as u32);
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.finish(idx);
                    return Ok(idx);
                }
                let mut prev = NONE;
                loop {
                    self.skip_ws();
                    let child = self.value(depth + 1)?;
                    if prev == NONE {
                        self.nodes[idx as usize].a = child;
                    } else {
                        self.nodes[prev as usize].next = child;
                    }
                    prev = child;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.finish(idx);
                            return Ok(idx);
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                let idx = self.push(Kind::Obj, self.pos as u32);
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.finish(idx);
                    return Ok(idx);
                }
                let mut prev = NONE;
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let child = self.value(depth + 1)?;
                    self.nodes[child as usize].key = Some(key);
                    if prev == NONE {
                        self.nodes[idx as usize].a = child;
                    } else {
                        self.nodes[prev as usize].next = child;
                    }
                    prev = child;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.finish(idx);
                            return Ok(idx);
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    /// Parse a string, returning its content span. Escape-free strings
    /// span the input (zero-copy); strings with escapes are unescaped
    /// into the arena once.
    fn string(&mut self) -> Result<(u32, u32, Loc), JsonError> {
        self.eat(b'"')?;
        let content_start = self.pos;
        // Fast path: scan the whole string for an escape or terminator.
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' || b == b'\\' || b < 0x20 {
                break;
            }
            self.pos += 1;
        }
        match self.peek() {
            Some(b'"') => {
                let span = (content_start as u32, self.pos as u32, Loc::Line);
                self.pos += 1;
                return Ok(span);
            }
            Some(b'\\') => { /* fall through to the unescaping slow path */ }
            Some(_) => return Err(self.err("control character in string")),
            None => return Err(self.err("unterminated string")),
        }
        // Slow path: at least one escape. Copy the prefix scanned so
        // far into the arena, then continue run-by-run like
        // `json::Parser::string`, pushing into the arena.
        let arena_start = self.arena.len();
        // The input is `&str`, so any slice between ASCII delimiters is
        // valid UTF-8; go through from_utf8 anyway to avoid unsafe.
        self.arena.push_str(
            std::str::from_utf8(&self.bytes[content_start..self.pos])
                .map_err(|_| self.err("invalid utf-8"))?,
        );
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?;
                self.arena.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok((arena_start as u32, self.arena.len() as u32, Loc::Arena));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => self.arena.push('"'),
                        b'\\' => self.arena.push('\\'),
                        b'/' => self.arena.push('/'),
                        b'n' => self.arena.push('\n'),
                        b'r' => self.arena.push('\r'),
                        b't' => self.arena.push('\t'),
                        b'b' => self.arena.push('\u{08}'),
                        b'f' => self.arena.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            self.arena.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<u32, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number {text:?}")))?;
        // Match `json::Parser::number`: reject non-finite parses so the
        // value round-trips.
        if !v.is_finite() {
            return Err(self.err(&format!("number {text:?} out of f64 range")));
        }
        let idx = self.push(Kind::Num(v), start as u32);
        self.finish(idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse with both parsers; zjson must accept/reject identically,
    /// with identical error text, and re-serialize identically.
    fn cross_check(input: &str) {
        let owned = Json::parse(input);
        let mut doc = ZDoc::new();
        match (owned, doc.parse(input)) {
            (Ok(j), Ok(z)) => {
                let mut out = String::new();
                z.write(&mut out);
                assert_eq!(out, j.to_string(), "serialization diverged for {input:?}");
                assert_eq!(z.to_json(), j, "to_json diverged for {input:?}");
            }
            (Err(e), Ok(_)) => panic!("zjson accepted what json rejected ({e}): {input:?}"),
            (Ok(_), Err(e)) => panic!("zjson rejected what json accepted ({e}): {input:?}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error wording diverged for {input:?}");
            }
        }
    }

    #[test]
    fn mirrors_owned_parser_on_fixed_corpus() {
        for input in [
            "null",
            "true",
            "false",
            "0",
            "-0",
            "3.25",
            "1e3",
            "-2.5e-2",
            "1e999",
            "\"\"",
            "\"plain\"",
            "\"esc\\n\\t\\\\\\\"\"",
            "\"unicode \\u00e9 and pair \\ud83d\\ude00\"",
            "\"bad pair \\ud83d\\u0041\"",
            "\"truncated \\u00",
            "\"unterminated",
            "[]",
            "[1,2,3]",
            "[ 1 , [2, [3]] , \"x\" ]",
            "{}",
            "{\"a\":1}",
            "{ \"a\" : {\"b\": [true, null]}, \"c\" : \"d\" }",
            "{\"dup\":1,\"dup\":2}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "{\"a\" 1}",
            "nully",
            "tru",
            "  42  ",
            "42 trailing",
            "",
            "\u{1f600}",
            "\"tab\tliteral\"",
        ] {
            cross_check(input);
        }
    }

    #[test]
    fn escape_free_strings_borrow_the_line() {
        let line = r#"{"op":"autocomplete","session":"alice","k":3}"#;
        let mut doc = ZDoc::new();
        let root = doc.parse(line).unwrap();
        let op = root.get("op").unwrap().as_str().unwrap();
        // Same address range as the input line — a true borrow.
        let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
        assert!(line_range.contains(&(op.as_ptr() as usize)));
        assert_eq!(op, "autocomplete");
        assert_eq!(root.field("k").as_u64(), Some(3));
        assert_eq!(root.field("missing").as_str(), None);
        assert!(root.field("missing").is_missing_or_null());
    }

    #[test]
    fn escaped_strings_come_from_the_arena() {
        let line = r#"{"a":"x\ny","b":"plain"}"#;
        let mut doc = ZDoc::new();
        let root = doc.parse(line).unwrap();
        assert_eq!(root.get("a").unwrap().as_str(), Some("x\ny"));
        assert_eq!(root.get("b").unwrap().as_str(), Some("plain"));
        let mut out = String::new();
        root.write(&mut out);
        assert_eq!(out, r#"{"a":"x\ny","b":"plain"}"#);
    }

    #[test]
    fn raw_returns_verbatim_slices() {
        let line = r#"{ "id" : 1.50 , "arr" : [1, 2] }"#;
        let mut doc = ZDoc::new();
        let root = doc.parse(line).unwrap();
        assert_eq!(root.get("id").unwrap().raw(), "1.50");
        assert_eq!(root.get("arr").unwrap().raw(), "[1, 2]");
        assert_eq!(root.raw(), line.trim());
    }

    #[test]
    fn doc_and_line_survive_a_move() {
        let line = r#"{"op":"render","session":"bob"}"#.to_string();
        let mut doc = ZDoc::new();
        doc.parse(&line).unwrap();
        // Simulate shipping both across a queue.
        let moved: Vec<(ZDoc, String)> = vec![(doc, line)];
        let (doc, line) = &moved[0];
        let root = doc.root(line).unwrap();
        assert_eq!(root.get("session").unwrap().as_str(), Some("bob"));
        assert!(ZDoc::new().root("x").is_none());
    }

    #[test]
    fn warm_doc_capacity_is_reused() {
        let mut doc = ZDoc::new();
        doc.parse(r#"{"a":[1,2,3,4,5,6,7,8],"b":"with\nescape"}"#).unwrap();
        let nodes_cap = doc.nodes.capacity();
        let arena_cap = doc.arena.capacity();
        for _ in 0..100 {
            doc.parse(r#"{"a":[8,7,6,5,4,3,2,1],"b":"also\nescaped"}"#).unwrap();
        }
        assert_eq!(doc.nodes.capacity(), nodes_cap);
        assert_eq!(doc.arena.capacity(), arena_cap);
    }

    #[test]
    fn deep_nesting_is_rejected_like_json() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        cross_check(&deep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        cross_check(&ok);
    }

    #[test]
    fn seeded_roundtrip_matches_owned_parser() {
        use crate::check::{check, Gen};
        // Random JSON-ish inputs: serialize a random owned tree, then
        // cross-check both parsers on it (and on a mutated variant to
        // probe rejection parity).
        fn gen_value(g: &mut Gen, depth: usize) -> Json {
            match if depth >= 3 { g.usize_in(0..4) } else { g.usize_in(0..6) } {
                0 => Json::Null,
                1 => Json::Bool(g.bool_p(0.5)),
                2 => Json::Num((g.i64_in(-10_000..10_001) as f64) / 8.0),
                3 => {
                    let n = g.usize_in(0..9);
                    Json::Str(
                        (0..n)
                            .map(|_| {
                                *g.choose(&['a', 'é', '"', '\\', '\n', '\t', '😀', ' ', 'z'])
                            })
                            .collect(),
                    )
                }
                4 => {
                    let n = g.usize_in(0..5);
                    Json::Arr((0..n).map(|_| gen_value(g, depth + 1)).collect())
                }
                _ => {
                    let n = g.usize_in(0..5);
                    Json::Obj(
                        (0..n)
                            .map(|i| (format!("k{i}"), gen_value(g, depth + 1)))
                            .collect(),
                    )
                }
            }
        }
        check("zjson_matches_json", 64, &[], |g| {
            let tree = gen_value(g, 0);
            let text = tree.to_string();
            cross_check(&text);
            // Mutate one byte to probe rejection parity.
            if !text.is_empty() {
                let at = g.usize_in(0..text.len());
                if text.is_char_boundary(at) && text.is_char_boundary(at + 1) {
                    let mut bad = text.clone();
                    bad.replace_range(at..at + 1, "!");
                    cross_check(&bad);
                }
            }
            Ok(())
        });
    }
}
