//! A bounded multi-producer/multi-consumer channel.
//!
//! The serving layer's worker pools need three things `std::sync::mpsc`
//! does not give them: multiple consumers (one queue, many workers), a
//! non-blocking `try_send` that reports *full* distinctly from *closed*
//! (backpressure → an explicit overload rejection, never an unbounded
//! queue), and drain-on-close semantics (dropping every sender lets
//! receivers finish the queued items before seeing `Closed`, so a
//! graceful shutdown never drops accepted work).
//!
//! Built on `Mutex` + `Condvar`; no spinning, no allocation per send
//! beyond the ring's `VecDeque`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a send did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError {
    /// The queue is at capacity (backpressure: reject or retry).
    Full,
    /// Every receiver is gone; the value can never be consumed.
    Closed,
}

/// Why a receive returned nothing: every sender is gone and the queue
/// has been drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signaled when an item arrives or the channel closes.
    not_empty: Condvar,
    /// Signaled when an item leaves or the channel closes.
    not_full: Condvar,
}

/// The sending half; clonable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded channel holding at most `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, State<T>> {
    match shared.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Enqueue without blocking. `Err(Full)` is the backpressure signal.
    pub fn try_send(&self, value: T) -> Result<(), (T, TrySendError)> {
        let mut st = lock(&self.shared);
        if st.receivers == 0 {
            return Err((value, TrySendError::Closed));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err((value, TrySendError::Full));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the queue is full. `Err` when every
    /// receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = lock(&self.shared);
        loop {
            if st.receivers == 0 {
                return Err(value);
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = match self.shared.not_full.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Items currently queued (racy; for metrics only).
    pub fn queued(&self) -> usize {
        lock(&self.shared).queue.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake every blocked receiver so it can observe closure.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue, blocking while empty. Drains queued items even after
    /// every sender is dropped; only then reports `Closed`.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.shared);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeue without blocking; `None` when empty (closed or not).
    pub fn try_recv(&self) -> Option<T> {
        let v = lock(&self.shared).queue.pop_front();
        if v.is_some() {
            self.shared.not_full.notify_one();
        }
        v
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake blocked senders so they can observe closure.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn try_send_reports_full_then_recovers() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let (v, e) = tx.try_send(3).unwrap_err();
        assert_eq!((v, e), (3, TrySendError::Full));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let (tx, rx) = bounded::<u32>(8);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert_eq!(tx.try_send(7).unwrap_err().1, TrySendError::Closed);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let (tx, rx) = bounded::<u64>(4);
        let sum = AtomicU64::new(0);
        let received = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let (sum, received) = (&sum, &received);
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        received.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            drop(rx);
        });
        assert_eq!(received.load(Ordering::Relaxed), 400);
        assert_eq!(sum.load(Ordering::Relaxed), (0..400u64).sum::<u64>());
    }
}
