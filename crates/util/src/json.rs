//! JSON values, serialization, parsing, and the derive-free
//! [`ToJson`]/[`FromJson`] trait pair.
//!
//! This replaces the workspace's `serde`/`serde_json` usage. Types that
//! persist (session state, source graphs, wrappers, pattern models)
//! implement the two traits by hand; the representation each type
//! chooses is part of its session-file format.
//!
//! Objects preserve insertion order, so serialization is deterministic:
//! the same state always produces byte-identical session files.

use std::fmt;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with this message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X, got Y" against an actual value.
    pub fn expected(what: &str, got: &Json) -> Self {
        Self::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from ordered pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors (for `FromJson` impls).
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
    }

    /// The string slice, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, when a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs, when an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Append the compact serialization to an existing buffer — the
    /// allocation-free form of [`Json::to_string`] for callers that
    /// assemble responses in a reused scratch buffer.
    pub fn write_compact(&self, out: &mut String) {
        self.write(out, None, 0);
    }

    /// Human-readable serialization (2-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Non-finite values (unrepresentable in JSON) serialize as `null`
/// like serde_json's lossy float handling; everything else uses Rust's
/// shortest-round-trip formatting, which prints integral values
/// without a fraction (`3`, not `3.0`) and — unlike the old
/// cast-to-`i64` fast path — keeps the sign of `-0.0` (`-0`), so
/// serialize→parse→serialize is byte-identical for every finite
/// number. WAL replay and snapshot diffing rely on that fixpoint.
pub(crate) fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    format!("{n}")
}

/// Append the canonical JSON string literal for `s` (quotes included)
/// — the escaping [`Json::to_string`] uses, exposed for protocol code
/// that serializes into reused buffers.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {word})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number {text:?}")))?;
        // `f64::parse` reports overflow as ±inf, not an error. A
        // non-finite `Num` would serialize as `null` and change shape
        // on the next round trip, so reject it here.
        if !v.is_finite() {
            return Err(self.err(&format!("number {text:?} out of f64 range")));
        }
        Ok(Json::Num(v))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Array indexing; out-of-range or non-array yields `Null` (like
    /// `serde_json::Value`).
    fn index(&self, i: usize) -> &Json {
        static NULL: Json = Json::Null;
        match self {
            Json::Arr(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Object field indexing; missing key or non-object yields `Null`.
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Json> for &str {
    fn eq(&self, other: &Json) -> bool {
        other.as_str() == Some(*self)
    }
}

// --- ToJson / FromJson --------------------------------------------------

/// Hand-written serialization to a [`Json`] value (the derive-free
/// counterpart of `serde::Serialize`).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Hand-written reconstruction from a [`Json`] value (the derive-free
/// counterpart of `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Rebuild from a JSON value.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::expected("string", j))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError::expected("bool", j))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64().ok_or_else(|| JsonError::expected("number", j))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }

        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let n = j.as_f64().ok_or_else(|| JsonError::expected("number", j))?;
                if n.fract() != 0.0 {
                    return Err(JsonError::new(format!("expected integer, got {n}")));
                }
                // Range-check in f64 before casting. `MIN as f64` is
                // exact for every integer type, and `(MAX as f64) + 1.0`
                // lands exactly one past the type (for the 64-bit types
                // MAX itself rounds *up* to that power of two, so the
                // old cast-then-compare check accepted 2^63/2^64 as a
                // saturated MAX — the wrong value, silently).
                if !(n >= <$t>::MIN as f64 && n < (<$t>::MAX as f64) + 1.0) {
                    return Err(JsonError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError::expected("array", j))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::expected("2-element array", j)),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Serialize any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().to_string()
}

/// Serialize any [`ToJson`] value with indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().to_string_pretty()
}

/// Parse and convert in one step.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::str("a\nb"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nulL", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        let v = Json::parse("\"caf\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::str("café 😀"));
    }

    #[test]
    fn escaping_roundtrips() {
        let original = Json::str("quote \" slash \\ newline \n tab \t ctrl \u{01} ok");
        let parsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn object_order_is_preserved() {
        let j = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = j
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn pretty_form_reparses() {
        let j = Json::parse(r#"{"rows": [["a", 1], ["b", 2]], "n": 2, "empty": [], "eo": {}}"#)
            .unwrap();
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn numbers_format_like_serde_json() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
        assert_eq!(Json::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let s = Json::Num(-0.0).to_string();
        assert_eq!(s, "-0");
        let back = Json::parse(&s).unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative(), "sign lost: {back}");
        // The serialization fixpoint the WAL relies on.
        assert_eq!(Json::Num(back).to_string(), s);
    }

    #[test]
    fn sixty_four_bit_saturation_edges_are_rejected() {
        // 2^63 *is* `i64::MAX as f64`: the cast saturates to MAX, which
        // round-trips back to 2^63 — so the old cast-then-compare check
        // accepted the wrong value. Same story for u64 at 2^64.
        assert!(i64::from_json(&Json::Num(9_223_372_036_854_775_808.0)).is_err());
        assert!(u64::from_json(&Json::Num(18_446_744_073_709_551_616.0)).is_err());
        assert!(u64::from_json(&Json::Num(1e300)).is_err());
        // The exact boundaries that ARE representable still convert.
        assert_eq!(
            i64::from_json(&Json::Num(-9_223_372_036_854_775_808.0)).unwrap(),
            i64::MIN
        );
        // Largest f64 below 2^63 / 2^64 (2^63 - 1024, 2^64 - 2048).
        assert_eq!(
            i64::from_json(&Json::Num(9_223_372_036_854_774_784.0)).unwrap(),
            9_223_372_036_854_774_784
        );
        assert_eq!(
            u64::from_json(&Json::Num(18_446_744_073_709_549_568.0)).unwrap(),
            18_446_744_073_709_549_568
        );
        // -0.0 is integral zero, not out of range, for every width.
        assert_eq!(u64::from_json(&Json::Num(-0.0)).unwrap(), 0);
        assert_eq!(u8::from_json(&Json::Num(255.0)).unwrap(), 255);
        assert!(u8::from_json(&Json::Num(256.0)).is_err());
    }

    #[test]
    fn huge_exponents_are_rejected_at_parse() {
        // `f64::parse` turns these into ±inf; accepting them would
        // produce a Num that serializes as `null` and changes shape.
        for bad in ["1e999", "-1e999", "1e309", "[1e400]"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Underflow collapses to zero, which is finite and fine.
        assert_eq!(Json::parse("1e-999").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn prop_number_serialization_is_a_fixpoint() {
        use crate::check::{check, Gen};
        use crate::{prop_ensure, prop_ensure_eq};
        check("json_number_fixpoint", 400, &[], |g: &mut Gen| {
            // Span the grammar: small ints, 2^53-adjacent ints, large
            // exactly-representable ints, fractions, extreme magnitudes.
            let n: f64 = match g.usize_in(0..6) {
                0 => g.i64_in(-1_000_000..1_000_000) as f64,
                1 => {
                    let sign = if g.bool_p(0.5) { -1.0 } else { 1.0 };
                    g.u64_in(0..(1u64 << 53)) as f64 * sign
                }
                2 => {
                    // Beyond 2^53 but exact: a 53-bit mantissa shifted.
                    let shift = g.usize_in(1..11) as u32;
                    (g.u64_in(0..(1u64 << 53)) << shift) as f64
                }
                3 => g.f64_in(-1.0e9..1.0e9),
                4 => g.f64_in(-1.0..1.0) * 1.0e-12,
                _ => g.f64_in(-1.0..1.0) * 1.0e18,
            };
            let s = Json::Num(n).to_string();
            let back = Json::parse(&s)
                .map_err(|e| e.to_string())?
                .as_f64()
                .ok_or("reparse was not a number")?;
            prop_ensure!(
                back == n && back.is_sign_negative() == n.is_sign_negative(),
                "{n} -> {s} -> {back}"
            );
            // Fixpoint: the second serialization is byte-identical.
            prop_ensure_eq!(Json::Num(back).to_string(), s);
            Ok(())
        });
    }

    #[test]
    fn prop_exact_integers_roundtrip_through_int_conversions() {
        use crate::check::{check, Gen};
        use crate::prop_ensure_eq;
        check("json_int_roundtrip", 300, &[], |g: &mut Gen| {
            // Every |v| <= 2^53 is exactly representable as f64.
            let v = g.i64_in(-(1i64 << 53)..(1i64 << 53) + 1);
            let s = v.to_json().to_string();
            let parsed = Json::parse(&s).map_err(|e| e.to_string())?;
            prop_ensure_eq!(i64::from_json(&parsed).map_err(|e| e.to_string())?, v);
            if v >= 0 {
                prop_ensure_eq!(
                    u64::from_json(&parsed).map_err(|e| e.to_string())?,
                    v as u64
                );
            }
            Ok(())
        });
    }

    #[test]
    fn indexing_is_total() {
        let j = Json::parse(r#"{"a": [10, 20]}"#).unwrap();
        assert_eq!(j["a"][1], Json::Num(20.0));
        assert_eq!(j["missing"], Json::Null);
        assert_eq!(j["a"][99], Json::Null);
        assert_eq!(j["a"]["not-an-object"], Json::Null);
    }

    #[test]
    fn primitive_conversions_roundtrip() {
        let cases: Vec<(Json, bool)> = vec![
            (42usize.to_json(), true),
            ((-7i64).to_json(), true),
            (1.5f64.to_json(), true),
            ("hello".to_json(), true),
            (Some("x".to_string()).to_json(), true),
            (Option::<String>::None.to_json(), true),
        ];
        for (j, _) in cases {
            assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        }
        assert_eq!(usize::from_json(&Json::Num(42.0)).unwrap(), 42);
        assert!(usize::from_json(&Json::Num(1.5)).is_err());
        assert!(usize::from_json(&Json::Num(-1.0)).is_err());
        assert!(u8::from_json(&Json::Num(300.0)).is_err());
        let pairs: Vec<(String, usize)> =
            from_str(r#"[["a", 1], ["b", 2]]"#).unwrap();
        assert_eq!(pairs, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }
}
