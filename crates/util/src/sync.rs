//! Non-poisoning `Mutex`/`RwLock` shims over `std::sync`.
//!
//! The `parking_lot` API the workspace used: `lock()`, `read()` and
//! `write()` return guards directly, with no poison `Result`. A
//! panicked writer here recovers the inner value instead of poisoning
//! — the catalog's invariants are per-operation, so recovery is safe.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire, blocking; recovers from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A readers-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire shared access; recovers from poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire exclusive access; recovers from poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison it");
        })
        .join();
        // A parking_lot-style lock keeps working after a panicked writer.
        assert_eq!(*l.read(), 1);
    }
}
