//! Deterministic seedable PRNG with a `rand`-shim API.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded from a
//! single `u64` through SplitMix64 exactly as the reference
//! implementation recommends. It is not cryptographic; it is fast,
//! well-distributed, and — the property the experiment harness relies
//! on — fully determined by its seed.
//!
//! The API mirrors the subset of `rand 0.8` the workspace used:
//! `StdRng::seed_from_u64(seed)`, `rng.gen_range(lo..hi)` over integer
//! and float ranges, `rng.gen_bool(p)`, and `rng.shuffle(&mut slice)`.

use std::ops::Range;

/// Seed-construction shim matching `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire output stream is a function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// 256-bit xoshiro state, per the reference seeding procedure.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl StdRng {
    /// The next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
#[inline]
fn bounded_u64(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; values past it are
    // rejected so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )+};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Value-drawing shim matching the used subset of `rand::Rng`.
pub trait Rng {
    /// Uniform draw from a half-open range, e.g. `rng.gen_range(0..n)`
    /// or `rng.gen_range(0.5..3.0)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;

    /// A uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64;

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]);
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit() < p
    }

    #[inline]
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_is_stable_across_runs() {
        // Pin the stream so accidental algorithm changes (which would
        // silently re-roll every experiment table) are caught.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // xoshiro256++ seeded via splitmix64(0): non-trivial values.
        assert!(first.iter().all(|&v| v != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.5..0.25);
            assert!((-0.5..0.25).contains(&f));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let v = r.gen_range(-10i64..-3);
            assert!((-10..-3).contains(&v));
        }
    }
}
