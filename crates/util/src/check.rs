//! A small property-testing harness: seeded case generation,
//! tape-based shrink-on-failure, and regression-seed replay.
//!
//! A property is a closure over a [`Gen`]: it draws whatever random
//! structure it needs and returns `Err(message)` (or panics) on
//! failure. Under the hood every draw is recorded on a tape of `u64`s.
//! When a case fails, the harness shrinks the *tape* — truncating it,
//! deleting spans, and zeroing/halving entries — and re-runs the
//! property with draws replayed from the shrunk tape (exhausted tapes
//! draw zeros). Because every generator maps smaller tape words to
//! smaller/simpler values, tape minimization is value minimization,
//! without per-type shrinkers.
//!
//! Reproducibility: each case is fully determined by `(seed, case
//! index)`. A failure report names the failing case seed; putting that
//! seed in the `regressions` list of [`check`] replays it first on
//! every future run — the workflow that replaces
//! `proptest-regressions` files.

use crate::rng::{SeedableRng, StdRng};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of generated cases per property when not overridden.
pub const DEFAULT_CASES: u32 = 64;

/// The draw source handed to properties. Draws are recorded (or
/// replayed during shrinking) on a `u64` tape.
pub struct Gen {
    tape: Vec<u64>,
    pos: usize,
    rng: Option<StdRng>,
}

impl Gen {
    fn fresh(seed: u64) -> Gen {
        Gen { tape: Vec::new(), pos: 0, rng: Some(StdRng::seed_from_u64(seed)) }
    }

    fn replay(tape: Vec<u64>) -> Gen {
        Gen { tape, pos: 0, rng: None }
    }

    /// The raw next tape word.
    fn word(&mut self) -> u64 {
        if self.pos < self.tape.len() {
            let v = self.tape[self.pos];
            self.pos += 1;
            v
        } else if let Some(rng) = &mut self.rng {
            let v = rng.next_u64();
            self.tape.push(v);
            self.pos += 1;
            v
        } else {
            // Shrunk tape exhausted: the simplest draw.
            self.pos += 1;
            0
        }
    }

    /// A `usize` in `[lo, hi)`. Smaller tape words give smaller values,
    /// which is what makes tape shrinking shrink data.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        let span = (r.end - r.start) as u64;
        r.start + (self.word() % span) as usize
    }

    /// An `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add((self.word() % span) as i64)
    }

    /// A `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.word() % (r.end - r.start)
    }

    /// An `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, r: Range<f64>) -> f64 {
        let unit = (self.word() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        r.start + unit * (r.end - r.start)
    }

    /// `true` with probability `p`. Zero tape words give `false`.
    pub fn bool_p(&mut self, p: f64) -> bool {
        ((self.word() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// One element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }

    /// A string of `len` characters drawn from `alphabet`, with
    /// `len` in the given range. An all-zero tape yields a string of
    /// the minimum length repeating the first alphabet char.
    pub fn string_of(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "empty alphabet");
        let n = self.usize_in(len);
        (0..n).map(|_| *self.choose(&chars)).collect()
    }

    /// A vector with length in `len`, elements built by `f`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Outcome of one property execution.
fn run_once(
    prop: &dyn Fn(&mut Gen) -> Result<(), String>,
    gen: &mut Gen,
) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(gen))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Shrink a failing tape: repeatedly try structural simplifications,
/// keeping any candidate that still fails the property.
fn shrink(
    prop: &dyn Fn(&mut Gen) -> Result<(), String>,
    mut tape: Vec<u64>,
    mut last_err: String,
) -> (Vec<u64>, String) {
    let fails = |candidate: &[u64]| -> Option<String> {
        let mut g = Gen::replay(candidate.to_vec());
        run_once(prop, &mut g).err()
    };
    // Bounded passes: each pass tries every simplification once.
    for _ in 0..8 {
        let mut improved = false;

        // 1. Truncate the tail (drop trailing halves first).
        let mut cut = tape.len() / 2;
        while cut > 0 {
            if tape.len() > cut {
                let candidate = tape[..tape.len() - cut].to_vec();
                if let Some(e) = fails(&candidate) {
                    tape = candidate;
                    last_err = e;
                    improved = true;
                    continue;
                }
            }
            cut /= 2;
        }

        // 2. Delete interior spans.
        let mut span = tape.len().max(1) / 2;
        while span > 0 {
            let mut i = 0;
            while i + span <= tape.len() {
                let mut candidate = tape.clone();
                candidate.drain(i..i + span);
                if let Some(e) = fails(&candidate) {
                    tape = candidate;
                    last_err = e;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            span /= 2;
        }

        // 3. Minimize individual words: zero, then binary-search down.
        for i in 0..tape.len() {
            if tape[i] == 0 {
                continue;
            }
            let mut candidate = tape.clone();
            candidate[i] = 0;
            if let Some(e) = fails(&candidate) {
                tape = candidate;
                last_err = e;
                improved = true;
                continue;
            }
            let (mut lo, mut hi) = (0u64, tape[i]);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = tape.clone();
                candidate[i] = mid;
                match fails(&candidate) {
                    Some(e) => {
                        tape = candidate;
                        last_err = e;
                        hi = mid;
                        improved = true;
                    }
                    None => lo = mid,
                }
            }
        }

        if !improved {
            break;
        }
    }
    (tape, last_err)
}

/// Run a property over `cases` generated inputs, replaying every
/// `regressions` seed first. Panics with a replayable report on the
/// first (shrunk) failure.
///
/// The per-case seed is `hash(name) ^ case_index`, so adding cases to
/// one property never re-rolls another.
pub fn check(
    name: &str,
    cases: u32,
    regressions: &[u64],
    prop: impl Fn(&mut Gen) -> Result<(), String>,
) {
    let base = {
        // FxHash the name for a stable per-property seed base.
        use std::hash::{Hash, Hasher};
        let mut h = crate::hash::FxHasher::default();
        name.hash(&mut h);
        h.finish()
    };
    let replay_then_generated = regressions
        .iter()
        .copied()
        .map(|s| (s, true))
        .chain((0..cases as u64).map(|i| (base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15), false)));
    for (seed, is_regression) in replay_then_generated {
        let mut gen = Gen::fresh(seed);
        if let Err(err) = run_once(&prop, &mut gen) {
            let (tape, shrunk_err) = shrink(&prop, gen.tape.clone(), err.clone());
            panic!(
                "property {name:?} failed{}\n  seed: {seed:#x}{}\n  original failure: {err}\n  shrunk failure ({} draws): {shrunk_err}\n  \
                 replay: add {seed:#x} to this property's regression list",
                if is_regression { " (regression seed)" } else { "" },
                if is_regression { " (from regression list)" } else { "" },
                tape.len(),
            );
        }
    }
}

/// `prop_assert!`-style helper: returns `Err` from the enclosing
/// property instead of panicking (panics are also caught, but `Err`
/// carries a formatted message without unwinding).
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($arg)+)));
        }
    };
}

/// `prop_assert_eq!` counterpart of [`prop_ensure!`].
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("assertion failed: {:?} != {:?}: {}", a, b, format!($($arg)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("sum-commutes", 100, &[], |g| {
            let a = g.i64_in(-1000..1000);
            let b = g.i64_in(-1000..1000);
            prop_ensure_eq!(a + b, b + a);
            Ok(())
        });
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("all-below-100", 200, &[], |g| {
                let v = g.vec_of(0..20, |g| g.usize_in(0..1000));
                prop_ensure!(v.iter().all(|&x| x < 100), "saw {:?}", v);
                Ok(())
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("all-below-100"), "report names the property: {msg}");
        assert!(msg.contains("replay: add"), "report explains replay: {msg}");
    }

    #[test]
    fn shrinking_reaches_a_small_counterexample() {
        // The minimal failing vec for "no element >= 100" is one element
        // of value exactly 100; the shrunk tape should be tiny.
        let prop = |g: &mut Gen| -> Result<(), String> {
            let v = g.vec_of(0..20, |g| g.usize_in(0..1000));
            if v.iter().any(|&x| x >= 100) {
                Err(format!("saw {v:?}"))
            } else {
                Ok(())
            }
        };
        // Find a failing tape.
        let mut seed = 0;
        let (mut tape, mut err) = loop {
            let mut g = Gen::fresh(seed);
            match run_once(&prop, &mut g) {
                Err(e) => break (g.tape.clone(), e),
                Ok(()) => seed += 1,
            }
        };
        (tape, err) = shrink(&prop, tape, err);
        // Tape: one word for the length, one for the single element.
        assert!(tape.len() <= 2, "tape not minimized: {tape:?}");
        assert!(err.contains("[100]"), "value not minimized: {err}");
    }

    #[test]
    fn regression_seeds_run_first() {
        let hit = std::cell::Cell::new(false);
        check("regression-replay", 0, &[0xDEAD], |g| {
            hit.set(true);
            // Consume a draw so the tape is non-trivial.
            let _ = g.usize_in(0..10);
            Ok(())
        });
        assert!(hit.get(), "regression seed was not replayed");
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            check("determinism-probe", 10, &[], |g| {
                seen.borrow_mut().push(g.u64_in(0..u64::MAX));
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
