//! Pattern learning over tokenized values.
//!
//! A semantic type is modeled as a small set of token-sequence patterns
//! with support counts. Learning starts from fully-constant patterns and
//! generalizes *only when forced*: a new value either matches an existing
//! pattern, or is merged with the structurally closest one via least
//! general generalization, or (under the pattern budget) starts a new
//! pattern. This keeps discriminative constants — `Ave`/`St` street
//! suffixes, area-code parentheses — while generalizing open vocabulary
//! like street names, exactly the "constants + generalized tokens" mix the
//! paper describes (§3.2).

use crate::token::{tokenize_value, TokenClass, ValueToken};
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// One position of a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternToken {
    /// Matches exactly this token text.
    Const(String),
    /// Matches any token of this class.
    Class(TokenClass),
}

impl PatternToken {
    fn matches(&self, tok: &ValueToken) -> bool {
        match self {
            PatternToken::Const(s) => *s == tok.text,
            PatternToken::Class(c) => c.matches(&tok.text),
        }
    }

    /// Least general generalization of two pattern tokens.
    fn lgg(&self, other: &PatternToken) -> PatternToken {
        match (self, other) {
            (PatternToken::Const(a), PatternToken::Const(b)) if a == b => {
                PatternToken::Const(a.clone())
            }
            _ => PatternToken::Class(self.class().generalize(other.class())),
        }
    }

    fn class(&self) -> TokenClass {
        match self {
            PatternToken::Const(s) => TokenClass::of(s),
            PatternToken::Class(c) => *c,
        }
    }

    /// Specificity weight used to rank candidate merges (higher = more
    /// discriminative).
    fn specificity(&self) -> f64 {
        match self {
            PatternToken::Const(_) => 3.0,
            PatternToken::Class(c) => match c {
                TokenClass::Punct(_) => 2.5,
                TokenClass::Digits(_) => 2.0,
                TokenClass::CapWord | TokenClass::UpperWord | TokenClass::LowerWord => 1.5,
                TokenClass::AnyDigits => 1.5,
                TokenClass::MixedWord => 1.0,
                TokenClass::AlphaNum => 0.75,
                TokenClass::Any => 0.0,
            },
        }
    }
}

impl fmt::Display for PatternToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternToken::Const(s) => write!(f, "\"{s}\""),
            PatternToken::Class(c) => write!(f, "{c}"),
        }
    }
}

impl ToJson for PatternToken {
    fn to_json(&self) -> Json {
        match self {
            PatternToken::Const(s) => Json::obj(vec![("Const".into(), s.to_json())]),
            PatternToken::Class(c) => Json::obj(vec![("Class".into(), c.to_json())]),
        }
    }
}

impl FromJson for PatternToken {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(s) = j.get("Const") {
            return Ok(PatternToken::Const(String::from_json(s)?));
        }
        if let Some(c) = j.get("Class") {
            return Ok(PatternToken::Class(TokenClass::from_json(c)?));
        }
        Err(JsonError::expected("pattern token", j))
    }
}

/// A token-sequence pattern, e.g. `NUM Capword "Ave"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    tokens: Vec<PatternToken>,
}

impl Pattern {
    /// Build a pattern directly from tokens (for curated built-in type
    /// models that encode knowledge from "previous sessions").
    pub fn new(tokens: Vec<PatternToken>) -> Pattern {
        Pattern { tokens }
    }

    /// The fully-constant pattern of a value. Returns `None` for values
    /// that tokenize to nothing (empty / all-whitespace).
    pub fn from_value(value: &str) -> Option<Pattern> {
        let toks = tokenize_value(value);
        if toks.is_empty() {
            return None;
        }
        Some(Pattern {
            tokens: toks
                .into_iter()
                .map(|t| PatternToken::Const(t.text))
                .collect(),
        })
    }

    /// The pattern's positions.
    pub fn tokens(&self) -> &[PatternToken] {
        &self.tokens
    }

    /// Whether the pattern matches a raw value (token-count and per-token).
    pub fn matches(&self, value: &str) -> bool {
        let toks = tokenize_value(value);
        toks.len() == self.tokens.len()
            && self
                .tokens
                .iter()
                .zip(toks.iter())
                .all(|(p, t)| p.matches(t))
    }

    /// Least general generalization; `None` when token counts differ.
    pub fn lgg(&self, other: &Pattern) -> Option<Pattern> {
        if self.tokens.len() != other.tokens.len() {
            return None;
        }
        Some(Pattern {
            tokens: self
                .tokens
                .iter()
                .zip(other.tokens.iter())
                .map(|(a, b)| a.lgg(b))
                .collect(),
        })
    }

    /// Total specificity (sum of per-token weights).
    pub fn specificity(&self) -> f64 {
        self.tokens.iter().map(PatternToken::specificity).sum()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl ToJson for Pattern {
    /// A pattern serializes as its token array.
    fn to_json(&self) -> Json {
        self.tokens.to_json()
    }
}

impl FromJson for Pattern {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Pattern { tokens: Vec::from_json(j)? })
    }
}

/// A learned set of patterns with support counts: the model of one
/// semantic type.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<(Pattern, usize)>,
    total: usize,
    budget: usize,
}

/// Default maximum number of patterns kept per type.
pub const DEFAULT_PATTERN_BUDGET: usize = 10;

/// Minimum fraction of a constant pattern's specificity that a merge must
/// retain to happen while under the pattern budget (see [`PatternSet::add`]).
pub const MERGE_SPECIFICITY_RATIO: f64 = 0.6;

impl PatternSet {
    /// An empty set with the default pattern budget.
    pub fn new() -> Self {
        Self { patterns: Vec::new(), total: 0, budget: DEFAULT_PATTERN_BUDGET }
    }

    /// An empty set with a custom budget (≥1).
    pub fn with_budget(budget: usize) -> Self {
        Self { patterns: Vec::new(), total: 0, budget: budget.max(1) }
    }

    /// Learn a set from training values.
    pub fn learn<S: AsRef<str>>(values: &[S]) -> Self {
        let mut set = Self::new();
        for v in values {
            set.add(v.as_ref());
        }
        set
    }

    /// Build a set from explicit weighted patterns (curated models whose
    /// supports encode an expected match distribution).
    pub fn from_weighted(patterns: Vec<(Pattern, usize)>) -> Self {
        let total = patterns.iter().map(|(_, s)| *s).sum();
        Self { patterns, total, budget: DEFAULT_PATTERN_BUDGET }
    }

    /// Patterns with their supports.
    pub fn patterns(&self) -> &[(Pattern, usize)] {
        &self.patterns
    }

    /// Number of training values absorbed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Online refinement: absorb one more training value ("patterns can be
    /// refined over time as additional training data becomes available").
    pub fn add(&mut self, value: &str) {
        let Some(constant) = Pattern::from_value(value) else {
            return;
        };
        self.total += 1;
        // 1. An existing pattern already matches: bump its support.
        if let Some((_, support)) = self
            .patterns
            .iter_mut()
            .find(|(p, _)| p.matches(value))
        {
            *support += 1;
            return;
        }
        // 2. Merge with the structurally closest pattern when the merged
        //    pattern stays discriminative enough: the lgg must retain at
        //    least MERGE_SPECIFICITY_RATIO of the constant pattern's
        //    specificity. This is what turns ten distinct zip constants into
        //    one 5DIGIT pattern while keeping `"Ave"`/`"St"` street suffixes
        //    as separate patterns.
        let best = self
            .patterns
            .iter()
            .enumerate()
            .filter_map(|(i, (p, _))| p.lgg(&constant).map(|g| (i, g)))
            .max_by(|(_, a), (_, b)| {
                a.specificity()
                    .partial_cmp(&b.specificity())
                    .expect("specificity is finite")
            });
        if let Some((i, merged)) = &best {
            if merged.specificity() >= MERGE_SPECIFICITY_RATIO * constant.specificity() {
                self.patterns[*i].0 = merged.clone();
                self.patterns[*i].1 += 1;
                self.compact();
                return;
            }
        }
        // 3. Under budget: start a new constant pattern.
        if self.patterns.len() < self.budget {
            self.patterns.push((constant, 1));
            return;
        }
        // 4. Over budget: take the best merge even if weak; if no
        //    same-length pattern exists, add the pattern and then merge
        //    the closest same-length pair anywhere in the set. Learned
        //    sets therefore always cover their own training data; the
        //    budget is only exceeded when every pattern has a distinct
        //    token count (naturally bounded for real fields).
        match best {
            Some((i, merged)) => {
                self.patterns[i].0 = merged;
                self.patterns[i].1 += 1;
                self.compact();
            }
            None => {
                self.patterns.push((constant, 1));
                self.shrink_to_budget();
            }
        }
    }

    /// Merge closest same-length pattern pairs until the budget is met or
    /// no two patterns share a token count.
    fn shrink_to_budget(&mut self) {
        while self.patterns.len() > self.budget {
            let mut best: Option<(usize, usize, Pattern)> = None;
            for i in 0..self.patterns.len() {
                for j in (i + 1)..self.patterns.len() {
                    if let Some(g) = self.patterns[i].0.lgg(&self.patterns[j].0) {
                        let better = best
                            .as_ref()
                            .is_none_or(|(_, _, b)| g.specificity() > b.specificity());
                        if better {
                            best = Some((i, j, g));
                        }
                    }
                }
            }
            let Some((i, j, merged)) = best else {
                break;
            };
            self.patterns[i].0 = merged;
            self.patterns[i].1 += self.patterns[j].1;
            self.patterns.remove(j);
            self.compact();
        }
    }

    /// After a merge, a generalized pattern may now subsume siblings; fold
    /// them in so supports stay meaningful.
    fn compact(&mut self) {
        let mut i = 0;
        while i < self.patterns.len() {
            let mut j = i + 1;
            while j < self.patterns.len() {
                let subsumes_ij = pattern_subsumes(&self.patterns[i].0, &self.patterns[j].0);
                let subsumes_ji = pattern_subsumes(&self.patterns[j].0, &self.patterns[i].0);
                if subsumes_ij {
                    self.patterns[i].1 += self.patterns[j].1;
                    self.patterns.remove(j);
                } else if subsumes_ji {
                    let support = self.patterns[i].1;
                    self.patterns[j].1 += support;
                    self.patterns.swap(i, j);
                    self.patterns.remove(j);
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
    }

    /// Which pattern (by index) first matches `value`, if any.
    pub fn match_index(&self, value: &str) -> Option<usize> {
        self.patterns.iter().position(|(p, _)| p.matches(value))
    }

    /// Fraction of `values` matched by any pattern.
    pub fn coverage<S: AsRef<str>>(&self, values: &[S]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let hit = values
            .iter()
            .filter(|v| self.match_index(v.as_ref()).is_some())
            .count();
        hit as f64 / values.len() as f64
    }

    /// The training distribution over patterns (plus no implicit unmatched
    /// mass — training values always matched something).
    pub fn training_distribution(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.patterns.len()];
        }
        self.patterns
            .iter()
            .map(|(_, s)| *s as f64 / self.total as f64)
            .collect()
    }

    /// The distribution of `values` over this set's patterns; the final
    /// element is the unmatched fraction.
    pub fn match_distribution<S: AsRef<str>>(&self, values: &[S]) -> Vec<f64> {
        let mut counts = vec![0usize; self.patterns.len() + 1];
        for v in values {
            match self.match_index(v.as_ref()) {
                Some(i) => counts[i] += 1,
                None => *counts.last_mut().expect("non-empty") += 1,
            }
        }
        let n = values.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

impl ToJson for PatternSet {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("patterns".into(), self.patterns.to_json()),
            ("total".into(), self.total.to_json()),
            ("budget".into(), self.budget.to_json()),
        ])
    }
}

impl FromJson for PatternSet {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(PatternSet {
            patterns: Vec::from_json(j.field("patterns")?)?,
            total: usize::from_json(j.field("total")?)?,
            budget: usize::from_json(j.field("budget")?)?,
        })
    }
}

/// Whether `a` matches everything `b` matches (position-wise subsumption).
fn pattern_subsumes(a: &Pattern, b: &Pattern) -> bool {
    a.tokens().len() == b.tokens().len()
        && a.tokens().iter().zip(b.tokens().iter()).all(|(x, y)| {
            match (x, y) {
                (PatternToken::Const(s), PatternToken::Const(t)) => s == t,
                (PatternToken::Const(_), PatternToken::Class(_)) => false,
                (PatternToken::Class(c), PatternToken::Const(t)) => c.matches(t),
                (PatternToken::Class(c), PatternToken::Class(d)) => *c == c.generalize(*d),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pattern_matches_only_itself() {
        let p = Pattern::from_value("Coconut Creek").unwrap();
        assert!(p.matches("Coconut Creek"));
        assert!(!p.matches("Pompano Beach"));
        assert!(!p.matches("Coconut"));
    }

    #[test]
    fn lgg_keeps_shared_constants() {
        let a = Pattern::from_value("4213 Palmetto Ave").unwrap();
        let b = Pattern::from_value("88 Oak Ave").unwrap();
        let g = a.lgg(&b).unwrap();
        assert_eq!(g.to_string(), "NUM Capword \"Ave\"");
        assert!(g.matches("7 Cypress Ave"));
        assert!(!g.matches("7 Cypress St"));
    }

    #[test]
    fn learn_streets_generalizes_but_keeps_suffixes() {
        let values: Vec<String> = (0..40)
            .map(|i| {
                let name = ["Oak", "Maple", "Palmetto", "Cypress"][i % 4];
                let suffix = ["Ave", "St"][i % 2];
                // Mixed 3- and 4-digit house numbers so the number position
                // generalizes to NUM rather than a fixed width.
                format!("{} {} {}", 100 + i * 97, name, suffix)
            })
            .collect();
        let set = PatternSet::learn(&values);
        assert!(set.patterns().len() <= DEFAULT_PATTERN_BUDGET);
        assert!((set.coverage(&values) - 1.0).abs() < 1e-9);
        // Novel street with a seen suffix matches; novel suffix should not.
        assert!(set.match_index("9999 Banyan Ave").is_some());
        assert!(set.match_index("9999 Banyan Parkway").is_none());
    }

    #[test]
    fn budget_is_respected_under_adversarial_variety() {
        let values: Vec<String> = (0..100).map(|i| format!("v{}", "x".repeat(i % 20))).collect();
        let mut set = PatternSet::with_budget(4);
        for v in &values {
            set.add(v);
        }
        assert!(set.patterns().len() <= 4);
    }

    #[test]
    fn distributions_sum_to_one() {
        let set = PatternSet::learn(&["33063", "33441", "33302"]);
        let d = set.training_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let m = set.match_distribution(&["33000", "hello"]);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((m.last().unwrap() - 0.5).abs() < 1e-9, "one of two unmatched");
    }

    #[test]
    fn zip_pattern_is_five_digits() {
        let set = PatternSet::learn(&["33063", "33441", "33302", "33064", "33065"]);
        // After merging, a single 5-digit pattern covers all zips.
        assert!(set.match_index("90210").is_some() || set.patterns().len() > 1);
        assert!(set.match_index("9021").is_none() || set.patterns().len() > 1);
    }

    #[test]
    fn compact_folds_subsumed_patterns() {
        let mut set = PatternSet::with_budget(2);
        set.add("Oak");
        set.add("Maple");
        set.add("Cedar"); // forces merge -> Capword, which subsumes both
        assert_eq!(set.patterns().len(), 1);
        assert_eq!(set.patterns()[0].1, 3);
    }

    #[test]
    fn empty_values_are_ignored() {
        let mut set = PatternSet::new();
        set.add("");
        set.add("   ");
        assert_eq!(set.total(), 0);
        assert!(set.patterns().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let set = PatternSet::learn(&["4213 Palmetto Ave", "88 Oak St", "33063", "(954) 555-0142"]);
        let back =
            PatternSet::from_json(&Json::parse(&set.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.patterns(), set.patterns());
        assert_eq!(back.total(), set.total());
        // A semantically interesting check: the round-tripped model still
        // classifies unseen values the same way.
        for v in ["7 Cypress Ave", "90210", "hello"] {
            assert_eq!(back.match_index(v), set.match_index(v));
        }
    }

    #[test]
    fn subsumption_helper() {
        let wild = Pattern::from_value("123 Oak Ave")
            .unwrap()
            .lgg(&Pattern::from_value("77 Pine Ave").unwrap())
            .unwrap();
        let conc = Pattern::from_value("9 Elm Ave").unwrap();
        assert!(pattern_subsumes(&wild, &conc));
        assert!(!pattern_subsumes(&conc, &wild));
    }
}
