//! The CopyCat *model learner* (§3.2 of the CIDR 2009 paper).
//!
//! Two responsibilities:
//!
//! 1. **Semantic types** — learn and recognize the semantic types of data
//!    columns (street, city, zip, phone, …). The approach follows the
//!    paper's description of [Lerman et al. 2007]: build *patterns* for
//!    each field from "both the constants in the data fields and
//!    generalized tokens that describe the data, such as capitalized word,
//!    3-digit number", and recognize new columns by testing whether "the
//!    distribution of matched patterns is statistically similar to the
//!    matches on the training data". See [`pattern`] and [`recognize`].
//!
//! 2. **Source functions** — learn what a source *does* "by relating it to
//!    a set of known sources" and "comparing the similarity of the
//!    results" (the Carman & Knoblock line of work the paper builds on).
//!    See [`function`].
//!
//! The [`registry::TypeRegistry`] is the session-scoped catalog: a type
//! learned from the first source "will be immediately available in the
//! same user session" for recognizing later sources.

pub mod function;
pub mod pattern;
pub mod recognize;
pub mod registry;
pub mod token;
pub mod transform;

pub use function::{FunctionLearner, IoExample, KnownFunction, SourceDescription};
pub use transform::{Program, TransformLearner};
pub use pattern::{Pattern, PatternSet, PatternToken};
pub use recognize::{recognize, RecognitionScore};
pub use registry::{SemanticType, TypeRegistry};
pub use token::{tokenize_value, TokenClass, ValueToken};
