//! The session-scoped registry of semantic types.
//!
//! Mirrors CopyCat's model-learner UI contract (§3.2): the system proposes
//! a ranked list of type hypotheses for each column ("the most likely
//! hypothesis and the other hypotheses … in a drop down list"); the user
//! can accept, pick another, or *define a new type on the fly*, which is
//! then "immediately available in the same user session".
//!
//! Built-in types use the paper's `PR-` naming from Figure 1 (`PR-Street`,
//! `PR-City`, …) and are trained from deterministic synthetic samples.

use crate::pattern::PatternSet;
use crate::recognize::{recognize, RecognitionScore};

/// A named semantic type with its learned pattern model.
#[derive(Debug, Clone)]
pub struct SemanticType {
    /// Unique type name, e.g. `PR-Zip` or a user-chosen name.
    pub name: String,
    /// The learned pattern set.
    pub patterns: PatternSet,
    /// Whether this is one of the registry's built-ins.
    pub builtin: bool,
}

/// Registry of all semantic types known in this session.
///
/// A registry is either *flat* (it owns every type — the default) or
/// *layered* over a shared immutable base ([`TypeRegistry::with_base`]):
/// the trained built-in models live once in an `Arc` shared by every
/// tenant session, and a session stores only the types it defined plus
/// copy-on-write clones of any base type it refined. Iteration order is
/// identical either way — base types in base order (refined copies
/// substituted in place), then session-local types — so recognition
/// ranking and session persistence cannot tell the representations
/// apart.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    /// The shared immutable prefix, if layered.
    base: Option<std::sync::Arc<Vec<SemanticType>>>,
    /// Copy-on-write clones of refined base types, keyed by base index.
    /// Sparse — a session rarely touches a built-in — so a Vec beats a
    /// map.
    overrides: Vec<(usize, SemanticType)>,
    /// Session-local types (and, for flat registries, every type).
    types: Vec<SemanticType>,
}

/// Default score threshold below which no type is proposed.
pub const DEFAULT_RECOGNITION_THRESHOLD: f64 = 0.35;

impl TypeRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry layered over a shared frozen type list (see
    /// [`TypeRegistry::freeze`]). Reads see the base until this session
    /// refines a type; writes copy the touched entry locally.
    pub fn with_base(base: std::sync::Arc<Vec<SemanticType>>) -> Self {
        Self { base: Some(base), ..Self::default() }
    }

    /// Freeze the current (merged) type list into a shareable base for
    /// [`TypeRegistry::with_base`].
    pub fn freeze(&self) -> std::sync::Arc<Vec<SemanticType>> {
        std::sync::Arc::new(self.iter().cloned().collect())
    }

    /// Whether this registry layers over a shared base.
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// The base entry at `i`, with this session's refinement substituted
    /// if one exists.
    fn base_at(&self, i: usize) -> &SemanticType {
        if let Some(t) = self.overrides.iter().find(|(j, _)| *j == i).map(|(_, t)| t) {
            return t;
        }
        // Callers only pass indices below the base length.
        &self.base.as_ref().expect("base_at on flat registry")[i]
    }

    /// All types in canonical order: base (with refinements substituted)
    /// then session-local.
    pub fn iter(&self) -> impl Iterator<Item = &SemanticType> {
        let n = self.base.as_ref().map_or(0, |b| b.len());
        (0..n).map(move |i| self.base_at(i)).chain(self.types.iter())
    }

    /// Find the merged entry for `name`, materializing a copy-on-write
    /// override when it lives in the base.
    fn entry_mut(&mut self, name: &str) -> Option<&mut SemanticType> {
        if let Some(base) = &self.base {
            if let Some(i) = base.iter().position(|t| t.name == name) {
                if !self.overrides.iter().any(|(j, _)| *j == i) {
                    self.overrides.push((i, base[i].clone()));
                }
                return self.overrides.iter_mut().find(|(j, _)| *j == i).map(|(_, t)| t);
            }
        }
        self.types.iter_mut().find(|t| t.name == name)
    }

    /// A registry pre-trained with the built-in `PR-*` types.
    ///
    /// Most built-ins are learned from deterministic samples; `PR-City`
    /// and `PR-Person` use curated pattern models instead, because both
    /// are capitalized-word sequences and only their *distributions*
    /// (persons are always two tokens; city names are one to three)
    /// separate them — exactly the distribution-similarity test of §3.2.
    pub fn with_builtins() -> Self {
        use crate::pattern::{Pattern, PatternToken};
        use crate::token::TokenClass;
        let mut reg = Self::empty();
        for (name, samples) in builtin_samples() {
            reg.types.push(SemanticType {
                name: name.to_string(),
                patterns: PatternSet::learn(&samples),
                builtin: true,
            });
        }
        let cap = || PatternToken::Class(TokenClass::CapWord);
        let caps = |n: usize| Pattern::new((0..n).map(|_| cap()).collect());
        reg.set_curated(
            "PR-City",
            PatternSet::from_weighted(vec![(caps(2), 65), (caps(1), 20), (caps(3), 15)]),
        );
        reg.set_curated("PR-Person", PatternSet::from_weighted(vec![(caps(2), 100)]));
        reg
    }

    /// Install a curated pattern model under a type name (replacing any
    /// existing model).
    pub fn set_curated(&mut self, name: &str, patterns: PatternSet) {
        match self.entry_mut(name) {
            Some(t) => t.patterns = patterns,
            None => self.types.push(SemanticType {
                name: name.to_string(),
                patterns,
                builtin: true,
            }),
        }
    }

    /// All type names, registry order (built-ins first).
    pub fn names(&self) -> Vec<&str> {
        self.iter().map(|t| t.name.as_str()).collect()
    }

    /// Look up a type by name.
    pub fn get(&self, name: &str) -> Option<&SemanticType> {
        self.iter().find(|t| t.name == name)
    }

    /// Define (or refine) a type from example values. Defining an existing
    /// name refines that type's pattern set — this is the on-the-fly user
    /// type definition path. Refining a shared built-in copies it into
    /// this session first; siblings never see the refinement.
    pub fn learn_type<S: AsRef<str>>(&mut self, name: &str, values: &[S]) {
        match self.entry_mut(name) {
            Some(t) => {
                for v in values {
                    t.patterns.add(v.as_ref());
                }
            }
            None => self.types.push(SemanticType {
                name: name.to_string(),
                patterns: PatternSet::learn(values),
                builtin: false,
            }),
        }
    }

    /// Rank every known type against a column of values, best first. Ties
    /// break on type name for determinism. Types scoring `0` are omitted.
    pub fn recognize_column<S: AsRef<str>>(&self, values: &[S]) -> Vec<(String, RecognitionScore)> {
        let mut scored: Vec<(String, RecognitionScore)> = self
            .iter()
            .map(|t| (t.name.clone(), recognize(&t.patterns, values)))
            .filter(|(_, s)| s.score > 0.0)
            .collect();
        scored.sort_by(|(an, a), (bn, b)| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| an.cmp(bn))
        });
        scored
    }

    /// The single best hypothesis at or above `threshold`, if any.
    pub fn best<S: AsRef<str>>(&self, values: &[S], threshold: f64) -> Option<(String, RecognitionScore)> {
        self.recognize_column(values)
            .into_iter()
            .next()
            .filter(|(_, s)| s.score >= threshold)
    }

    /// The user-defined (non-builtin) types, for session persistence.
    pub fn user_types(&self) -> Vec<&SemanticType> {
        self.iter().filter(|t| !t.builtin).collect()
    }

    /// Install a user-defined type with an explicit pattern model
    /// (session restore). Replaces any same-named type.
    pub fn install_user_type(&mut self, name: &str, patterns: PatternSet) {
        match self.entry_mut(name) {
            Some(t) => {
                t.patterns = patterns;
                t.builtin = false;
            }
            None => self.types.push(SemanticType {
                name: name.to_string(),
                patterns,
                builtin: false,
            }),
        }
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len()) + self.types.len()
    }

    /// True when no types are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic training samples for each built-in type.
fn builtin_samples() -> Vec<(&'static str, Vec<String>)> {
    let street_names = [
        "Oak", "Maple", "Palmetto", "Cypress", "Atlantic", "Sunrise", "Coral", "Banyan",
        "Riverside", "Lyons",
    ];
    let suffixes = ["St", "Ave", "Rd", "Blvd", "Dr", "Ln", "Way"];
    let streets: Vec<String> = (0..70)
        .map(|i| {
            format!(
                "{} {} {}",
                117 + i * 97 % 9000,
                street_names[i % street_names.len()],
                suffixes[i % suffixes.len()]
            )
        })
        .collect();

    let cities: Vec<String> = [
        "Coconut Creek", "Pompano Beach", "Fort Lauderdale", "Margate", "Coral Springs",
        "Deerfield Beach", "Tamarac", "Plantation", "Sunrise", "Hollywood", "Miami",
        "Orlando", "Boca Raton", "Delray Beach", "Lake Worth", "West Palm Beach",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let states: Vec<String> = [
        "FL", "GA", "AL", "SC", "NC", "TX", "LA", "MS", "TN", "VA", "NY", "CA", "PA", "OH",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let zips: Vec<String> = (0..60).map(|i| format!("{:05}", 33000 + i * 137 % 67000)).collect();

    let phones: Vec<String> = (0..40)
        .map(|i| {
            if i % 2 == 0 {
                format!("({}) 555-{:04}", 200 + i * 17 % 800, 1000 + i * 83 % 9000)
            } else {
                format!("{}-555-{:04}", 200 + i * 19 % 800, 1000 + i * 89 % 9000)
            }
        })
        .collect();

    let first = ["Ann", "Bob", "Carla", "David", "Elena", "Frank", "Grace", "Hector"];
    let last = ["Alvarez", "Brooks", "Chen", "Diaz", "Evans", "Foster", "Garcia", "Huang"];
    let people: Vec<String> = (0..40)
        .map(|i| format!("{} {}", first[i % first.len()], last[(i * 3 + 1) % last.len()]))
        .collect();

    let dates: Vec<String> = (0..36)
        .map(|i| match i % 3 {
            0 => format!("{:02}/{:02}/{}", 1 + i % 12, 1 + i * 2 % 28, 2000 + i % 10),
            1 => format!("{}-{:02}-{:02}", 2000 + i % 10, 1 + i % 12, 1 + i * 2 % 28),
            _ => {
                let months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun"];
                format!("{} {}, {}", months[i % 6], 1 + i * 2 % 28, 2000 + i % 10)
            }
        })
        .collect();

    let latlons: Vec<String> = (0..30)
        .map(|i| format!("{}.{:04}, -{}.{:04}", 25 + i % 5, i * 313 % 10000, 80 + i % 3, i * 677 % 10000))
        .collect();

    let currency: Vec<String> = (0..30)
        .map(|i| format!("${}.{:02}", 5 + i * 37 % 2000, i * 7 % 100))
        .collect();

    let emails: Vec<String> = (0..24)
        .map(|i| format!("user{}@example{}.org", i, i % 3))
        .collect();

    let urls: Vec<String> = (0..24)
        .map(|i| format!("http://www.site{}.com/page{}", i % 5, i))
        .collect();

    let ssns: Vec<String> = (0..30)
        .map(|i| format!("{:03}-{:02}-{:04}", 100 + i * 13 % 900, 10 + i * 7 % 90, 1000 + i * 311 % 9000))
        .collect();

    vec![
        ("PR-Street", streets),
        ("PR-City", cities),
        ("PR-State", states),
        ("PR-Zip", zips),
        ("PR-Phone", phones),
        ("PR-Person", people),
        ("PR-Date", dates),
        ("PR-LatLon", latlons),
        ("PR-Currency", currency),
        ("PR-Email", emails),
        ("PR-URL", urls),
        ("PR-SSN", ssns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> TypeRegistry {
        TypeRegistry::with_builtins()
    }

    #[test]
    fn builtins_present() {
        let r = reg();
        assert!(r.len() >= 12);
        assert!(r.get("PR-Zip").is_some());
        assert!(r.get("PR-Street").is_some());
    }

    #[test]
    fn recognizes_zip_column() {
        let r = reg();
        let (name, score) = r.best(&["33063", "33441", "33302"], 0.3).expect("recognized");
        assert_eq!(name, "PR-Zip");
        assert!(score.score > 0.5);
    }

    #[test]
    fn recognizes_street_column() {
        let r = reg();
        let col = ["4213 Palmetto Ave", "88 Oak St", "910 Lyons Rd"];
        let ranked = r.recognize_column(&col);
        assert_eq!(ranked[0].0, "PR-Street", "got {ranked:?}");
    }

    #[test]
    fn recognizes_phone_column() {
        let r = reg();
        let col = ["(954) 555-0142", "(305) 555-9871"];
        assert_eq!(r.recognize_column(&col)[0].0, "PR-Phone");
    }

    #[test]
    fn city_vs_person_are_distinguishable_types() {
        let r = reg();
        let cities = ["Coconut Creek", "Margate", "Tamarac"];
        let ranked = r.recognize_column(&cities);
        // City must rank above Street/Zip/Phone; Person is an acceptable
        // confusion (both are capitalized word sequences).
        let city_pos = ranked.iter().position(|(n, _)| n == "PR-City");
        let street_pos = ranked.iter().position(|(n, _)| n == "PR-Street");
        assert!(city_pos.is_some());
        assert!(street_pos.is_none() || city_pos < street_pos);
    }

    #[test]
    fn unknown_shape_yields_nothing_above_threshold() {
        let r = reg();
        assert!(r.best(&["@@@@", "####"], 0.3).is_none());
    }

    #[test]
    fn user_defined_type_is_immediately_available() {
        let mut r = reg();
        // A FEMA shelter code the built-ins don't know.
        let train: Vec<String> = (0..20).map(|i| format!("SHL-{:04}", 1000 + i)).collect();
        r.learn_type("ShelterCode", &train);
        let (name, _) = r.best(&["SHL-9999", "SHL-0001"], 0.3).expect("recognized");
        assert_eq!(name, "ShelterCode");
        assert!(!r.get("ShelterCode").unwrap().builtin);
    }

    #[test]
    fn refining_existing_type_extends_it() {
        let mut r = TypeRegistry::empty();
        r.learn_type("Code", &["A-1", "B-2"]);
        let before = r.get("Code").unwrap().patterns.total();
        r.learn_type("Code", &["C-3"]);
        assert_eq!(r.get("Code").unwrap().patterns.total(), before + 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ranking_is_deterministic() {
        let r = reg();
        let col = ["Coconut Creek", "Margate"];
        assert_eq!(r.recognize_column(&col), r.recognize_column(&col));
    }

    #[test]
    fn layered_registry_is_indistinguishable_from_flat() {
        let flat = reg();
        let layered = TypeRegistry::with_base(flat.freeze());
        assert!(layered.has_base());
        assert_eq!(layered.len(), flat.len());
        assert_eq!(layered.names(), flat.names());
        let col = ["33063", "33441", "33302"];
        assert_eq!(layered.recognize_column(&col), flat.recognize_column(&col));
        assert!(layered.get("PR-Zip").is_some_and(|t| t.builtin));
        assert!(layered.user_types().is_empty());
    }

    #[test]
    fn layered_refinements_stay_session_local() {
        let base = reg().freeze();
        let mut a = TypeRegistry::with_base(std::sync::Arc::clone(&base));
        let b = TypeRegistry::with_base(std::sync::Arc::clone(&base));
        // Session A refines a built-in and defines its own type.
        let before = a.get("PR-Zip").unwrap().patterns.total();
        a.learn_type("PR-Zip", &["99999-1234"]);
        assert_eq!(a.get("PR-Zip").unwrap().patterns.total(), before + 1);
        let train: Vec<String> = (0..20).map(|i| format!("SHL-{:04}", 1000 + i)).collect();
        a.learn_type("ShelterCode", &train);
        assert_eq!(a.len(), base.len() + 1);
        // A's order: base order with the refinement in place, then local.
        assert_eq!(a.names().last().copied(), Some("ShelterCode"));
        // Sibling B and the base are untouched.
        assert_eq!(b.get("PR-Zip").unwrap().patterns.total(), before);
        assert_eq!(b.len(), base.len());
        assert!(b.get("ShelterCode").is_none());
        // Refined built-ins stay builtin (not persisted); replaced ones
        // become user types (persisted).
        assert!(a.get("PR-Zip").unwrap().builtin);
        assert!(a.user_types().iter().all(|t| t.name != "PR-Zip"));
        a.install_user_type("PR-Zip", crate::pattern::PatternSet::learn(&["00000"]));
        assert!(a.user_types().iter().any(|t| t.name == "PR-Zip"));
    }
}
