//! Learning value transformations from examples (§5, "Complex functions
//! / transforms").
//!
//! "Sometimes the user will want to apply complex operations that are
//! difficult to demonstrate: for instance, perform an aggregation or
//! evaluate an arithmetic expression. It is important to explore
//! approaches to searching for possible functions [19] …"
//!
//! Given a few `(input row, output value)` examples — the user typing
//! the first values of a derived column — [`TransformLearner`] searches a
//! compositional program space and returns programs consistent with all
//! the examples, ranked simplest-first:
//!
//! * **numeric templates**: `col ⊕ col`, `col ⊕ constant`, sums and
//!   rounded divisions;
//! * **string programs**: concatenations of column references, token
//!   extractions (indexed from the start or the end), case
//!   transformations, and literal constants.

use std::fmt;

/// Where a token index counts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenIndex {
    /// i-th token from the start (0-based).
    FromStart(usize),
    /// i-th token from the end (0 = last).
    FromEnd(usize),
}

/// A case adjustment applied to extracted text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseOp {
    /// As-is.
    Keep,
    /// ALL UPPER.
    Upper,
    /// all lower.
    Lower,
}

/// One concatenated piece of a string program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Part {
    /// A literal constant.
    Const(String),
    /// A whole input column, case-adjusted.
    Column {
        /// Input column index.
        col: usize,
        /// Case adjustment.
        case: CaseOp,
    },
    /// One token of an input column, case-adjusted.
    Token {
        /// Input column index.
        col: usize,
        /// Which token.
        index: TokenIndex,
        /// Case adjustment.
        case: CaseOp,
    },
}

/// An arithmetic template over numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Arith {
    /// `col_a ⊕ col_b`.
    ColCol {
        /// Operator symbol: `+ - * /`.
        op: char,
        /// Left column.
        a: usize,
        /// Right column.
        b: usize,
    },
    /// `col ⊕ constant`.
    ColConst {
        /// Operator symbol.
        op: char,
        /// Column.
        col: usize,
        /// The constant.
        k: f64,
    },
    /// Sum of all numeric columns.
    SumAll,
}

/// A learned transformation program.
#[derive(Debug, Clone, PartialEq)]
pub enum Program {
    /// Concatenation of [`Part`]s.
    Concat(Vec<Part>),
    /// A numeric template (output formatted like the examples: integral
    /// outputs print without a fraction).
    Numeric(Arith),
}

fn tokens_of(s: &str) -> Vec<&str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .collect()
}

fn apply_case(s: &str, case: CaseOp) -> String {
    match case {
        CaseOp::Keep => s.to_string(),
        CaseOp::Upper => s.to_uppercase(),
        CaseOp::Lower => s.to_lowercase(),
    }
}

fn fmt_num(n: f64) -> String {
    if n.fract().abs() < 1e-9 && n.abs() < 1e15 {
        format!("{}", n.round() as i64)
    } else {
        // Trim float noise to 6 significant decimals.
        let s = format!("{:.6}", n);
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

impl Program {
    /// Apply to an input row; `None` when a referenced column is missing
    /// or non-numeric where a number is required.
    pub fn apply(&self, inputs: &[String]) -> Option<String> {
        match self {
            Program::Concat(parts) => {
                let mut out = String::new();
                for p in parts {
                    match p {
                        Part::Const(s) => out.push_str(s),
                        Part::Column { col, case } => {
                            out.push_str(&apply_case(inputs.get(*col)?, *case));
                        }
                        Part::Token { col, index, case } => {
                            let toks = tokens_of(inputs.get(*col)?);
                            let tok = match index {
                                TokenIndex::FromStart(i) => toks.get(*i)?,
                                TokenIndex::FromEnd(i) => {
                                    toks.get(toks.len().checked_sub(i + 1)?)?
                                }
                            };
                            out.push_str(&apply_case(tok, *case));
                        }
                    }
                }
                Some(out)
            }
            Program::Numeric(a) => {
                let num = |i: usize| inputs.get(i)?.trim().parse::<f64>().ok();
                let v = match a {
                    Arith::ColCol { op, a, b } => eval(*op, num(*a)?, num(*b)?)?,
                    Arith::ColConst { op, col, k } => eval(*op, num(*col)?, *k)?,
                    Arith::SumAll => inputs
                        .iter()
                        .filter_map(|s| s.trim().parse::<f64>().ok())
                        .sum(),
                };
                Some(fmt_num(v))
            }
        }
    }

    /// Complexity score for ranking (lower = simpler; constants cost
    /// more than references, so programs that actually *use* the data
    /// rank above ones that memorize it).
    pub fn complexity(&self) -> usize {
        match self {
            Program::Concat(parts) => parts
                .iter()
                .map(|p| match p {
                    Part::Column { case: CaseOp::Keep, .. } => 1,
                    Part::Column { .. } => 2,
                    Part::Token { case: CaseOp::Keep, .. } => 2,
                    Part::Token { .. } => 3,
                    Part::Const(c) => 2 + c.len(),
                })
                .sum(),
            Program::Numeric(Arith::SumAll) => 2,
            Program::Numeric(_) => 3,
        }
    }
}

fn eval(op: char, a: f64, b: f64) -> Option<f64> {
    match op {
        '+' => Some(a + b),
        '-' => Some(a - b),
        '*' => Some(a * b),
        '/' => (b != 0.0).then(|| a / b),
        _ => None,
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Program::Concat(parts) => {
                let rendered: Vec<String> = parts
                    .iter()
                    .map(|p| match p {
                        Part::Const(c) => format!("{c:?}"),
                        Part::Column { col, case } => {
                            format!("col{}{}", col, case_suffix(*case))
                        }
                        Part::Token { col, index, case } => {
                            let idx = match index {
                                TokenIndex::FromStart(i) => format!("[{i}]"),
                                TokenIndex::FromEnd(i) => format!("[-{}]", i + 1),
                            };
                            format!("col{col}.tok{idx}{}", case_suffix(*case))
                        }
                    })
                    .collect();
                write!(f, "{}", rendered.join(" ++ "))
            }
            Program::Numeric(a) => match a {
                Arith::ColCol { op, a, b } => write!(f, "col{a} {op} col{b}"),
                Arith::ColConst { op, col, k } => write!(f, "col{col} {op} {}", fmt_num(*k)),
                Arith::SumAll => write!(f, "sum(all numeric columns)"),
            },
        }
    }
}

fn case_suffix(c: CaseOp) -> &'static str {
    match c {
        CaseOp::Keep => "",
        CaseOp::Upper => ".upper",
        CaseOp::Lower => ".lower",
    }
}

/// The by-example program search.
#[derive(Debug, Clone)]
pub struct TransformLearner {
    /// Cap on candidate programs explored per example segmentation.
    pub max_candidates: usize,
}

impl Default for TransformLearner {
    fn default() -> Self {
        Self { max_candidates: 128 }
    }
}

impl TransformLearner {
    /// Construct with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn programs from `(inputs, output)` examples. Returns the
    /// programs consistent with *every* example, simplest first.
    pub fn learn(&self, examples: &[(Vec<String>, String)]) -> Vec<Program> {
        let Some((first_in, first_out)) = examples.first() else {
            return Vec::new();
        };
        let mut found: Vec<Program> = Vec::new();
        // 1. Numeric templates.
        for p in numeric_templates(first_in, first_out) {
            if examples
                .iter()
                .all(|(i, o)| p.apply(i).as_deref() == Some(o.as_str()))
            {
                found.push(p);
            }
        }
        // 2. String programs: enumerate segmentations of the first
        //    example's output, validate each on the rest.
        for candidate in self.segmentations(first_in, first_out) {
            let p = Program::Concat(candidate);
            if examples
                .iter()
                .all(|(i, o)| p.apply(i).as_deref() == Some(o.as_str()))
                && !found.contains(&p)
            {
                found.push(p);
            }
        }
        found.sort_by_key(Program::complexity);
        found
    }

    /// Candidate part sequences explaining `output` from `inputs`:
    /// depth-first over positions, branching on every extractor that
    /// matches at the current position (plus a constant fallback),
    /// capped at `max_candidates` complete programs.
    fn segmentations(&self, inputs: &[String], output: &str) -> Vec<Vec<Part>> {
        let mut results = Vec::new();
        let mut prefix = Vec::new();
        self.dfs(inputs, output, 0, &mut prefix, &mut results);
        results
    }

    fn dfs(
        &self,
        inputs: &[String],
        output: &str,
        pos: usize,
        prefix: &mut Vec<Part>,
        results: &mut Vec<Vec<Part>>,
    ) {
        if results.len() >= self.max_candidates {
            return;
        }
        if pos >= output.len() {
            results.push(prefix.clone());
            return;
        }
        let rest = &output[pos..];
        let mut matched_any = false;
        // Whole-column matches (longest first by construction: columns
        // beat their own tokens at the same position).
        for (c, v) in inputs.iter().enumerate() {
            if v.is_empty() {
                continue;
            }
            for case in [CaseOp::Keep, CaseOp::Upper, CaseOp::Lower] {
                let cand = apply_case(v, case);
                if cand.is_empty() || !rest.starts_with(&cand) {
                    continue;
                }
                if case != CaseOp::Keep && cand == *v {
                    continue; // avoid duplicate case variants
                }
                matched_any = true;
                prefix.push(Part::Column { col: c, case });
                self.dfs(inputs, output, pos + cand.len(), prefix, results);
                prefix.pop();
            }
        }
        // Token matches.
        for (c, v) in inputs.iter().enumerate() {
            let toks = tokens_of(v);
            let n = toks.len();
            for (i, tok) in toks.iter().enumerate() {
                if n <= 1 {
                    continue; // single token == whole column, covered above
                }
                for case in [CaseOp::Keep, CaseOp::Upper, CaseOp::Lower] {
                    let cand = apply_case(tok, case);
                    if cand.is_empty() || !rest.starts_with(&cand) {
                        continue;
                    }
                    if case != CaseOp::Keep && cand == *tok {
                        continue;
                    }
                    matched_any = true;
                    // Offer both indexings; later examples disambiguate.
                    for index in [TokenIndex::FromStart(i), TokenIndex::FromEnd(n - 1 - i)] {
                        prefix.push(Part::Token { col: c, index, case });
                        self.dfs(inputs, output, pos + cand.len(), prefix, results);
                        prefix.pop();
                    }
                }
            }
        }
        // Constant fallback: extend to the next position where any
        // column/token matches (or the end). Only when the previous part
        // is not already a constant (constants merge).
        if !matches!(prefix.last(), Some(Part::Const(_))) {
            let next = (pos + 1..=output.len())
                .find(|&p| p == output.len() || any_extractor_matches(inputs, &output[p..]))
                .unwrap_or(output.len());
            // Avoid a pure-constant program unless nothing else matched
            // anywhere (those memorize rather than transform).
            let whole_is_const = prefix.is_empty() && next == output.len();
            if (!whole_is_const || !matched_any)
                && output.is_char_boundary(next) {
                    prefix.push(Part::Const(output[pos..next].to_string()));
                    self.dfs(inputs, output, next, prefix, results);
                    prefix.pop();
                }
        }
    }
}

fn any_extractor_matches(inputs: &[String], rest: &str) -> bool {
    for v in inputs {
        if !v.is_empty() && rest.starts_with(v.as_str()) {
            return true;
        }
        for tok in tokens_of(v) {
            if rest.starts_with(tok) {
                return true;
            }
        }
    }
    false
}

fn numeric_templates(inputs: &[String], output: &str) -> Vec<Program> {
    let Ok(out) = output.trim().parse::<f64>() else {
        return Vec::new();
    };
    let nums: Vec<(usize, f64)> = inputs
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.trim().parse::<f64>().ok().map(|n| (i, n)))
        .collect();
    let mut out_programs = Vec::new();
    // Sum of all numeric columns.
    if nums.len() >= 2 && (nums.iter().map(|(_, n)| n).sum::<f64>() - out).abs() < 1e-9 {
        out_programs.push(Program::Numeric(Arith::SumAll));
    }
    // Column-column ops.
    for &(a, va) in &nums {
        for &(b, vb) in &nums {
            if a == b {
                continue;
            }
            for op in ['+', '-', '*', '/'] {
                if let Some(v) = eval(op, va, vb) {
                    if (v - out).abs() < 1e-9 {
                        out_programs.push(Program::Numeric(Arith::ColCol { op, a, b }));
                    }
                }
            }
        }
    }
    // Column-constant ops (constant inferred from the first example).
    for &(col, v) in &nums {
        let candidates = [
            ('+', out - v),
            ('-', v - out),
            ('*', if v != 0.0 { out / v } else { f64::NAN }),
            ('/', if out != 0.0 { v / out } else { f64::NAN }),
        ];
        for (op, k) in candidates {
            if k.is_finite() && eval(op, v, k).is_some_and(|r| (r - out).abs() < 1e-9) {
                // Skip degenerate identities like col * 1 when col == out.
                out_programs.push(Program::Numeric(Arith::ColConst { op, col, k }));
            }
        }
    }
    out_programs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(inputs: &[&str], output: &str) -> (Vec<String>, String) {
        (
            inputs.iter().map(|s| s.to_string()).collect(),
            output.to_string(),
        )
    }

    fn learn(examples: &[(Vec<String>, String)]) -> Vec<Program> {
        TransformLearner::new().learn(examples)
    }

    #[test]
    fn concat_with_separator() {
        let programs = learn(&[
            ex(&["Ann", "Lopez"], "Lopez, Ann"),
            ex(&["Bob", "Chen"], "Chen, Bob"),
        ]);
        assert!(!programs.is_empty());
        let top = &programs[0];
        assert_eq!(
            top.apply(&["Maria".to_string(), "Diaz".to_string()]).as_deref(),
            Some("Diaz, Maria")
        );
    }

    #[test]
    fn last_token_extraction() {
        let programs = learn(&[
            ex(&["Coconut Creek High School"], "School"),
            ex(&["Margate Civic Center"], "Center"),
        ]);
        let top = programs.first().expect("learned");
        assert_eq!(
            top.apply(&["Pompano Rec Hall".to_string()]).as_deref(),
            Some("Hall")
        );
    }

    #[test]
    fn from_start_vs_from_end_disambiguated() {
        // One example is ambiguous (token 0 == token -2 for 2-token
        // values); the second example settles it as from-start.
        let programs = learn(&[
            ex(&["Coconut Creek"], "Coconut"),
            ex(&["Fort Lauderdale Beach"], "Fort"),
        ]);
        let top = programs.first().expect("learned");
        assert_eq!(top.apply(&["Boca Raton West".to_string()]).as_deref(), Some("Boca"));
    }

    #[test]
    fn case_transformation() {
        let programs = learn(&[
            ex(&["fl"], "FL"),
            ex(&["ga"], "GA"),
        ]);
        let top = programs.first().expect("learned");
        assert_eq!(top.apply(&["tx".to_string()]).as_deref(), Some("TX"));
    }

    #[test]
    fn templated_label() {
        let programs = learn(&[
            ex(&["Creek HS", "Margate"], "Creek HS (Margate)"),
            ex(&["Rec Ctr", "Tamarac"], "Rec Ctr (Tamarac)"),
        ]);
        let top = programs.first().expect("learned");
        assert_eq!(
            top.apply(&["Civic".to_string(), "Sunrise".to_string()])
                .as_deref(),
            Some("Civic (Sunrise)")
        );
    }

    #[test]
    fn arithmetic_column_pair() {
        let programs = learn(&[
            ex(&["100", "250"], "350"),
            ex(&["40", "2"], "42"),
        ]);
        let top = programs.first().expect("learned");
        assert_eq!(top.apply(&["7".to_string(), "8".to_string()]).as_deref(), Some("15"));
    }

    #[test]
    fn arithmetic_with_constant() {
        // A 8% tax: out = col0 * 1.08.
        let programs = learn(&[
            ex(&["100"], "108"),
            ex(&["200"], "216"),
        ]);
        assert!(
            programs
                .iter()
                .any(|p| matches!(p, Program::Numeric(Arith::ColConst { op: '*', .. }))),
            "{programs:?}"
        );
        let top = programs
            .iter()
            .find(|p| matches!(p, Program::Numeric(_)))
            .unwrap();
        assert_eq!(top.apply(&["50".to_string()]).as_deref(), Some("54"));
    }

    #[test]
    fn inconsistent_examples_learn_nothing() {
        let programs = learn(&[
            ex(&["a"], "x"),
            ex(&["a"], "y"), // same input, different output
        ]);
        assert!(programs.is_empty(), "{programs:?}");
    }

    #[test]
    fn prefers_references_over_memorized_constants() {
        let programs = learn(&[
            ex(&["Margate"], "Margate!"),
            ex(&["Tamarac"], "Tamarac!"),
        ]);
        let top = programs.first().expect("learned");
        // Must generalize, not memorize.
        assert_eq!(top.apply(&["Sunrise".to_string()]).as_deref(), Some("Sunrise!"));
    }

    #[test]
    fn display_is_readable() {
        let p = Program::Concat(vec![
            Part::Token { col: 0, index: TokenIndex::FromEnd(0), case: CaseOp::Upper },
            Part::Const(" of ".into()),
            Part::Column { col: 1, case: CaseOp::Keep },
        ]);
        assert_eq!(p.to_string(), "col0.tok[-1].upper ++ \" of \" ++ col1");
    }

    #[test]
    fn empty_examples() {
        assert!(learn(&[]).is_empty());
    }

    #[test]
    fn missing_column_applies_to_none() {
        let p = Program::Concat(vec![Part::Column { col: 3, case: CaseOp::Keep }]);
        assert_eq!(p.apply(&["only".to_string()]), None);
    }
}
