//! Source-function learning.
//!
//! §3.2: "The model learner learns the function performed by a source by
//! relating it to a set of known sources … the system describes the new
//! source in terms of a set of known existing sources and then compares
//! the inputs and outputs of the new source to the existing sources by
//! executing the new source and the learned description and comparing the
//! similarity of the results."
//!
//! Given I/O examples observed from a new source, [`FunctionLearner`]
//! searches its library of [`KnownFunction`]s — and two-step compositions
//! of them — for the description whose outputs best match. This is what
//! lets CopyCat "propose replacement sources if a source is down, too
//! slow, or does not provide a complete set of results".

use std::fmt;
use std::sync::Arc;

/// Shared evaluator: maps an input tuple to an output tuple, or `None`
/// when the source has no answer.
pub type SourceFn = Arc<dyn Fn(&[String]) -> Option<Vec<String>> + Send + Sync>;

/// A callable description of a known source.
#[derive(Clone)]
pub struct KnownFunction {
    /// Unique name, e.g. `geocode` or `zip_lookup`.
    pub name: String,
    /// Number of input fields.
    pub arity_in: usize,
    /// Number of output fields.
    pub arity_out: usize,
    /// The evaluator.
    pub eval: SourceFn,
}

impl fmt::Debug for KnownFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KnownFunction({} : {}→{})", self.name, self.arity_in, self.arity_out)
    }
}

impl KnownFunction {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        arity_in: usize,
        arity_out: usize,
        eval: impl Fn(&[String]) -> Option<Vec<String>> + Send + Sync + 'static,
    ) -> Self {
        Self { name: name.into(), arity_in, arity_out, eval: Arc::new(eval) }
    }
}

/// One observed input/output pair from the source being described.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoExample {
    /// Input tuple.
    pub inputs: Vec<String>,
    /// Observed output tuple.
    pub outputs: Vec<String>,
}

/// A candidate description of a new source in terms of known functions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDescription {
    /// Human-readable expression, e.g. `geocode` or `latlon ∘ zip_lookup`.
    pub expression: String,
    /// Names of the known functions used (outermost last).
    pub components: Vec<String>,
    /// Mean per-field output similarity over the examples, in `[0, 1]`.
    pub similarity: f64,
    /// Fraction of examples the description produced any output for.
    pub coverage: f64,
}

/// Library of known source functions plus the description search.
#[derive(Debug, Default, Clone)]
pub struct FunctionLearner {
    known: Vec<KnownFunction>,
}

impl FunctionLearner {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a known function.
    pub fn register(&mut self, f: KnownFunction) {
        self.known.push(f);
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Rank candidate descriptions of a new source given observed I/O
    /// examples. Candidates include every arity-compatible known function
    /// and every two-step composition `g ∘ f` (feed `f`'s output to `g`).
    /// Ranked by `similarity * coverage`, descending; zero-scores dropped.
    pub fn describe(&self, examples: &[IoExample]) -> Vec<SourceDescription> {
        let Some(first) = examples.first() else {
            return Vec::new();
        };
        let (ain, aout) = (first.inputs.len(), first.outputs.len());
        let mut out = Vec::new();

        for f in &self.known {
            if f.arity_in == ain && f.arity_out == aout {
                let eval = |inp: &[String]| (f.eval)(inp);
                if let Some(desc) = score(examples, &eval) {
                    out.push(SourceDescription {
                        expression: f.name.clone(),
                        components: vec![f.name.clone()],
                        similarity: desc.0,
                        coverage: desc.1,
                    });
                }
            }
            for g in &self.known {
                if f.arity_in == ain && g.arity_in == f.arity_out && g.arity_out == aout {
                    let eval = |inp: &[String]| (f.eval)(inp).and_then(|mid| (g.eval)(&mid));
                    if let Some(desc) = score(examples, &eval) {
                        out.push(SourceDescription {
                            expression: format!("{} ∘ {}", g.name, f.name),
                            components: vec![f.name.clone(), g.name.clone()],
                            similarity: desc.0,
                            coverage: desc.1,
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            let ka = a.similarity * a.coverage;
            let kb = b.similarity * b.coverage;
            kb.partial_cmp(&ka)
                .expect("finite")
                // Prefer simpler descriptions on ties, then names.
                .then_with(|| a.components.len().cmp(&b.components.len()))
                .then_with(|| a.expression.cmp(&b.expression))
        });
        out
    }
}

/// Mean field similarity and coverage of an evaluator over the examples;
/// `None` when the combined score is zero.
fn score(
    examples: &[IoExample],
    eval: &dyn Fn(&[String]) -> Option<Vec<String>>,
) -> Option<(f64, f64)> {
    let mut sims = Vec::new();
    let mut answered = 0usize;
    for ex in examples {
        if let Some(got) = eval(&ex.inputs) {
            answered += 1;
            sims.push(tuple_similarity(&got, &ex.outputs));
        }
    }
    if answered == 0 {
        return None;
    }
    let similarity = sims.iter().sum::<f64>() / sims.len() as f64;
    let coverage = answered as f64 / examples.len() as f64;
    if similarity * coverage == 0.0 {
        None
    } else {
        Some((similarity, coverage))
    }
}

/// Fraction of aligned fields that match, where a field matches on
/// normalized string equality or (for numeric fields) near-equality —
/// geocoders legitimately disagree in the 4th decimal.
fn tuple_similarity(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() || a.len() != b.len() {
        return 0.0;
    }
    let hits = a
        .iter()
        .zip(b.iter())
        .filter(|(x, y)| field_eq(x, y))
        .count();
    hits as f64 / a.len() as f64
}

fn field_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.trim(), b.trim());
    if a.eq_ignore_ascii_case(b) {
        return true;
    }
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => (x - y).abs() <= 1e-3 * x.abs().max(y.abs()).max(1.0),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn library() -> FunctionLearner {
        let mut fl = FunctionLearner::new();
        // city -> zip
        fl.register(KnownFunction::new("zip_of_city", 1, 1, |inp| {
            match inp[0].as_str() {
                "Margate" => Some(vec!["33063".into()]),
                "Tamarac" => Some(vec!["33321".into()]),
                _ => None,
            }
        }));
        // zip -> lat,lon
        fl.register(KnownFunction::new("latlon_of_zip", 1, 2, |inp| {
            match inp[0].as_str() {
                "33063" => Some(vec!["26.2446".into(), "-80.2064".into()]),
                "33321" => Some(vec!["26.2123".into(), "-80.2701".into()]),
                _ => None,
            }
        }));
        // city -> lat,lon (a direct geocoder)
        fl.register(KnownFunction::new("geocode_city", 1, 2, |inp| {
            match inp[0].as_str() {
                "Margate" => Some(vec!["26.2446".into(), "-80.2064".into()]),
                _ => None,
            }
        }));
        fl
    }

    #[test]
    fn identifies_direct_equivalent() {
        let fl = library();
        let examples = vec![
            IoExample { inputs: v(&["Margate"]), outputs: v(&["33063"]) },
            IoExample { inputs: v(&["Tamarac"]), outputs: v(&["33321"]) },
        ];
        let ranked = fl.describe(&examples);
        assert_eq!(ranked[0].expression, "zip_of_city");
        assert!((ranked[0].similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identifies_composition() {
        let fl = library();
        // New source maps city -> lat,lon. The composition
        // latlon_of_zip ∘ zip_of_city explains BOTH examples, while the
        // direct geocoder only covers Margate.
        let examples = vec![
            IoExample { inputs: v(&["Margate"]), outputs: v(&["26.2446", "-80.2064"]) },
            IoExample { inputs: v(&["Tamarac"]), outputs: v(&["26.2123", "-80.2701"]) },
        ];
        let ranked = fl.describe(&examples);
        assert_eq!(ranked[0].expression, "latlon_of_zip ∘ zip_of_city");
        assert!((ranked[0].coverage - 1.0).abs() < 1e-9);
        // The partial direct geocoder still appears, with lower coverage.
        assert!(ranked.iter().any(|d| d.expression == "geocode_city"));
    }

    #[test]
    fn numeric_tolerance() {
        assert!(field_eq("26.2446", "26.24461"));
        assert!(!field_eq("26.2446", "27.2446"));
        assert!(field_eq(" FL ", "fl"));
    }

    #[test]
    fn no_candidates_for_uncovered_source() {
        let fl = library();
        let examples = vec![IoExample { inputs: v(&["Anchorage"]), outputs: v(&["99501"]) }];
        assert!(fl.describe(&examples).is_empty());
    }

    #[test]
    fn empty_examples_empty_result() {
        assert!(library().describe(&[]).is_empty());
    }

    #[test]
    fn wrong_output_is_penalized() {
        let fl = library();
        let examples = vec![
            IoExample { inputs: v(&["Margate"]), outputs: v(&["99999"]) },
            IoExample { inputs: v(&["Tamarac"]), outputs: v(&["33321"]) },
        ];
        let ranked = fl.describe(&examples);
        let d = ranked.iter().find(|d| d.expression == "zip_of_city").unwrap();
        assert!((d.similarity - 0.5).abs() < 1e-9);
    }
}
