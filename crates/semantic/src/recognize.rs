//! Recognition phase: does a column of values look like a known type?
//!
//! Per §3.2, a match need not be perfect: "the system evaluates whether
//! the distribution of matched patterns is statistically similar to the
//! matches on the training data". We score a candidate type by combining
//! *coverage* (fraction of values matching any pattern) with the
//! similarity between the column's pattern-match distribution and the
//! type's training distribution (1 − total-variation distance).

use crate::pattern::PatternSet;

/// Score breakdown for one (type, column) recognition test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecognitionScore {
    /// Fraction of column values matching any pattern of the type.
    pub coverage: f64,
    /// 1 − total-variation distance between training and column
    /// distributions over patterns (1.0 = identical distributions).
    pub similarity: f64,
    /// Combined score in `[0, 1]`: `coverage * similarity`.
    pub score: f64,
}

/// Score a column of values against one type's pattern set.
pub fn recognize<S: AsRef<str>>(set: &PatternSet, values: &[S]) -> RecognitionScore {
    if values.is_empty() || set.patterns().is_empty() {
        return RecognitionScore { coverage: 0.0, similarity: 0.0, score: 0.0 };
    }
    let coverage = set.coverage(values);
    // Training distribution, extended with a zero "unmatched" bucket so the
    // two vectors align.
    let mut train = set.training_distribution();
    train.push(0.0);
    let observed = set.match_distribution(values);
    debug_assert_eq!(train.len(), observed.len());
    let tv: f64 = train
        .iter()
        .zip(observed.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    let similarity = 1.0 - tv;
    RecognitionScore { coverage, similarity, score: coverage * similarity }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_distribution_scores_high() {
        let train: Vec<String> = (0..30).map(|i| format!("3306{}", i % 10)).collect();
        let set = PatternSet::learn(&train);
        let col: Vec<String> = (0..10).map(|i| format!("3344{i}")).collect();
        let s = recognize(&set, &col);
        assert!(s.score > 0.8, "zips should be recognized as zips: {s:?}");
    }

    #[test]
    fn disjoint_shapes_score_zero() {
        let set = PatternSet::learn(&["33063", "33441", "33302"]);
        let s = recognize(&set, &["Coconut Creek", "Margate"]);
        assert_eq!(s.coverage, 0.0);
        assert_eq!(s.score, 0.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let train: Vec<String> = (0..20).map(|i| format!("3306{}", i % 10)).collect();
        let set = PatternSet::learn(&train);
        let s = recognize(&set, &["33063", "Margate", "33441", "hello"]);
        assert!(s.coverage > 0.4 && s.coverage < 0.6);
        assert!(s.score > 0.0 && s.score < 0.8);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let set = PatternSet::learn(&["33063"]);
        let empty: [&str; 0] = [];
        assert_eq!(recognize(&set, &empty).score, 0.0);
        let empty_set = PatternSet::new();
        assert_eq!(recognize(&empty_set, &["x"]).score, 0.0);
    }

    #[test]
    fn score_bounded_zero_one() {
        let set = PatternSet::learn(&["a 1", "b 2", "cc 33"]);
        for col in [vec!["a 1"], vec!["zzz"], vec!["a 1", "zzz"]] {
            let s = recognize(&set, &col);
            assert!((0.0..=1.0).contains(&s.score), "{s:?}");
            assert!((0.0..=1.0).contains(&s.similarity));
        }
    }
}
