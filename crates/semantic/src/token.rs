//! Value tokenization and the token-generalization lattice.
//!
//! A data value like `4213 Palmetto Ave` tokenizes into
//! `[Digits(4), CapWord, CapWord]`-classed tokens. Classes form a small
//! lattice ordered by generality; pattern learning walks *up* this lattice
//! only as far as the examples force it, mirroring the "rich hypothesis
//! language that includes both the constants in the data fields and
//! generalized tokens" of §3.2.

use std::fmt;

/// Generalized description of one token. Ordered roughly by generality;
/// [`TokenClass::generalize`] computes the least upper bound of two classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenClass {
    /// Digits of a specific length, e.g. `Digits(3)` = "3-digit number".
    Digits(u8),
    /// Digits of any length.
    AnyDigits,
    /// Capitalized word (`Creek`).
    CapWord,
    /// All-uppercase word (`FEMA`, `FL`).
    UpperWord,
    /// All-lowercase word (`of`).
    LowerWord,
    /// Mixed-case or other alphabetic word (`McArthur`).
    MixedWord,
    /// Alphanumeric blend (`A1B2`).
    AlphaNum,
    /// A single punctuation/symbol character (the char is kept because
    /// separators like `-` vs `/` are highly discriminative for types).
    Punct(char),
    /// Anything.
    Any,
}

impl TokenClass {
    /// The most specific class describing `text`.
    pub fn of(text: &str) -> TokenClass {
        debug_assert!(!text.is_empty(), "tokens are non-empty by construction");
        let mut has_alpha = false;
        let mut has_digit = false;
        for c in text.chars() {
            if c.is_alphabetic() {
                has_alpha = true;
            } else if c.is_ascii_digit() {
                has_digit = true;
            } else {
                // Punctuation tokens are single chars by tokenizer rule.
                return TokenClass::Punct(c);
            }
        }
        match (has_alpha, has_digit) {
            (true, true) => TokenClass::AlphaNum,
            (false, true) => {
                let n = text.len();
                if n <= u8::MAX as usize {
                    TokenClass::Digits(n as u8)
                } else {
                    TokenClass::AnyDigits
                }
            }
            (true, false) => {
                let mut chars = text.chars();
                let first_upper = chars.next().is_some_and(|c| c.is_uppercase());
                let rest_lower = chars.clone().all(|c| c.is_lowercase());
                let rest_upper = chars.all(|c| c.is_uppercase());
                let multi = text.chars().count() > 1;
                if first_upper && multi && rest_upper {
                    TokenClass::UpperWord
                } else if first_upper && rest_lower {
                    // Single capital letter or Capitalized-then-lowercase.
                    TokenClass::CapWord
                } else if !first_upper && rest_lower {
                    TokenClass::LowerWord
                } else {
                    TokenClass::MixedWord
                }
            }
            (false, false) => TokenClass::Any,
        }
    }

    /// Least upper bound in the generalization lattice: the most specific
    /// class matching everything either operand matches.
    pub fn generalize(self, other: TokenClass) -> TokenClass {
        use TokenClass::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Digits(_), Digits(_)) | (Digits(_), AnyDigits) | (AnyDigits, Digits(_)) => AnyDigits,
            (CapWord | UpperWord | LowerWord | MixedWord, CapWord | UpperWord | LowerWord | MixedWord) => {
                MixedWord
            }
            // AlphaNum matches any all-alphanumeric token, so it is the lub
            // of word shapes, digit shapes, and mixed blends.
            (
                AlphaNum | CapWord | UpperWord | LowerWord | MixedWord | Digits(_) | AnyDigits,
                AlphaNum | CapWord | UpperWord | LowerWord | MixedWord | Digits(_) | AnyDigits,
            ) => AlphaNum,
            _ => Any,
        }
    }

    /// Whether this class matches a concrete token text.
    pub fn matches(self, text: &str) -> bool {
        use TokenClass::*;
        match self {
            Any => true,
            Punct(c) => text.chars().eq(std::iter::once(c)),
            Digits(n) => {
                text.len() == n as usize && text.chars().all(|c| c.is_ascii_digit())
            }
            AnyDigits => !text.is_empty() && text.chars().all(|c| c.is_ascii_digit()),
            // Superclass of every word and digit shape: any non-empty
            // all-alphanumeric token.
            AlphaNum => !text.is_empty() && text.chars().all(|c| c.is_alphanumeric()),
            CapWord | UpperWord | LowerWord | MixedWord => {
                if !text.chars().all(|c| c.is_alphabetic()) || text.is_empty() {
                    return false;
                }
                TokenClass::of(text) == self
                    || matches!(self, MixedWord) // MixedWord subsumes all word shapes
            }
        }
    }
}

impl copycat_util::json::ToJson for TokenClass {
    /// Unit variants serialize as their name; `Digits(n)` and
    /// `Punct(c)` as single-field objects.
    fn to_json(&self) -> copycat_util::Json {
        use copycat_util::Json;
        match self {
            TokenClass::Digits(n) => {
                Json::obj(vec![("Digits".into(), Json::Num(*n as f64))])
            }
            TokenClass::Punct(c) => {
                Json::obj(vec![("Punct".into(), Json::str(c.to_string()))])
            }
            TokenClass::AnyDigits => Json::str("AnyDigits"),
            TokenClass::CapWord => Json::str("CapWord"),
            TokenClass::UpperWord => Json::str("UpperWord"),
            TokenClass::LowerWord => Json::str("LowerWord"),
            TokenClass::MixedWord => Json::str("MixedWord"),
            TokenClass::AlphaNum => Json::str("AlphaNum"),
            TokenClass::Any => Json::str("Any"),
        }
    }
}

impl copycat_util::json::FromJson for TokenClass {
    fn from_json(j: &copycat_util::Json) -> Result<Self, copycat_util::JsonError> {
        use copycat_util::JsonError;
        if let Some(name) = j.as_str() {
            return match name {
                "AnyDigits" => Ok(TokenClass::AnyDigits),
                "CapWord" => Ok(TokenClass::CapWord),
                "UpperWord" => Ok(TokenClass::UpperWord),
                "LowerWord" => Ok(TokenClass::LowerWord),
                "MixedWord" => Ok(TokenClass::MixedWord),
                "AlphaNum" => Ok(TokenClass::AlphaNum),
                "Any" => Ok(TokenClass::Any),
                other => Err(JsonError::new(format!("unknown token class {other:?}"))),
            };
        }
        if let Some(n) = j.get("Digits") {
            return Ok(TokenClass::Digits(u8::from_json(n)?));
        }
        if let Some(c) = j.get("Punct") {
            let s = c
                .as_str()
                .ok_or_else(|| JsonError::expected("single-char string", c))?;
            let mut chars = s.chars();
            match (chars.next(), chars.next()) {
                (Some(ch), None) => return Ok(TokenClass::Punct(ch)),
                _ => return Err(JsonError::new(format!("Punct needs one char, got {s:?}"))),
            }
        }
        Err(JsonError::expected("token class", j))
    }
}

impl fmt::Display for TokenClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenClass::Digits(n) => write!(f, "{n}DIGIT"),
            TokenClass::AnyDigits => write!(f, "NUM"),
            TokenClass::CapWord => write!(f, "Capword"),
            TokenClass::UpperWord => write!(f, "UPPER"),
            TokenClass::LowerWord => write!(f, "lower"),
            TokenClass::MixedWord => write!(f, "Word"),
            TokenClass::AlphaNum => write!(f, "ALNUM"),
            TokenClass::Punct(c) => write!(f, "'{c}'"),
            TokenClass::Any => write!(f, "ANY"),
        }
    }
}

/// One token of a data value: its text and most-specific class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValueToken {
    /// The token text as it appeared.
    pub text: String,
    /// Most specific [`TokenClass`] for `text`.
    pub class: TokenClass,
}

/// Split a value into tokens: maximal runs of alphanumerics, plus single
/// punctuation characters. Whitespace separates but is not kept.
pub fn tokenize_value(value: &str) -> Vec<ValueToken> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<ValueToken>| {
        if !cur.is_empty() {
            let text = std::mem::take(cur);
            let class = TokenClass::of(&text);
            out.push(ValueToken { text, class });
        }
    };
    for c in value.chars() {
        if c.is_alphanumeric() {
            cur.push(c);
        } else {
            flush(&mut cur, &mut out);
            if !c.is_whitespace() {
                out.push(ValueToken {
                    text: c.to_string(),
                    class: TokenClass::Punct(c),
                });
            }
        }
    }
    flush(&mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_of_common_shapes() {
        assert_eq!(TokenClass::of("Creek"), TokenClass::CapWord);
        assert_eq!(TokenClass::of("FEMA"), TokenClass::UpperWord);
        assert_eq!(TokenClass::of("of"), TokenClass::LowerWord);
        assert_eq!(TokenClass::of("McArthur"), TokenClass::MixedWord);
        assert_eq!(TokenClass::of("123"), TokenClass::Digits(3));
        assert_eq!(TokenClass::of("A1"), TokenClass::AlphaNum);
        assert_eq!(TokenClass::of("-"), TokenClass::Punct('-'));
        assert_eq!(TokenClass::of("A"), TokenClass::CapWord);
    }

    #[test]
    fn tokenize_address() {
        let toks = tokenize_value("4213 Palmetto Ave");
        let classes: Vec<_> = toks.iter().map(|t| t.class).collect();
        assert_eq!(
            classes,
            vec![TokenClass::Digits(4), TokenClass::CapWord, TokenClass::CapWord]
        );
    }

    #[test]
    fn tokenize_phone_keeps_punct() {
        let toks = tokenize_value("(954) 555-0142");
        let shapes: Vec<String> = toks.iter().map(|t| t.class.to_string()).collect();
        assert_eq!(shapes, vec!["'('", "3DIGIT", "')'", "3DIGIT", "'-'", "4DIGIT"]);
    }

    #[test]
    fn generalize_is_lub() {
        use TokenClass::*;
        assert_eq!(Digits(3).generalize(Digits(5)), AnyDigits);
        assert_eq!(CapWord.generalize(UpperWord), MixedWord);
        assert_eq!(CapWord.generalize(Digits(2)), AlphaNum);
        assert_eq!(CapWord.generalize(Punct('-')), Any);
        assert_eq!(Punct('-').generalize(Punct('-')), Punct('-'));
        assert_eq!(Punct('-').generalize(Punct('/')), Any);
    }

    #[test]
    fn generalize_commutative_and_idempotent() {
        use TokenClass::*;
        let all = [
            Digits(3),
            AnyDigits,
            CapWord,
            UpperWord,
            LowerWord,
            MixedWord,
            AlphaNum,
            Punct('-'),
            Any,
        ];
        for &a in &all {
            assert_eq!(a.generalize(a), a);
            for &b in &all {
                assert_eq!(a.generalize(b), b.generalize(a));
            }
        }
    }

    #[test]
    fn matches_respects_generalization() {
        // Whatever class a token gets, that class must match the token, and
        // so must any generalization of it.
        for text in ["Creek", "FL", "of", "123", "A1", "-", "McArthur"] {
            let c = TokenClass::of(text);
            assert!(c.matches(text), "{c:?} should match {text:?}");
            assert!(c.generalize(TokenClass::Any).matches(text));
        }
    }

    #[test]
    fn mixedword_subsumes_word_shapes() {
        assert!(TokenClass::MixedWord.matches("Creek"));
        assert!(TokenClass::MixedWord.matches("FEMA"));
        assert!(TokenClass::MixedWord.matches("of"));
        assert!(!TokenClass::MixedWord.matches("123"));
    }
}
