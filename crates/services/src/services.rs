//! The simulated service implementations.

use crate::world::World;
use copycat_query::{Field, Schema, Service, Signature, Value};
use std::sync::Arc;

fn sig(inputs: Vec<Field>, outputs: Vec<Field>) -> Signature {
    Signature { inputs: Schema::new(inputs), outputs: Schema::new(outputs) }
}

/// `(street, city) → zip` — Figure 2's Zipcode Resolver.
pub struct ZipResolver {
    world: Arc<World>,
    signature: Signature,
}

impl ZipResolver {
    /// Build over a world.
    pub fn new(world: Arc<World>) -> Self {
        let signature = sig(
            vec![
                Field::typed("street", "PR-Street"),
                Field::typed("city", "PR-City"),
            ],
            vec![Field::typed("Zip", "PR-Zip")],
        );
        Self { world, signature }
    }
}

impl Service for ZipResolver {
    fn name(&self) -> &str {
        "zip_resolver"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let (street, city) = (inputs[0].as_text(), inputs[1].as_text());
        match self.world.find_street(&street, &city) {
            Some(s) => vec![vec![Value::str(s.zip.clone())]],
            None => vec![],
        }
    }
}

/// `(street, city) → (lat, lon)`.
pub struct Geocoder {
    world: Arc<World>,
    signature: Signature,
}

impl Geocoder {
    /// Build over a world.
    pub fn new(world: Arc<World>) -> Self {
        let signature = sig(
            vec![
                Field::typed("street", "PR-Street"),
                Field::typed("city", "PR-City"),
            ],
            vec![
                Field::typed("Lat", "PR-LatLon"),
                Field::typed("Lon", "PR-LatLon"),
            ],
        );
        Self { world, signature }
    }
}

impl Service for Geocoder {
    fn name(&self) -> &str {
        "geocoder"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let (street, city) = (inputs[0].as_text(), inputs[1].as_text());
        match self.world.find_street(&street, &city) {
            Some(s) => vec![vec![
                Value::Num((s.lat * 1e4).round() / 1e4),
                Value::Num((s.lon * 1e4).round() / 1e4),
            ]],
            None => {
                // Fall back to the city centroid, as real geocoders do.
                self.world
                    .cities
                    .iter()
                    .find(|c| c.name.eq_ignore_ascii_case(city.trim()))
                    .map(|c| {
                        vec![vec![
                            Value::Num((c.lat * 1e4).round() / 1e4),
                            Value::Num((c.lon * 1e4).round() / 1e4),
                        ]]
                    })
                    .unwrap_or_default()
            }
        }
    }

    fn cost(&self) -> f64 {
        1.5
    }
}

/// `(venue name) → (street, city)` — "copy the first shelter's name into
/// Google Maps to get its full address" (Example 1). Substring queries may
/// return several venues: the ambiguity CopyCat surfaces to the user.
pub struct AddressResolver {
    world: Arc<World>,
    signature: Signature,
}

impl AddressResolver {
    /// Build over a world.
    pub fn new(world: Arc<World>) -> Self {
        let signature = sig(
            vec![Field::new("name")],
            vec![
                Field::typed("Street", "PR-Street"),
                Field::typed("City", "PR-City"),
            ],
        );
        Self { world, signature }
    }
}

impl Service for AddressResolver {
    fn name(&self) -> &str {
        "address_resolver"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        self.world
            .find_venues(&inputs[0].as_text())
            .into_iter()
            .map(|v| {
                let s = self.world.venue_street(v);
                vec![
                    Value::str(s.address.clone()),
                    Value::str(self.world.street_city(s).name.clone()),
                ]
            })
            .collect()
    }

    fn cost(&self) -> f64 {
        1.5
    }
}

/// `(phone) → (person, venue)` — §2.3: "a phone number might be looked up
/// in a reverse directory to find a person".
pub struct ReversePhone {
    world: Arc<World>,
    signature: Signature,
}

impl ReversePhone {
    /// Build over a world.
    pub fn new(world: Arc<World>) -> Self {
        let signature = sig(
            vec![Field::typed("phone", "PR-Phone")],
            vec![
                Field::typed("Person", "PR-Person"),
                Field::new("Venue"),
            ],
        );
        Self { world, signature }
    }
}

impl Service for ReversePhone {
    fn name(&self) -> &str {
        "reverse_phone"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let phone = inputs[0].as_text();
        self.world
            .people
            .iter()
            .filter(|p| p.phone == phone.trim())
            .map(|p| {
                vec![
                    Value::str(p.name.clone()),
                    Value::str(self.world.venues[p.venue].name.clone()),
                ]
            })
            .collect()
    }
}

/// `(amount, from, to) → amount` with a fixed 2008-ish rate table.
pub struct CurrencyConverter {
    signature: Signature,
}

impl CurrencyConverter {
    /// Construct.
    pub fn new() -> Self {
        Self {
            signature: sig(
                vec![Field::new("amount"), Field::new("from"), Field::new("to")],
                vec![Field::typed("Converted", "PR-Currency")],
            ),
        }
    }

    fn usd_rate(code: &str) -> Option<f64> {
        // Units of USD per 1 unit of the currency.
        match code.to_uppercase().as_str() {
            "USD" => Some(1.0),
            "EUR" => Some(1.47),
            "GBP" => Some(1.85),
            "JPY" => Some(0.0095),
            "CAD" => Some(0.94),
            "MXN" => Some(0.091),
            _ => None,
        }
    }
}

impl Default for CurrencyConverter {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for CurrencyConverter {
    fn name(&self) -> &str {
        "currency_converter"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let amount = inputs[0].as_num();
        let from = Self::usd_rate(&inputs[1].as_text());
        let to = Self::usd_rate(&inputs[2].as_text());
        match (amount, from, to) {
            (Some(a), Some(f), Some(t)) if t != 0.0 => {
                let out = (a * f / t * 100.0).round() / 100.0;
                vec![vec![Value::Num(out)]]
            }
            _ => vec![],
        }
    }
}

/// `(value, from_unit, to_unit) → value` for length/mass/temperature.
pub struct UnitConverter {
    signature: Signature,
}

impl UnitConverter {
    /// Construct.
    pub fn new() -> Self {
        Self {
            signature: sig(
                vec![Field::new("value"), Field::new("from"), Field::new("to")],
                vec![Field::new("Converted")],
            ),
        }
    }

    /// (scale, offset) mapping a unit into its base unit.
    fn factor(unit: &str) -> Option<(f64, f64, &'static str)> {
        match unit.to_lowercase().as_str() {
            "m" => Some((1.0, 0.0, "length")),
            "km" => Some((1000.0, 0.0, "length")),
            "mi" | "mile" | "miles" => Some((1609.344, 0.0, "length")),
            "ft" | "feet" => Some((0.3048, 0.0, "length")),
            "kg" => Some((1.0, 0.0, "mass")),
            "lb" | "lbs" => Some((0.453_592_37, 0.0, "mass")),
            "c" | "celsius" => Some((1.0, 0.0, "temp")),
            "f" | "fahrenheit" => Some((5.0 / 9.0, -32.0 * 5.0 / 9.0, "temp")),
            "k" | "kelvin" => Some((1.0, -273.15, "temp")),
            _ => None,
        }
    }
}

impl Default for UnitConverter {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for UnitConverter {
    fn name(&self) -> &str {
        "unit_converter"
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let value = inputs[0].as_num();
        let from = Self::factor(&inputs[1].as_text());
        let to = Self::factor(&inputs[2].as_text());
        match (value, from, to) {
            (Some(v), Some((fs, fo, fd)), Some((ts, to_off, td))) if fd == td => {
                let base = v * fs + fo;
                let out = (base - to_off) / ts;
                vec![vec![Value::Num((out * 1e6).round() / 1e6)]]
            }
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> Arc<World> {
        Arc::new(World::generate(&WorldConfig::default()))
    }

    #[test]
    fn zip_resolver_agrees_with_world() {
        let w = world();
        let svc = ZipResolver::new(Arc::clone(&w));
        let v = &w.venues[0];
        let s = w.venue_street(v);
        let city = w.street_city(s);
        let got = svc.call(&[Value::str(s.address.clone()), Value::str(city.name.clone())]);
        assert_eq!(got, vec![vec![Value::str(s.zip.clone())]]);
        assert!(svc.call(&[Value::str("1 Nowhere"), Value::str("Atlantis")]).is_empty());
    }

    #[test]
    fn geocoder_falls_back_to_city_centroid() {
        let w = world();
        let svc = Geocoder::new(Arc::clone(&w));
        let city = &w.cities[0];
        let got = svc.call(&[Value::str("1 Nowhere St"), Value::str(city.name.clone())]);
        assert_eq!(got.len(), 1);
        let lat = got[0][0].as_num().unwrap();
        assert!((lat - city.lat).abs() < 0.001);
    }

    #[test]
    fn address_resolver_handles_ambiguity() {
        let w = world();
        let svc = AddressResolver::new(Arc::clone(&w));
        let v = &w.venues[0];
        // Exact name: at least one answer whose street is the venue's.
        let got = svc.call(&[Value::str(v.name.clone())]);
        assert!(!got.is_empty());
        let street = &w.venue_street(v).address;
        assert!(got.iter().any(|row| row[0].as_text() == *street));
        // City-only query (ambiguous) may return several venues.
        let city = &w.street_city(w.venue_street(v)).name;
        let many = svc.call(&[Value::str(city.clone())]);
        assert!(!many.is_empty());
    }

    #[test]
    fn reverse_phone_finds_people() {
        let w = world();
        let svc = ReversePhone::new(Arc::clone(&w));
        let p = &w.people[0];
        let got = svc.call(&[Value::str(p.phone.clone())]);
        assert_eq!(got[0][0], Value::str(p.name.clone()));
        assert!(svc.call(&[Value::str("(000) 000-0000")]).is_empty());
    }

    #[test]
    fn currency_conversion_roundtrip() {
        let svc = CurrencyConverter::new();
        let out = svc.call(&[Value::Num(100.0), Value::str("EUR"), Value::str("USD")]);
        assert_eq!(out, vec![vec![Value::Num(147.0)]]);
        let back = svc.call(&[Value::Num(147.0), Value::str("USD"), Value::str("EUR")]);
        assert_eq!(back, vec![vec![Value::Num(100.0)]]);
        assert!(svc.call(&[Value::Num(1.0), Value::str("XXX"), Value::str("USD")]).is_empty());
    }

    #[test]
    fn unit_conversion() {
        let svc = UnitConverter::new();
        let out = svc.call(&[Value::Num(1.0), Value::str("mi"), Value::str("km")]);
        assert!((out[0][0].as_num().unwrap() - 1.609344).abs() < 1e-6);
        let temp = svc.call(&[Value::Num(212.0), Value::str("F"), Value::str("C")]);
        assert!((temp[0][0].as_num().unwrap() - 100.0).abs() < 1e-9);
        // Cross-dimension conversions fail.
        assert!(svc.call(&[Value::Num(1.0), Value::str("kg"), Value::str("km")]).is_empty());
    }
}
