//! Catalog wiring: register the predefined services.
//!
//! §4: "Predefined services include record-linking functions, address
//! resolution, geocoding, and currency and unit conversion." (Record
//! linking is an operator rather than a catalog service in our build; it
//! lives in `copycat-linkage` and is invoked by the integration layer.)

use crate::services::{
    AddressResolver, CurrencyConverter, Geocoder, ReversePhone, UnitConverter, ZipResolver,
};
use crate::world::World;
use copycat_query::Catalog;
use std::sync::Arc;

/// Register every predefined service over `world` into `catalog`.
/// Returns the service names registered.
pub fn register_all(catalog: &Catalog, world: &Arc<World>) -> Vec<&'static str> {
    catalog.add_service(Arc::new(ZipResolver::new(Arc::clone(world))));
    catalog.add_service(Arc::new(Geocoder::new(Arc::clone(world))));
    catalog.add_service(Arc::new(AddressResolver::new(Arc::clone(world))));
    catalog.add_service(Arc::new(ReversePhone::new(Arc::clone(world))));
    catalog.add_service(Arc::new(CurrencyConverter::new()));
    catalog.add_service(Arc::new(UnitConverter::new()));
    vec![
        "zip_resolver",
        "geocoder",
        "address_resolver",
        "reverse_phone",
        "currency_converter",
        "unit_converter",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_services() {
        let catalog = Catalog::new();
        let world = Arc::new(World::default_world());
        let names = register_all(&catalog, &world);
        for n in names {
            assert!(catalog.service(n).is_some(), "{n} missing");
        }
        assert_eq!(catalog.service_names().len(), 6);
    }
}
