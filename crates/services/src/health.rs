//! Deterministic retry, backoff, and circuit breaking on virtual time.
//!
//! §3.2: the system should "propose replacement sources if a source is
//! down, too slow, or does not provide a complete set of results". This
//! module is the machinery that *notices*: a [`Resilient`] wrapper gives
//! every service a bounded retry policy with exponential backoff, and a
//! closed/open/half-open circuit breaker so a persistently failing
//! source stops being hammered and the engine can fail over to a
//! replacement instead.
//!
//! Everything here runs on a **virtual clock**: one tick per call
//! attempt, plus the backoff charged in virtual milliseconds. Nothing
//! sleeps and nothing reads wall time, so outcomes are a pure function
//! of the call sequence (reproducible tests, and the `wallclock` lint
//! stays clean with no new allowlist entries).

use crate::faults::{Flaky, SavedFlakyState};
use copycat_query::{CallOutcome, Service, ServiceError, Signature, Value};
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use copycat_util::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded-retry policy with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before retry `r` (1-based) is `base << (r-1)` ms…
    pub backoff_base_ms: u64,
    /// …clamped to this cap.
    pub backoff_cap_ms: u64,
    /// Consecutive failures that trip the breaker open.
    pub breaker_threshold: u32,
    /// Virtual ms the breaker stays open before a half-open probe.
    pub cooldown_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            breaker_threshold: 4,
            cooldown_ms: 400,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff before the given 1-based retry.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let shifted = self
            .backoff_base_ms
            .checked_shl(retry.saturating_sub(1))
            .unwrap_or(self.backoff_cap_ms);
        shifted.min(self.backoff_cap_ms)
    }
}

/// Circuit breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow through.
    Closed,
    /// Tripped: calls fast-fail `Unavailable` until the cooldown ends.
    Open,
    /// Cooldown elapsed: one probe call decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Inverse of [`as_str`](BreakerState::as_str).
    pub fn parse(s: &str) -> Option<BreakerState> {
        match s {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open),
            "half_open" => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Virtual clock reading when the breaker last opened.
    opened_at_ms: u64,
}

/// A point-in-time health snapshot of one [`Resilient`] service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Service name.
    pub service: String,
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Logical calls (not attempts).
    pub calls: u64,
    /// Logical calls that exhausted every attempt.
    pub failures: u64,
    /// Individual retry attempts beyond the first.
    pub retries: u64,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Calls fast-failed while the breaker was open.
    pub short_circuits: u64,
    /// failures / calls (0 when never called).
    pub observed_failure_rate: f64,
    /// Virtual milliseconds accrued by backoff.
    pub backoff_virtual_ms: u64,
}

/// The portable runtime state of one [`Resilient`] wrapper: breaker
/// machine, virtual clock, and every counter — plus the wrapped
/// [`Flaky`] probe's state when the inner service is one. This is what
/// a session snapshot must carry so a restore does *not* silently
/// forget a tripped breaker (and re-route to a dead service).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedServiceHealth {
    /// Service name (the restore key).
    pub service: String,
    /// Raw breaker state (not cooldown-resolved; the clock comes too).
    pub state: BreakerState,
    /// Consecutive terminal failures toward the trip threshold.
    pub consecutive_failures: u32,
    /// Virtual clock reading when the breaker last opened.
    pub opened_at_ms: u64,
    /// The virtual clock itself.
    pub clock_ms: u64,
    /// Logical calls.
    pub calls: u64,
    /// Exhausted logical calls.
    pub failures: u64,
    /// Retry attempts beyond the first.
    pub retries: u64,
    /// Breaker trips.
    pub trips: u64,
    /// Fast-fails while open.
    pub short_circuits: u64,
    /// Virtual ms accrued by backoff.
    pub backoff_ms: u64,
    /// The wrapped fault-injection probe's state, when the inner
    /// service is a [`Flaky`].
    pub flaky: Option<SavedFlakyState>,
}

impl ToJson for SavedServiceHealth {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("service".into(), self.service.to_json()),
            ("state".into(), Json::str(self.state.as_str())),
            ("consecutive_failures".into(), self.consecutive_failures.to_json()),
            ("opened_at_ms".into(), self.opened_at_ms.to_json()),
            ("clock_ms".into(), self.clock_ms.to_json()),
            ("calls".into(), self.calls.to_json()),
            ("failures".into(), self.failures.to_json()),
            ("retries".into(), self.retries.to_json()),
            ("trips".into(), self.trips.to_json()),
            ("short_circuits".into(), self.short_circuits.to_json()),
            ("backoff_ms".into(), self.backoff_ms.to_json()),
            ("flaky".into(), self.flaky.as_ref().map_or(Json::Null, ToJson::to_json)),
        ])
    }
}

impl FromJson for SavedServiceHealth {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let state_str = String::from_json(j.field("state")?)?;
        let state = BreakerState::parse(&state_str)
            .ok_or_else(|| JsonError::new(format!("unknown breaker state {state_str:?}")))?;
        Ok(SavedServiceHealth {
            service: String::from_json(j.field("service")?)?,
            state,
            consecutive_failures: u32::from_json(j.field("consecutive_failures")?)?,
            opened_at_ms: u64::from_json(j.field("opened_at_ms")?)?,
            clock_ms: u64::from_json(j.field("clock_ms")?)?,
            calls: u64::from_json(j.field("calls")?)?,
            failures: u64::from_json(j.field("failures")?)?,
            retries: u64::from_json(j.field("retries")?)?,
            trips: u64::from_json(j.field("trips")?)?,
            short_circuits: u64::from_json(j.field("short_circuits")?)?,
            backoff_ms: u64::from_json(j.field("backoff_ms")?)?,
            flaky: Option::from_json(j.field("flaky")?)?,
        })
    }
}

/// Wraps any service with deterministic retry + circuit breaking.
///
/// The wrapper keeps the inner service's name and signature — it *is*
/// that service as far as the catalog and the source graph care — but a
/// logical `try_call` may fan out into up to `max_attempts` inner
/// attempts, and trips the breaker after enough consecutive exhaustions.
pub struct Resilient {
    inner: Arc<dyn Service>,
    policy: RetryPolicy,
    breaker: Mutex<Breaker>,
    /// Virtual clock: ticks once per inner attempt, plus backoff ms.
    clock_ms: AtomicU64,
    calls: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
    trips: AtomicU64,
    short_circuits: AtomicU64,
    backoff_ms: AtomicU64,
}

impl Resilient {
    /// Wrap `inner` under `policy`.
    pub fn new(inner: Arc<dyn Service>, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            breaker: Mutex::new(Breaker {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ms: 0,
            }),
            clock_ms: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &Arc<dyn Service> {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Current breaker state (resolving an elapsed cooldown to
    /// `HalfOpen` without consuming the probe).
    pub fn breaker_state(&self) -> BreakerState {
        let b = self.breaker.lock();
        match b.state {
            BreakerState::Open if self.now_ms() >= b.opened_at_ms + self.policy.cooldown_ms => {
                BreakerState::HalfOpen
            }
            s => s,
        }
    }

    /// True when the breaker is open (calls are being short-circuited).
    pub fn is_tripped(&self) -> bool {
        self.breaker_state() == BreakerState::Open
    }

    /// Virtual milliseconds accrued by backoff alone (the inner
    /// service's own virtual latency is tracked by the inner wrapper).
    pub fn backoff_virtual_ms(&self) -> u64 {
        // relaxed: standalone stat counter, read after quiesce or under
        // the session lock that serializes operator execution.
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// Health snapshot for reports and the serve `stats` surface.
    pub fn snapshot(&self) -> HealthSnapshot {
        // relaxed: standalone stat counters, read for reporting only.
        let calls = self.calls.load(Ordering::Relaxed);
        let failures = self.failures.load(Ordering::Relaxed);
        HealthSnapshot {
            service: self.inner.name().to_string(),
            state: self.breaker_state(),
            calls,
            failures,
            retries: self.retries.load(Ordering::Relaxed), // relaxed: reporting-only stat
            trips: self.trips.load(Ordering::Relaxed), // relaxed: reporting-only stat
            short_circuits: self.short_circuits.load(Ordering::Relaxed), // relaxed: reporting-only stat
            observed_failure_rate: if calls == 0 { 0.0 } else { failures as f64 / calls as f64 },
            backoff_virtual_ms: self.backoff_ms.load(Ordering::Relaxed), // relaxed: reporting-only stat
        }
    }

    /// Capture the full runtime state for session persistence (unlike
    /// [`snapshot`](Resilient::snapshot), which is a cooked report —
    /// this is the raw machine, restorable bit-for-bit).
    pub fn saved_health(&self) -> SavedServiceHealth {
        let b = self.breaker.lock();
        SavedServiceHealth {
            service: self.inner.name().to_string(),
            state: b.state,
            consecutive_failures: b.consecutive_failures,
            opened_at_ms: b.opened_at_ms,
            // relaxed: captured at snapshot time under the session lock
            // that serializes operator execution.
            clock_ms: self.clock_ms.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            failures: self.failures.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            retries: self.retries.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            trips: self.trips.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            short_circuits: self.short_circuits.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            backoff_ms: self.backoff_ms.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            flaky: self
                .inner
                .as_any()
                .and_then(|a| a.downcast_ref::<Flaky>())
                .map(Flaky::saved_state),
        }
    }

    /// Restore a [`saved_health`](Resilient::saved_health) capture into
    /// this wrapper (and into the wrapped [`Flaky`], when both sides
    /// have one). A tripped breaker stays tripped, mid-cooldown, at the
    /// exact virtual-clock position it was saved at.
    pub fn restore_health(&self, saved: &SavedServiceHealth) {
        {
            let mut b = self.breaker.lock();
            b.state = saved.state;
            b.consecutive_failures = saved.consecutive_failures;
            b.opened_at_ms = saved.opened_at_ms;
        }
        // relaxed: restore happens before the session serves traffic.
        self.clock_ms.store(saved.clock_ms, Ordering::Relaxed);
        self.calls.store(saved.calls, Ordering::Relaxed);
        self.failures.store(saved.failures, Ordering::Relaxed); // relaxed: pre-traffic restore
        self.retries.store(saved.retries, Ordering::Relaxed); // relaxed: pre-traffic restore
        self.trips.store(saved.trips, Ordering::Relaxed); // relaxed: pre-traffic restore
        self.short_circuits.store(saved.short_circuits, Ordering::Relaxed); // relaxed: pre-traffic restore
        self.backoff_ms.store(saved.backoff_ms, Ordering::Relaxed); // relaxed: pre-traffic restore
        if let (Some(state), Some(flaky)) = (
            saved.flaky.as_ref(),
            self.inner.as_any().and_then(|a| a.downcast_ref::<Flaky>()),
        ) {
            flaky.restore_state(state);
        }
    }

    fn now_ms(&self) -> u64 {
        // relaxed: the virtual clock is advanced under the breaker lock
        // or by the caller's own attempt; readers tolerate slight skew.
        self.clock_ms.load(Ordering::Relaxed)
    }

    fn tick(&self, ms: u64) {
        // relaxed: monotone accumulator, see `now_ms`.
        self.clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Record a terminal (post-retry) outcome in the breaker.
    fn record(&self, ok: bool) {
        let mut b = self.breaker.lock();
        if ok {
            b.consecutive_failures = 0;
            b.state = BreakerState::Closed;
            return;
        }
        b.consecutive_failures += 1;
        let threshold = self.policy.breaker_threshold.max(1);
        let was_half_open = b.state == BreakerState::Open
            && self.now_ms() >= b.opened_at_ms + self.policy.cooldown_ms;
        if b.consecutive_failures >= threshold || was_half_open {
            if b.state != BreakerState::Open || was_half_open {
                // relaxed: standalone stat counter.
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            b.state = BreakerState::Open;
            b.opened_at_ms = self.now_ms();
        }
    }
}

impl Service for Resilient {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn signature(&self) -> &Signature {
        self.inner.signature()
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        self.try_call(inputs).unwrap_or_default()
    }

    fn try_call(&self, inputs: &[Value]) -> CallOutcome {
        // relaxed: standalone stat counter.
        self.calls.fetch_add(1, Ordering::Relaxed);

        // Breaker gate: open + cooldown not elapsed → fast-fail without
        // touching the inner service. An elapsed cooldown lets exactly
        // this call through as the half-open probe.
        let state = self.breaker_state();
        if state == BreakerState::Open {
            // relaxed: standalone stat counters.
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.tick(1); // even a fast-fail advances the clock
            return Err(ServiceError::Unavailable {
                service: self.inner.name().to_string(),
            });
        }
        let probing = state == BreakerState::HalfOpen;
        // A half-open probe gets one attempt — no retries while probing.
        let attempts = if probing { 1 } else { self.policy.max_attempts.max(1) };

        let mut last_err: Option<ServiceError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.policy.backoff_ms(attempt);
                // relaxed: standalone stat counters.
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.backoff_ms.fetch_add(backoff, Ordering::Relaxed);
                self.tick(backoff);
            }
            self.tick(1);
            match self.inner.try_call(inputs) {
                Ok(rows) => {
                    self.record(true);
                    return Ok(rows);
                }
                Err(e) => last_err = Some(e),
            }
        }
        // relaxed: standalone stat counter.
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.record(false);
        Err(last_err.unwrap_or(ServiceError::Unavailable {
            service: self.inner.name().to_string(),
        }))
    }

    fn cost(&self) -> f64 {
        // Price in observed flakiness: a service that keeps exhausting
        // retries should look expensive to ranking.
        let snap = self.snapshot();
        self.inner.cost() * (1.0 + snap.observed_failure_rate)
    }
}

/// All [`Resilient`] services one engine session knows about, so health
/// can be inspected (and failover decided) in one place.
#[derive(Default)]
pub struct HealthRegistry {
    services: Mutex<Vec<Arc<Resilient>>>,
}

impl HealthRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track a resilient service.
    pub fn register(&self, svc: Arc<Resilient>) {
        self.services.lock().push(svc);
    }

    /// Number of tracked services.
    pub fn len(&self) -> usize {
        self.services.lock().len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every tracked service, registration order.
    pub fn snapshots(&self) -> Vec<HealthSnapshot> {
        self.services.lock().iter().map(|s| s.snapshot()).collect()
    }

    /// Names of services whose breaker is currently open.
    pub fn tripped_services(&self) -> Vec<String> {
        self.services
            .lock()
            .iter()
            .filter(|s| s.is_tripped())
            .map(|s| s.name().to_string())
            .collect()
    }

    /// The tracked wrapper for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<Resilient>> {
        self.services
            .lock()
            .iter()
            .find(|s| s.name() == name)
            .cloned()
    }

    /// Total virtual milliseconds accrued by retry backoff across all
    /// tracked services (charged against serve deadlines).
    pub fn backoff_virtual_ms(&self) -> u64 {
        self.services
            .lock()
            .iter()
            .map(|s| s.backoff_virtual_ms())
            .sum()
    }

    /// Sum of retry attempts across tracked services.
    pub fn total_retries(&self) -> u64 {
        self.snapshots().iter().map(|s| s.retries).sum()
    }

    /// Sum of breaker trips across tracked services.
    pub fn total_trips(&self) -> u64 {
        self.snapshots().iter().map(|s| s.trips).sum()
    }

    /// Capture every tracked service's raw state, registration order
    /// (the piece of a session snapshot this registry owns).
    pub fn saved(&self) -> Vec<SavedServiceHealth> {
        self.services.lock().iter().map(|s| s.saved_health()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Flaky;
    use copycat_query::{FnService, Schema};

    fn echo() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            "echo",
            Signature { inputs: Schema::of(&["x"]), outputs: Schema::of(&["y"]) },
            |i: &[Value]| vec![i.to_vec()],
        ))
    }

    fn flaky(rate: f64, seed: u64) -> Arc<dyn Service> {
        Arc::new(Flaky::new(echo(), rate, 10, seed))
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy { backoff_base_ms: 10, backoff_cap_ms: 65, ..RetryPolicy::default() };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 65); // capped
        assert_eq!(p.backoff_ms(63), 65);
        assert_eq!(p.backoff_ms(90), 65); // shift overflow → cap
    }

    #[test]
    fn healthy_service_passes_through() {
        let r = Resilient::new(echo(), RetryPolicy::default());
        let out = r.try_call(&[Value::str("hi")]).unwrap();
        assert_eq!(out, vec![vec![Value::str("hi")]]);
        let snap = r.snapshot();
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.failures, 0);
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.state, BreakerState::Closed);
    }

    #[test]
    fn retries_recover_flaky_calls() {
        // Moderate rate: with 3 attempts, nearly every logical call
        // should succeed, and the retry counter shows work happened.
        let r = Resilient::new(flaky(0.4, 11), RetryPolicy::default());
        let mut ok = 0;
        for i in 0..50 {
            if r.try_call(&[Value::Num(i as f64)]).is_ok() {
                ok += 1;
            }
        }
        let snap = r.snapshot();
        assert!(ok >= 45, "only {ok}/50 recovered");
        assert!(snap.retries > 0, "no retries recorded");
        assert!(snap.backoff_virtual_ms > 0, "no backoff charged");
    }

    #[test]
    fn retry_outcomes_are_deterministic() {
        let mk = || Resilient::new(flaky(0.5, 9), RetryPolicy::default());
        let r1 = mk();
        let r2 = mk();
        for i in 0..60 {
            let v = [Value::Num(i as f64)];
            assert_eq!(r1.try_call(&v), r2.try_call(&v), "input {i}");
        }
        assert_eq!(r1.snapshot(), r2.snapshot());
    }

    #[test]
    fn breaker_trips_then_recovers_via_half_open() {
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 3,
            cooldown_ms: 50,
            ..RetryPolicy::default()
        };
        let r = Resilient::new(flaky(1.0, 5), RetryPolicy { ..policy });
        // Three exhausted calls trip it open.
        for i in 0..3 {
            assert!(r.try_call(&[Value::Num(i as f64)]).is_err());
        }
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert_eq!(r.snapshot().trips, 1);
        // While open, calls fast-fail as Unavailable without touching
        // the inner service.
        let inner_calls_before = r.snapshot().calls;
        let err = r.try_call(&[Value::Num(99.0)]).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(r.snapshot().short_circuits, 1);
        assert_eq!(r.snapshot().calls, inner_calls_before + 1);
        // Advance the virtual clock to the cooldown boundary: fast-fails
        // tick 1ms each, so step until the half-open window opens.
        let mut guard = 0;
        while r.breaker_state() != BreakerState::HalfOpen {
            let _ = r.try_call(&[Value::Num(1000.0 + guard as f64)]);
            guard += 1;
            assert!(guard < 200, "never reached half-open");
        }
        // Probe against a now-healthy inner? Our inner is rate-1.0, so
        // the probe fails and the breaker re-opens (another trip).
        let _ = r.try_call(&[Value::Num(7.0)]);
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert!(r.snapshot().trips >= 2);
    }

    #[test]
    fn half_open_probe_success_closes() {
        // Inner fails exactly the first `threshold` inputs then heals:
        // emulate with a mutable gate via input value.
        let sig = Signature { inputs: Schema::of(&["x"]), outputs: Schema::of(&["y"]) };
        struct Gated {
            sig: Signature,
        }
        impl Service for Gated {
            fn name(&self) -> &str {
                "gated"
            }
            fn signature(&self) -> &Signature {
                &self.sig
            }
            fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
                self.try_call(inputs).unwrap_or_default()
            }
            fn try_call(&self, inputs: &[Value]) -> CallOutcome {
                if inputs[0].as_text() == "down" {
                    Err(ServiceError::Unavailable { service: "gated".into() })
                } else {
                    Ok(vec![inputs.to_vec()])
                }
            }
        }
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            cooldown_ms: 3,
            ..RetryPolicy::default()
        };
        let r = Resilient::new(Arc::new(Gated { sig }), policy);
        assert!(r.try_call(&[Value::str("down")]).is_err());
        assert!(r.try_call(&[Value::str("down")]).is_err());
        assert_eq!(r.breaker_state(), BreakerState::Open);
        // Tick past cooldown via short-circuited calls.
        let _ = r.try_call(&[Value::str("up")]);
        let _ = r.try_call(&[Value::str("up")]);
        let _ = r.try_call(&[Value::str("up")]);
        assert_eq!(r.breaker_state(), BreakerState::HalfOpen);
        // Healthy probe closes the breaker.
        assert!(r.try_call(&[Value::str("up")]).is_ok());
        assert_eq!(r.breaker_state(), BreakerState::Closed);
        // And normal service resumes.
        assert!(r.try_call(&[Value::str("up")]).is_ok());
    }

    #[test]
    fn saved_health_restores_a_tripped_breaker_exactly() {
        use copycat_util::json::Json;
        let policy = RetryPolicy {
            max_attempts: 2,
            breaker_threshold: 2,
            cooldown_ms: 500,
            ..RetryPolicy::default()
        };
        let mk = || Resilient::new(flaky(1.0, 5), policy);
        let r1 = mk();
        // Trip it and burn a couple of short-circuits.
        for i in 0..4 {
            assert!(r1.try_call(&[Value::Num(i as f64)]).is_err());
        }
        assert_eq!(r1.breaker_state(), BreakerState::Open);
        let saved = r1.saved_health();
        assert!(saved.flaky.is_some(), "wrapped Flaky state captured");
        // JSON round trip is exact.
        let back = SavedServiceHealth::from_json(
            &Json::parse(&saved.to_json().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, saved);
        // A fresh wrapper with the state restored: still tripped, and
        // every subsequent outcome (short-circuits, half-open probe
        // timing, rolls) matches the uninterrupted original.
        let r2 = mk();
        assert_eq!(r2.breaker_state(), BreakerState::Closed);
        r2.restore_health(&back);
        assert_eq!(r2.breaker_state(), BreakerState::Open, "restore forgot the trip");
        for i in 0..600 {
            let v = [Value::Num((100 + i) as f64)];
            assert_eq!(r1.try_call(&v), r2.try_call(&v), "call {i}");
            assert_eq!(r1.breaker_state(), r2.breaker_state(), "state after call {i}");
        }
        assert_eq!(r1.saved_health(), r2.saved_health());
    }

    #[test]
    fn registry_surfaces_tripped_services() {
        let reg = HealthRegistry::new();
        let bad = Arc::new(Resilient::new(
            flaky(1.0, 2),
            RetryPolicy { max_attempts: 1, breaker_threshold: 2, ..RetryPolicy::default() },
        ));
        let good = Arc::new(Resilient::new(echo(), RetryPolicy::default()));
        reg.register(bad.clone());
        reg.register(good.clone());
        assert_eq!(reg.len(), 2);
        assert!(reg.tripped_services().is_empty());
        for i in 0..3 {
            let _ = bad.try_call(&[Value::Num(i as f64)]);
        }
        let _ = good.try_call(&[Value::str("x")]);
        assert_eq!(reg.tripped_services(), vec!["echo".to_string()]);
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].state, BreakerState::Open);
        assert_eq!(snaps[1].state, BreakerState::Closed);
        assert!(reg.get("echo").is_some());
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.total_trips(), 1);
    }
}
