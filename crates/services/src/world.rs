//! The synthetic world: a seeded, internally consistent geography.
//!
//! Everything the corpora and services mention is generated here once, so
//! a shelter page, the contact spreadsheet, the zip resolver and the
//! geocoder all agree — which is what makes end-to-end integration results
//! verifiable in the experiments.

use copycat_util::rng::{Rng, SeedableRng, StdRng};

const CITY_NAMES: &[&str] = &[
    "Coconut Creek", "Pompano Beach", "Fort Lauderdale", "Margate", "Coral Springs",
    "Deerfield Beach", "Tamarac", "Plantation", "Sunrise", "Hollywood", "Davie",
    "Lauderhill", "Weston", "Parkland", "Cooper City",
];
const STREET_NAMES: &[&str] = &[
    "Oak", "Maple", "Palmetto", "Cypress", "Hibiscus", "Atlantic", "Sunrise", "Coral",
    "Banyan", "Seagrape", "Pine Island", "Lyons", "Riverside", "Sample", "Wiles", "Royal Palm",
];
const STREET_SUFFIXES: &[&str] = &["St", "Ave", "Rd", "Blvd", "Dr", "Ln", "Way"];
const VENUE_KINDS: &[&str] = &[
    "High School", "Middle School", "Elementary", "Recreation Center", "Community Center",
    "Civic Center", "Church", "Park Pavilion",
];
const FIRST_NAMES: &[&str] = &[
    "Ann", "Bob", "Carla", "David", "Elena", "Frank", "Grace", "Hector", "Irene", "James",
    "Keisha", "Luis", "Maria", "Nadia", "Omar", "Paula",
];
const LAST_NAMES: &[&str] = &[
    "Alvarez", "Brooks", "Chen", "Diaz", "Evans", "Foster", "Garcia", "Huang", "Ivanov",
    "Johnson", "Kim", "Lopez", "Miller", "Nguyen", "Ortiz", "Patel",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; equal seeds produce identical worlds.
    pub seed: u64,
    /// Number of cities (≤ 15).
    pub cities: usize,
    /// Streets per city.
    pub streets_per_city: usize,
    /// Number of shelters/venues.
    pub venues: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self { seed: 2009, cities: 8, streets_per_city: 12, venues: 30 }
    }
}

/// A city with its zip blocks and centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    /// City name.
    pub name: String,
    /// Two-letter state.
    pub state: String,
    /// Centroid latitude.
    pub lat: f64,
    /// Centroid longitude.
    pub lon: f64,
}

/// A street with its zip and coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Street {
    /// Full address line, e.g. `4213 Palmetto Ave`.
    pub address: String,
    /// Index into [`World::cities`].
    pub city: usize,
    /// 5-digit zip.
    pub zip: String,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

/// A shelter/venue at a street address.
#[derive(Debug, Clone, PartialEq)]
pub struct Venue {
    /// Venue name, e.g. `Margate Civic Center`.
    pub name: String,
    /// Index into [`World::streets`].
    pub street: usize,
    /// Capacity (for richer workloads).
    pub capacity: u32,
}

/// A contact person affiliated with a venue.
#[derive(Debug, Clone, PartialEq)]
pub struct Person {
    /// Full name.
    pub name: String,
    /// Phone number.
    pub phone: String,
    /// Index into [`World::venues`].
    pub venue: usize,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Cities.
    pub cities: Vec<City>,
    /// Streets (addresses).
    pub streets: Vec<Street>,
    /// Venues (shelters).
    pub venues: Vec<Venue>,
    /// Contact people (one per venue).
    pub people: Vec<Person>,
    /// The generation seed, kept so derived views (like the messy
    /// directory) can vary formats per row without touching the RNG
    /// stream that produced the values above.
    pub seed: u64,
}

/// A splitmix64-style finalizer over `(seed, salt)`. Derived views use
/// this instead of drawing from the generation RNG: interleaving new
/// draws into [`World::generate`] would shift every value generated
/// after them and break the pinned golden fixtures.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl World {
    /// Generate a world from a config.
    pub fn generate(config: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_cities = config.cities.min(CITY_NAMES.len());
        let cities: Vec<City> = (0..n_cities)
            .map(|i| City {
                name: CITY_NAMES[i].to_string(),
                state: "FL".to_string(),
                lat: 26.0 + rng.gen_range(0.0..0.5),
                lon: -80.4 + rng.gen_range(0.0..0.3),
            })
            .collect();

        let mut streets = Vec::new();
        for (ci, city) in cities.iter().enumerate() {
            // Each city owns a zip block: 33000 + 40*ci .. +40.
            for s in 0..config.streets_per_city {
                let name = STREET_NAMES[(s * 3 + ci) % STREET_NAMES.len()];
                let suffix = STREET_SUFFIXES[(s + ci) % STREET_SUFFIXES.len()];
                let number = 100 + rng.gen_range(0..9000);
                let zip = format!("{:05}", 33000 + ci * 40 + s % 40);
                streets.push(Street {
                    address: format!("{number} {name} {suffix}"),
                    city: ci,
                    zip,
                    lat: city.lat + rng.gen_range(-0.05..0.05),
                    lon: city.lon + rng.gen_range(-0.05..0.05),
                });
            }
        }

        let mut venues = Vec::new();
        let mut seen = copycat_util::hash::FxHashSet::default();
        while venues.len() < config.venues && !streets.is_empty() {
            let street = rng.gen_range(0..streets.len());
            let city = &cities[streets[street].city];
            let kind = VENUE_KINDS[rng.gen_range(0..VENUE_KINDS.len())];
            let mut name = format!("{} {}", city.name, kind);
            if !seen.insert(name.clone()) {
                name = format!("{} #{}", name, venues.len() + 1);
                if !seen.insert(name.clone()) {
                    continue;
                }
            }
            venues.push(Venue { name, street, capacity: rng.gen_range(50..800) });
        }

        let people = venues
            .iter()
            .enumerate()
            .map(|(vi, _)| Person {
                name: format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                ),
                phone: format!("(954) 555-{:04}", rng.gen_range(1000..10000)),
                venue: vi,
            })
            .collect();

        World { cities, streets, venues, people, seed: config.seed }
    }

    /// A default mid-sized world.
    pub fn default_world() -> World {
        Self::generate(&WorldConfig::default())
    }

    /// The street of a venue.
    pub fn venue_street(&self, v: &Venue) -> &Street {
        &self.streets[v.street]
    }

    /// The city of a street.
    pub fn street_city(&self, s: &Street) -> &City {
        &self.cities[s.city]
    }

    /// Look up a street by `(address, city name)`, case-insensitive.
    pub fn find_street(&self, address: &str, city: &str) -> Option<&Street> {
        self.streets.iter().find(|s| {
            s.address.eq_ignore_ascii_case(address.trim())
                && self.cities[s.city].name.eq_ignore_ascii_case(city.trim())
        })
    }

    /// All venues whose name contains the query (case-insensitive) — the
    /// ambiguity source for address resolution.
    pub fn find_venues(&self, name_query: &str) -> Vec<&Venue> {
        let q = name_query.trim().to_lowercase();
        if q.is_empty() {
            return Vec::new();
        }
        self.venues
            .iter()
            .filter(|v| v.name.to_lowercase().contains(&q))
            .collect()
    }

    /// Shelter rows `[name, street, city]` — the content of the synthetic
    /// shelter Web pages.
    pub fn shelter_rows(&self) -> Vec<Vec<String>> {
        self.venues
            .iter()
            .map(|v| {
                let s = self.venue_street(v);
                vec![
                    v.name.clone(),
                    s.address.clone(),
                    self.street_city(s).name.clone(),
                ]
            })
            .collect()
    }

    /// Contact rows `[person, phone, venue name]` — the content of the
    /// contacts spreadsheet.
    pub fn contact_rows(&self) -> Vec<Vec<String>> {
        self.people
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    p.phone.clone(),
                    self.venues[p.venue].name.clone(),
                ]
            })
            .collect()
    }

    /// The true zip of venue `v` (ground truth for experiments).
    pub fn venue_zip(&self, v: &Venue) -> &str {
        &self.venue_street(v).zip
    }

    /// A phone in the county directory's house style: dashed, no
    /// parentheses — `954-555-1234` where the contacts sheet says
    /// `(954) 555-1234`. One consistent style per column, so a single
    /// learned program can bridge the formats.
    pub fn directory_phone(phone: &str) -> String {
        let digits: String = phone.chars().filter(|c| c.is_ascii_digit()).collect();
        if digits.len() == 10 {
            format!("{}-{}-{}", &digits[..3], &digits[3..6], &digits[6..])
        } else {
            phone.to_string()
        }
    }

    /// Casing noise: the same venue name as typed by three different
    /// clerks — verbatim, SHOUTED, or lowercased — picked by `variant`.
    fn noisy_case(name: &str, variant: u64) -> String {
        match variant % 3 {
            0 => name.to_string(),
            1 => name.to_uppercase(),
            _ => name.to_lowercase(),
        }
    }

    /// A registration date rendered in one of three clashing styles
    /// (US slashed, ISO, day-first abbreviated), all derived from `h`.
    fn noisy_date(h: u64) -> String {
        const MONTHS: &[&str] = &[
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        let year = 2006 + (h % 4) as usize;
        let month = 1 + ((h >> 2) % 12) as usize;
        let day = 1 + ((h >> 6) % 28) as usize;
        match (h >> 11) % 3 {
            0 => format!("{month:02}/{day:02}/{year}"),
            1 => format!("{year}-{month:02}-{day:02}"),
            _ => format!("{day} {} {year}", MONTHS[month - 1]),
        }
    }

    /// County directory rows `[venue (casing noise), phone (dashed),
    /// registered (mixed date styles)]` — row `i` belongs to person/venue
    /// `i`, which is the ground truth experiments score against.
    ///
    /// This is the messy heterogeneous source: its phones disagree with
    /// [`World::contact_rows`] on format and its venue names on casing,
    /// so value-overlap joins stall and integration *requires* a learned
    /// transform. Every value is derived from already-generated data and
    /// [`mix`] — never from new RNG draws — so the directory can be
    /// added (or extended) without shifting any pinned fixture.
    pub fn directory_rows(&self) -> Vec<Vec<String>> {
        self.people
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let h = mix(self.seed, i as u64);
                vec![
                    Self::noisy_case(&self.venues[p.venue].name, h),
                    Self::directory_phone(&p.phone),
                    Self::noisy_date(h >> 16),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::default());
        let b = World::generate(&WorldConfig::default());
        assert_eq!(a.shelter_rows(), b.shelter_rows());
        assert_eq!(a.contact_rows(), b.contact_rows());
    }

    #[test]
    fn sizes_match_config() {
        let cfg = WorldConfig { seed: 1, cities: 5, streets_per_city: 7, venues: 12 };
        let w = World::generate(&cfg);
        assert_eq!(w.cities.len(), 5);
        assert_eq!(w.streets.len(), 35);
        assert_eq!(w.venues.len(), 12);
        assert_eq!(w.people.len(), 12);
    }

    #[test]
    fn venue_names_unique() {
        let w = World::generate(&WorldConfig { venues: 100, ..WorldConfig::default() });
        let names: std::collections::HashSet<_> = w.venues.iter().map(|v| &v.name).collect();
        assert_eq!(names.len(), w.venues.len());
    }

    #[test]
    fn streets_resolve_consistently() {
        let w = World::default_world();
        let v = &w.venues[0];
        let s = w.venue_street(v);
        let city = w.street_city(s);
        let found = w.find_street(&s.address, &city.name).expect("findable");
        assert_eq!(found.zip, s.zip);
    }

    #[test]
    fn venue_search_is_substring_and_ambiguous() {
        let w = World::default_world();
        let v = &w.venues[0];
        assert!(!w.find_venues(&v.name).is_empty());
        // A bare city name matches every venue in that city (ambiguity).
        let city = &w.street_city(w.venue_street(v)).name;
        assert!(w.find_venues(city).len() >= 1);
        assert!(w.find_venues("").is_empty());
    }

    /// The messy directory is a pure function of the seed: pinned values
    /// catch any accidental re-ordering of RNG draws or hash changes,
    /// and the underlying contact values stay exactly what they were
    /// before the directory existed.
    #[test]
    fn directory_rows_are_seed_pinned_and_shift_nothing() {
        let w = World::generate(&WorldConfig { venues: 10, ..WorldConfig::default() });
        let dir = w.directory_rows();
        assert_eq!(dir.len(), w.people.len());
        // Pinned: exact first rows for the default seed (2009).
        assert_eq!(dir[0], vec!["Deerfield Beach High School", "954-555-7735", "20 Dec 2006"]);
        assert_eq!(dir[1], vec!["deerfield beach civic center", "954-555-8376", "2009-08-03"]);
        assert_eq!(dir[2], vec!["fort lauderdale middle school", "954-555-9376", "08/21/2008"]);
        // Pinned: the pre-directory stream is untouched (same values the
        // serve golden transcript records for this seed).
        assert_eq!(w.venues[0].name, "Deerfield Beach High School");
        assert_eq!(w.people[0].phone, "(954) 555-7735");
        // Every phone is the dashed rendering of the contact phone, and
        // every name a casing of the venue name: same world, new format.
        for (i, row) in dir.iter().enumerate() {
            assert_eq!(row[1], World::directory_phone(&w.people[i].phone));
            assert_eq!(
                row[0].to_lowercase(),
                w.venues[w.people[i].venue].name.to_lowercase()
            );
        }
        // All three casing and date styles actually occur.
        let w = World::generate(&WorldConfig::default());
        let dir = w.directory_rows();
        assert!(dir.iter().any(|r| r[0].chars().any(|c| c.is_ascii_uppercase())
            && r[0].chars().any(|c| c.is_ascii_lowercase())));
        assert!(dir.iter().any(|r| r[0] == r[0].to_uppercase() && r[0] != r[0].to_lowercase()));
        assert!(dir.iter().any(|r| r[2].contains('/')));
        assert!(dir.iter().any(|r| r[2].len() == 10 && r[2].as_bytes()[4] == b'-'));
    }

    #[test]
    fn zips_are_city_blocked() {
        let w = World::default_world();
        for s in &w.streets {
            let block: usize = s.zip.parse::<usize>().unwrap();
            assert_eq!((block - 33000) / 40, s.city);
        }
    }
}
