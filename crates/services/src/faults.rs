//! Deterministic failure and latency injection.
//!
//! §3.2 motivates learning source descriptions so the system can "propose
//! replacement sources if a source is down, too slow, or does not provide
//! a complete set of results". [`Flaky`] wraps any service and makes it
//! exactly that kind of source, deterministically (failures are a pure
//! function of the inputs and the seed, so tests and experiments are
//! reproducible).

use copycat_query::{Service, Signature, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A wrapper service that fails some calls and accrues virtual latency.
pub struct Flaky {
    inner: Arc<dyn Service>,
    /// Failure probability in `[0, 1]`.
    failure_rate: f64,
    /// Virtual latency per successful call (accumulated, not slept).
    latency_per_call: u64,
    seed: u64,
    calls: AtomicU64,
    failures: AtomicU64,
    virtual_latency: AtomicU64,
}

impl Flaky {
    /// Wrap `inner`, failing roughly `failure_rate` of calls.
    pub fn new(inner: Arc<dyn Service>, failure_rate: f64, latency_per_call: u64, seed: u64) -> Self {
        Self {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            latency_per_call,
            seed,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            virtual_latency: AtomicU64::new(0),
        }
    }

    /// Calls observed so far.
    pub fn calls(&self) -> u64 {
        // relaxed: standalone stat counter; readers report it after the
        // calls they care about have quiesced, nothing reconciles it.
        self.calls.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn failures(&self) -> u64 {
        // relaxed: standalone stat counter, see `calls`.
        self.failures.load(Ordering::Relaxed)
    }

    /// Total virtual latency accrued (ms).
    pub fn virtual_latency_ms(&self) -> u64 {
        // relaxed: read for deadline charging under the session lock
        // that already serializes operator execution, or after quiesce.
        self.virtual_latency.load(Ordering::Relaxed)
    }

    fn should_fail(&self, inputs: &[Value]) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        // Deterministic hash of (seed, inputs).
        let mut h = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for v in inputs {
            for b in v.as_text().bytes() {
                h = h.rotate_left(5) ^ u64::from(b);
                h = h.wrapping_mul(0x100_0000_01B3);
            }
        }
        ((h >> 16) % 10_000) as f64 / 10_000.0 < self.failure_rate
    }
}

impl Service for Flaky {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn signature(&self) -> &Signature {
        self.inner.signature()
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        // relaxed: standalone stat counters (see the accessors above);
        // no reader reconciles them against each other mid-flight.
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.should_fail(inputs) {
            // relaxed: standalone stat counter.
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Vec::new();
        }
        // relaxed: accumulated charge, read under the session lock.
        self.virtual_latency
            .fetch_add(self.latency_per_call, Ordering::Relaxed);
        self.inner.call(inputs)
    }

    fn cost(&self) -> f64 {
        // A slow, flaky source should look expensive to the source graph.
        self.inner.cost() * (1.0 + self.failure_rate) + self.latency_per_call as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_query::{FnService, Schema};

    fn echo() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            "echo",
            Signature { inputs: Schema::of(&["x"]), outputs: Schema::of(&["y"]) },
            |i: &[Value]| vec![i.to_vec()],
        ))
    }

    #[test]
    fn zero_rate_never_fails() {
        let f = Flaky::new(echo(), 0.0, 10, 1);
        for i in 0..50 {
            assert!(!f.call(&[Value::Num(i as f64)]).is_empty());
        }
        assert_eq!(f.failures(), 0);
        assert_eq!(f.virtual_latency_ms(), 500);
    }

    #[test]
    fn full_rate_always_fails() {
        let f = Flaky::new(echo(), 1.0, 10, 1);
        for i in 0..20 {
            assert!(f.call(&[Value::Num(i as f64)]).is_empty());
        }
        assert_eq!(f.failures(), 20);
    }

    #[test]
    fn failures_are_deterministic_per_input() {
        let f1 = Flaky::new(echo(), 0.5, 0, 7);
        let f2 = Flaky::new(echo(), 0.5, 0, 7);
        for i in 0..100 {
            let v = [Value::Num(i as f64)];
            assert_eq!(f1.call(&v).is_empty(), f2.call(&v).is_empty());
        }
        // Roughly half fail.
        let rate = f1.failures() as f64 / f1.calls() as f64;
        assert!((0.3..0.7).contains(&rate), "rate {rate}");
    }

    #[test]
    fn cost_reflects_flakiness() {
        let healthy = Flaky::new(echo(), 0.0, 0, 1);
        let flaky = Flaky::new(echo(), 0.5, 200, 1);
        assert!(flaky.cost() > healthy.cost());
    }
}
