//! Deterministic failure and latency injection.
//!
//! §3.2 motivates learning source descriptions so the system can "propose
//! replacement sources if a source is down, too slow, or does not provide
//! a complete set of results". [`Flaky`] wraps any service and makes it
//! exactly that kind of source, deterministically (failures are a pure
//! function of the inputs, the seed, and the per-input *attempt number*,
//! so tests and experiments are reproducible while retries still get a
//! fresh deterministic roll instead of failing forever).

use copycat_query::{CallOutcome, Service, ServiceError, Signature, Value};
use copycat_util::hash::FxHashMap;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use copycat_util::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The portable runtime state of one [`Flaky`] wrapper — everything a
/// failure roll depends on beyond the construction-time config.
/// Restoring it into a freshly-built wrapper makes the next call roll
/// exactly what the pre-snapshot instance would have rolled, which is
/// what keeps a recovered session's failure schedule byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SavedFlakyState {
    /// Calls observed.
    pub calls: u64,
    /// Failures injected.
    pub failures: u64,
    /// Virtual latency accrued (ms).
    pub virtual_latency_ms: u64,
    /// Per-input attempt counters, keyed by input hash, sorted by key.
    pub attempts: Vec<(u64, u64)>,
}

impl ToJson for SavedFlakyState {
    fn to_json(&self) -> Json {
        // Attempt keys are full-width u64 hashes: above 2^53 a JSON
        // number would silently round, so they travel as hex strings.
        let attempts: Vec<Json> = self
            .attempts
            .iter()
            .map(|(k, n)| {
                Json::Arr(vec![Json::str(format!("{k:016x}")), Json::Num(*n as f64)])
            })
            .collect();
        Json::obj(vec![
            ("calls".into(), self.calls.to_json()),
            ("failures".into(), self.failures.to_json()),
            ("virtual_latency_ms".into(), self.virtual_latency_ms.to_json()),
            ("attempts".into(), Json::Arr(attempts)),
        ])
    }
}

impl FromJson for SavedFlakyState {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let attempts_field = j.field("attempts")?;
        let attempts = attempts_field
            .as_array()
            .ok_or_else(|| JsonError::expected("array", attempts_field))?
            .iter()
            .map(|pair| {
                let key = pair[0]
                    .as_str()
                    .ok_or_else(|| JsonError::new("attempt key must be a hex string"))?;
                let k = u64::from_str_radix(key, 16)
                    .map_err(|_| JsonError::new(format!("bad attempt key {key:?}")))?;
                Ok((k, u64::from_json(&pair[1])?))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(SavedFlakyState {
            calls: u64::from_json(j.field("calls")?)?,
            failures: u64::from_json(j.field("failures")?)?,
            virtual_latency_ms: u64::from_json(j.field("virtual_latency_ms")?)?,
            attempts,
        })
    }
}

/// A wrapper service that fails some calls and accrues virtual latency.
pub struct Flaky {
    inner: Arc<dyn Service>,
    /// Failure probability in `[0, 1]`.
    failure_rate: f64,
    /// Virtual latency per successful call (accumulated, not slept).
    latency_per_call: u64,
    seed: u64,
    calls: AtomicU64,
    failures: AtomicU64,
    virtual_latency: AtomicU64,
    /// How many times each distinct input tuple has been tried, keyed on
    /// the input hash. Mixed into the failure roll so an identical retry
    /// re-rolls deterministically instead of repeating the first outcome.
    attempts: Mutex<FxHashMap<u64, u64>>,
}

impl Flaky {
    /// Wrap `inner`, failing roughly `failure_rate` of calls.
    pub fn new(inner: Arc<dyn Service>, failure_rate: f64, latency_per_call: u64, seed: u64) -> Self {
        Self {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            latency_per_call,
            seed,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            virtual_latency: AtomicU64::new(0),
            attempts: Mutex::new(FxHashMap::default()),
        }
    }

    /// Calls observed so far.
    pub fn calls(&self) -> u64 {
        // relaxed: standalone stat counter; readers report it after the
        // calls they care about have quiesced, nothing reconciles it.
        self.calls.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn failures(&self) -> u64 {
        // relaxed: standalone stat counter, see `calls`.
        self.failures.load(Ordering::Relaxed)
    }

    /// Total virtual latency accrued (ms).
    pub fn virtual_latency_ms(&self) -> u64 {
        // relaxed: read for deadline charging under the session lock
        // that already serializes operator execution, or after quiesce.
        self.virtual_latency.load(Ordering::Relaxed)
    }

    /// The failure rate actually *observed* so far (failures / calls),
    /// or the configured rate when nothing has been called yet. This is
    /// what ranking should see: real flakiness, not the static estimate.
    pub fn observed_failure_rate(&self) -> f64 {
        let calls = self.calls();
        if calls == 0 {
            self.failure_rate
        } else {
            self.failures() as f64 / calls as f64
        }
    }

    /// The configured injection rate.
    pub fn configured_failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Capture the roll-relevant runtime state (counters and per-input
    /// attempt numbers) for session persistence.
    pub fn saved_state(&self) -> SavedFlakyState {
        let mut attempts: Vec<(u64, u64)> =
            self.attempts.lock().iter().map(|(&k, &n)| (k, n)).collect();
        attempts.sort_unstable();
        SavedFlakyState {
            // relaxed: read at snapshot time under the session lock
            // that serializes operator execution.
            calls: self.calls.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            virtual_latency_ms: self.virtual_latency.load(Ordering::Relaxed), // relaxed: snapshot under session lock
            attempts,
        }
    }

    /// Overwrite the runtime state with a previously
    /// [`saved_state`](Flaky::saved_state) capture. The configuration
    /// (rate, latency, seed) is construction-time and must already
    /// match for the restored roll sequence to mean anything.
    pub fn restore_state(&self, saved: &SavedFlakyState) {
        // relaxed: restore happens before the session serves traffic.
        self.calls.store(saved.calls, Ordering::Relaxed);
        self.failures.store(saved.failures, Ordering::Relaxed);
        self.virtual_latency.store(saved.virtual_latency_ms, Ordering::Relaxed); // relaxed: pre-traffic restore
        let mut map = self.attempts.lock();
        map.clear();
        map.extend(saved.attempts.iter().copied());
    }

    fn input_hash(&self, inputs: &[Value]) -> u64 {
        let mut h = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for v in inputs {
            for b in v.as_text().bytes() {
                h = h.rotate_left(5) ^ u64::from(b);
                h = h.wrapping_mul(0x100_0000_01B3);
            }
        }
        h
    }

    /// Deterministic roll for this attempt. Returns `None` on success,
    /// or the failure hash (used to pick a failure mode) on failure.
    fn roll(&self, inputs: &[Value]) -> Option<u64> {
        if self.failure_rate <= 0.0 {
            return None;
        }
        let base = self.input_hash(inputs);
        // Mix in the attempt counter so a retried identical call gets a
        // fresh deterministic roll. First attempt (0) reproduces the
        // (seed, inputs)-only hash, so two fresh instances calling each
        // input once still agree (failures_are_deterministic_per_input).
        let attempt = {
            let mut map = self.attempts.lock();
            let n = map.entry(base).or_insert(0);
            let a = *n;
            *n += 1;
            a
        };
        let mut h = base;
        for _ in 0..attempt {
            h = h.rotate_left(29) ^ 0x9E37_79B9_7F4A_7C15;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let fails = ((h >> 16) % 10_000) as f64 / 10_000.0 < self.failure_rate;
        fails.then_some(h)
    }

    /// Map a failure hash onto one of the three §3.2 failure modes:
    /// ~½ down, ~¼ too slow, ~¼ incomplete.
    fn failure_mode(&self, h: u64, inputs: &[Value]) -> ServiceError {
        let name = self.inner.name().to_string();
        match (h >> 40) % 4 {
            0 | 1 => ServiceError::Unavailable { service: name },
            2 => {
                // Too slow: the call *did* burn time (triple budget)
                // before being abandoned.
                let charged = self.latency_per_call.saturating_mul(3);
                // relaxed: accumulated charge, read under the session lock.
                self.virtual_latency.fetch_add(charged, Ordering::Relaxed);
                ServiceError::TooSlow { service: name, latency_ms: charged }
            }
            _ => {
                // Incomplete: drop the tail of the real answer.
                let mut partial = self.inner.call(inputs);
                partial.pop();
                ServiceError::Incomplete { service: name, partial }
            }
        }
    }
}

impl Service for Flaky {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn signature(&self) -> &Signature {
        self.inner.signature()
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        // Legacy untyped path: failures collapse to an empty answer.
        self.try_call(inputs).unwrap_or_default()
    }

    fn try_call(&self, inputs: &[Value]) -> CallOutcome {
        // relaxed: standalone stat counters (see the accessors above);
        // no reader reconciles them against each other mid-flight.
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.roll(inputs) {
            // relaxed: standalone stat counter.
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(self.failure_mode(h, inputs));
        }
        // relaxed: accumulated charge, read under the session lock.
        self.virtual_latency
            .fetch_add(self.latency_per_call, Ordering::Relaxed);
        Ok(self.inner.call(inputs))
    }

    fn cost(&self) -> f64 {
        // A slow, flaky source should look expensive to the source
        // graph — priced off *observed* flakiness once there is any
        // evidence, falling back to the configured estimate cold.
        self.inner.cost() * (1.0 + self.observed_failure_rate())
            + self.latency_per_call as f64 / 100.0
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_query::{FnService, Schema};

    fn echo() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            "echo",
            Signature { inputs: Schema::of(&["x"]), outputs: Schema::of(&["y"]) },
            |i: &[Value]| vec![i.to_vec()],
        ))
    }

    #[test]
    fn zero_rate_never_fails() {
        let f = Flaky::new(echo(), 0.0, 10, 1);
        for i in 0..50 {
            assert!(!f.call(&[Value::Num(i as f64)]).is_empty());
        }
        assert_eq!(f.failures(), 0);
        assert_eq!(f.virtual_latency_ms(), 500);
    }

    #[test]
    fn full_rate_always_fails() {
        let f = Flaky::new(echo(), 1.0, 10, 1);
        for i in 0..20 {
            assert!(f.call(&[Value::Num(i as f64)]).is_empty());
        }
        assert_eq!(f.failures(), 20);
    }

    #[test]
    fn failures_are_deterministic_per_input() {
        let f1 = Flaky::new(echo(), 0.5, 0, 7);
        let f2 = Flaky::new(echo(), 0.5, 0, 7);
        for i in 0..100 {
            let v = [Value::Num(i as f64)];
            assert_eq!(f1.call(&v).is_empty(), f2.call(&v).is_empty());
        }
        // Roughly half fail.
        let rate = f1.failures() as f64 / f1.calls() as f64;
        assert!((0.3..0.7).contains(&rate), "rate {rate}");
    }

    #[test]
    fn retries_reroll_deterministically() {
        // A retried identical call must NOT be doomed to repeat its
        // first outcome: at rate 0.5 some input that fails on attempt 0
        // must succeed on a later attempt, and the whole outcome
        // sequence must be identical across fresh instances.
        let f1 = Flaky::new(echo(), 0.5, 0, 7);
        let f2 = Flaky::new(echo(), 0.5, 0, 7);
        let mut recovered = 0;
        for i in 0..40 {
            let v = [Value::Num(i as f64)];
            let mut outcomes1 = Vec::new();
            let mut outcomes2 = Vec::new();
            for _ in 0..4 {
                outcomes1.push(f1.try_call(&v).is_ok());
                outcomes2.push(f2.try_call(&v).is_ok());
            }
            assert_eq!(outcomes1, outcomes2, "input {i}");
            if !outcomes1[0] && outcomes1.iter().any(|&ok| ok) {
                recovered += 1;
            }
        }
        assert!(recovered > 0, "no failed-then-recovered input in 40 tries");
    }

    #[test]
    fn typed_failures_cover_all_modes() {
        let f = Flaky::new(echo(), 1.0, 10, 3);
        let mut kinds = std::collections::BTreeSet::new();
        for i in 0..60 {
            match f.try_call(&[Value::Num(i as f64)]) {
                Ok(_) => panic!("rate 1.0 must always fail"),
                Err(e) => {
                    assert_eq!(e.service(), "echo");
                    kinds.insert(e.kind());
                }
            }
        }
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            vec!["incomplete", "too_slow", "unavailable"]
        );
    }

    #[test]
    fn observed_rate_tracks_reality() {
        let f = Flaky::new(echo(), 0.5, 0, 7);
        // Cold: falls back to the configured estimate.
        assert_eq!(f.observed_failure_rate(), 0.5);
        for i in 0..100 {
            f.call(&[Value::Num(i as f64)]);
        }
        let observed = f.observed_failure_rate();
        assert!((0.3..0.7).contains(&observed), "observed {observed}");
        assert_eq!(observed, f.failures() as f64 / f.calls() as f64);
        // A lucky zero-failure streak shows up as cheap cost.
        let healthy = Flaky::new(echo(), 0.9, 0, 1);
        // (rate 0.9 but never called: cost still uses the estimate)
        assert!(healthy.cost() > 1.5);
    }

    #[test]
    fn saved_state_restores_the_roll_sequence() {
        use copycat_util::json::Json;
        let f1 = Flaky::new(echo(), 0.5, 10, 7);
        // Burn in a history with repeated inputs so attempt counters
        // diverge from zero.
        for i in 0..30 {
            let _ = f1.try_call(&[Value::Num((i % 7) as f64)]);
        }
        let saved = f1.saved_state();
        assert!(saved.attempts.iter().any(|&(_, n)| n > 1), "no repeats recorded");
        // JSON round trip is exact (hash keys are full-width u64s).
        let back = SavedFlakyState::from_json(
            &Json::parse(&saved.to_json().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, saved);
        // A fresh instance with the state restored continues the exact
        // roll sequence the original would have produced.
        let f2 = Flaky::new(echo(), 0.5, 10, 7);
        f2.restore_state(&back);
        for i in 0..30 {
            let v = [Value::Num((i % 7) as f64)];
            assert_eq!(f1.try_call(&v), f2.try_call(&v), "call {i}");
        }
        assert_eq!(f1.saved_state(), f2.saved_state());
    }

    #[test]
    fn cost_reflects_flakiness() {
        let healthy = Flaky::new(echo(), 0.0, 0, 1);
        let flaky = Flaky::new(echo(), 0.5, 200, 1);
        assert!(flaky.cost() > healthy.cost());
    }
}
