//! Simulated external services over a consistent synthetic world.
//!
//! The paper's CopyCat calls live Web services — "a zip code resolver that
//! uses Google Maps", geocoders, address resolution (§2.1, §4). Those are
//! unreachable here, so this crate builds the closest deterministic
//! equivalent: a seeded [`world::World`] of cities, streets, zips,
//! coordinates, venues and people, plus [`query::Service`] implementations
//! that answer from it:
//!
//! * [`ZipResolver`] — `(street, city) → zip` (Figure 2's Zipcode Resolver);
//! * [`Geocoder`] — `(street, city) → (lat, lon)`;
//! * [`AddressResolver`] — `(venue name) → (street, city)`; ambiguous
//!   names return multiple answers, as in Example 1;
//! * [`ReversePhone`] — `(phone) → (person, venue)` (§2.3's reverse
//!   directory);
//! * [`CurrencyConverter`] and [`UnitConverter`] — §4's conversions;
//! * [`faults::Flaky`] — deterministic failure/latency injection for
//!   robustness tests and the "propose replacement sources if a source is
//!   down" scenario.
//!
//! Because every service answers from the same `World`, integration
//! results are *checkable*: the experiments know the true zip of every
//! generated shelter.

pub mod faults;
pub mod health;
pub mod registry;
pub mod services;
pub mod world;

pub use faults::{Flaky, SavedFlakyState};
pub use health::{
    BreakerState, HealthRegistry, HealthSnapshot, Resilient, RetryPolicy, SavedServiceHealth,
};
pub use registry::register_all;
pub use services::{
    AddressResolver, CurrencyConverter, Geocoder, ReversePhone, UnitConverter, ZipResolver,
};
pub use world::{Venue, World, WorldConfig};
