//! Data provenance for CopyCat (the role ORCHESTRA plays in §2.3).
//!
//! "CopyCat employs the ORCHESTRA query answering system, which builds a
//! layer over a relational DBMS to annotate every answer with data
//! provenance … provenance enables CopyCat to convert feedback on
//! auto-complete data into feedback over the *queries* that created the
//! data."
//!
//! * [`expr`] — provenance polynomials over the (⊕, ⊗) semiring, with
//!   query labels so feedback can be routed to the producing query;
//! * [`why`] — why-provenance: the witness sets (alternative derivations)
//!   of a tuple;
//! * [`graph`] — the derivation graph behind the *Tuple Explanation pane*
//!   of Figure 2, rendered as text or DOT.

pub mod expr;
pub mod graph;
pub mod why;

pub use expr::{Provenance, Semiring, TupleId};
pub use graph::DerivationGraph;
pub use why::witnesses;
