//! Derivation graphs: the data behind the *Tuple Explanation pane*.
//!
//! Figure 2's bottom pane "visualizes the provenance of the selected tuple
//! in the table": source relations feed operators (dependent joins,
//! unions), which yield the answer. [`DerivationGraph`] is that picture as
//! a data structure, with text and DOT renderings.

use crate::expr::{Provenance, TupleId};

/// A node of the derivation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationNode {
    /// A source tuple.
    Source(TupleId),
    /// A ⊗ combination (join / dependent join).
    Combine,
    /// A ⊕ alternative (union of derivations).
    Alternative,
    /// A query/mapping boundary.
    Query(String),
}

impl DerivationNode {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            DerivationNode::Source(t) => t.to_string(),
            DerivationNode::Combine => "⊗ join".to_string(),
            DerivationNode::Alternative => "⊕ union".to_string(),
            DerivationNode::Query(q) => format!("query {q}"),
        }
    }
}

/// A derivation DAG: edges point from inputs toward the derived tuple.
/// Node 0 is always the root (the explained tuple's derivation).
#[derive(Debug, Clone, Default)]
pub struct DerivationGraph {
    nodes: Vec<DerivationNode>,
    /// `(from, to)`: `from` feeds into `to`.
    edges: Vec<(usize, usize)>,
}

impl DerivationGraph {
    /// Build the graph of a provenance expression.
    pub fn from_provenance(p: &Provenance) -> Self {
        let mut g = DerivationGraph::default();
        g.add(p);
        g
    }

    fn add(&mut self, p: &Provenance) -> usize {
        let id = self.nodes.len();
        match p {
            Provenance::Base(t) => {
                self.nodes.push(DerivationNode::Source(t.clone()));
            }
            Provenance::Join(parts) => {
                self.nodes.push(DerivationNode::Combine);
                for part in parts {
                    let c = self.add(part);
                    self.edges.push((c, id));
                }
            }
            Provenance::Union(parts) => {
                self.nodes.push(DerivationNode::Alternative);
                for part in parts {
                    let c = self.add(part);
                    self.edges.push((c, id));
                }
            }
            Provenance::Labeled { label, inner } => {
                self.nodes.push(DerivationNode::Query(label.to_string()));
                let c = self.add(inner);
                self.edges.push((c, id));
            }
        }
        id
    }

    /// The nodes.
    pub fn nodes(&self) -> &[DerivationNode] {
        &self.nodes
    }

    /// The edges, `(from, to)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Indented text rendering (root first) — the headless equivalent of
    /// the Tuple Explanation pane.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.nodes.is_empty() {
            return out;
        }
        self.render_node(0, 0, &mut out);
        out
    }

    fn children_of(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, to)| *to == id)
            .map(|(from, _)| *from)
            .collect()
    }

    fn render_node(&self, id: usize, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.nodes[id].label());
        out.push('\n');
        for c in self.children_of(id) {
            self.render_node(c, depth + 1, out);
        }
    }

    /// Graphviz DOT rendering (for export).
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph derivation {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n {
                DerivationNode::Source(_) => "box",
                DerivationNode::Query(_) => "folder",
                _ => "ellipse",
            };
            out.push_str(&format!(
                "  n{} [label=\"{}\", shape={}];\n",
                i,
                n.label().replace('"', "'"),
                shape
            ));
        }
        for (from, to) in &self.edges {
            out.push_str(&format!("  n{from} -> n{to};\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zip_example() -> Provenance {
        // The Figure-2 situation: Shelters row joined through the Zipcode
        // Resolver by query Q-zip.
        Provenance::labeled(
            "Q-zip",
            Provenance::times(
                Provenance::base("Shelters", 4),
                Provenance::base("ZipcodeResolver", 17),
            ),
        )
    }

    #[test]
    fn graph_shape() {
        let g = DerivationGraph::from_provenance(&zip_example());
        assert_eq!(g.nodes().len(), 4); // query, join, 2 sources
        assert_eq!(g.edges().len(), 3);
        assert!(matches!(g.nodes()[0], DerivationNode::Query(_)));
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let g = DerivationGraph::from_provenance(&zip_example());
        let text = g.render_text();
        assert!(text.contains("query Q-zip"));
        assert!(text.contains("⊗ join"));
        assert!(text.contains("Shelters#4"));
        assert!(text.contains("ZipcodeResolver#17"));
        // Root is first and unindented.
        assert!(text.starts_with("query Q-zip"));
    }

    #[test]
    fn dot_rendering_is_valid_shape() {
        let g = DerivationGraph::from_provenance(&zip_example());
        let dot = g.render_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), 3);
    }

    #[test]
    fn union_renders_alternatives() {
        let p = Provenance::plus(
            Provenance::labeled("Q1", Provenance::base("a", 1)),
            Provenance::labeled("Q2", Provenance::base("b", 2)),
        );
        let text = DerivationGraph::from_provenance(&p).render_text();
        assert!(text.contains("⊕ union"));
        assert!(text.contains("query Q1") && text.contains("query Q2"));
    }

    #[test]
    fn empty_graph_renders_empty() {
        let g = DerivationGraph::default();
        assert_eq!(g.render_text(), "");
    }
}
