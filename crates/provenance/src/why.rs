//! Why-provenance: the witness sets of a tuple.
//!
//! A *witness* is a set of base tuples sufficient to derive the answer
//! tuple; the list of witnesses is the "alternative explanations (when a
//! tuple is produced by more than one query)" the CIDR demo visualizes
//! (§8). Computed by expanding the polynomial to DNF with a cap on the
//! number of witnesses to keep worst cases bounded.

use crate::expr::{Provenance, TupleId};

/// Upper bound on returned witnesses (DNF can explode).
pub const MAX_WITNESSES: usize = 64;

/// The witness sets of a derivation, each sorted, deduplicated, capped at
/// [`MAX_WITNESSES`] and ordered deterministically.
pub fn witnesses(p: &Provenance) -> Vec<Vec<TupleId>> {
    let mut out = dnf(p);
    for w in &mut out {
        w.sort();
        w.dedup();
    }
    out.sort();
    out.dedup();
    // Minimality: drop witnesses that are supersets of another witness
    // (idempotent-⊕ absorption).
    let mut minimal: Vec<Vec<TupleId>> = Vec::new();
    'outer: for w in out {
        for m in &minimal {
            if m.iter().all(|t| w.contains(t)) {
                continue 'outer;
            }
        }
        minimal.retain(|m| !w.iter().all(|t| m.contains(t)));
        minimal.push(w);
    }
    minimal.sort();
    minimal.truncate(MAX_WITNESSES);
    minimal
}

fn dnf(p: &Provenance) -> Vec<Vec<TupleId>> {
    match p {
        Provenance::Base(t) => vec![vec![t.clone()]],
        Provenance::Labeled { inner, .. } => dnf(inner),
        Provenance::Union(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(dnf(part));
                if out.len() > MAX_WITNESSES * 4 {
                    break;
                }
            }
            out
        }
        Provenance::Join(parts) => {
            let mut acc: Vec<Vec<TupleId>> = vec![Vec::new()];
            for part in parts {
                let rhs = dnf(part);
                let mut next = Vec::with_capacity(acc.len() * rhs.len().max(1));
                for a in &acc {
                    for b in &rhs {
                        let mut w = a.clone();
                        w.extend(b.iter().cloned());
                        next.push(w);
                        if next.len() > MAX_WITNESSES * 4 {
                            break;
                        }
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: &str, row: u64) -> TupleId {
        TupleId::new(rel, row)
    }

    #[test]
    fn single_base_single_witness() {
        let w = witnesses(&Provenance::base("a", 1));
        assert_eq!(w, vec![vec![t("a", 1)]]);
    }

    #[test]
    fn join_multiplies_union_adds() {
        let p = Provenance::plus(
            Provenance::times(Provenance::base("a", 1), Provenance::base("b", 1)),
            Provenance::base("c", 1),
        );
        let w = witnesses(&p);
        assert_eq!(w.len(), 2);
        assert!(w.contains(&vec![t("a", 1), t("b", 1)]));
        assert!(w.contains(&vec![t("c", 1)]));
    }

    #[test]
    fn absorption_drops_superset_witnesses() {
        // a ⊕ (a ⊗ b) = a: the second witness is redundant.
        let p = Provenance::plus(
            Provenance::base("a", 1),
            Provenance::times(Provenance::base("a", 1), Provenance::base("b", 1)),
        );
        let w = witnesses(&p);
        assert_eq!(w, vec![vec![t("a", 1)]]);
    }

    #[test]
    fn idempotent_product_dedups_within_witness() {
        let p = Provenance::times(Provenance::base("a", 1), Provenance::base("a", 1));
        assert_eq!(witnesses(&p), vec![vec![t("a", 1)]]);
    }

    #[test]
    fn labels_are_transparent() {
        let p = Provenance::labeled("Q", Provenance::base("a", 1));
        assert_eq!(witnesses(&p), vec![vec![t("a", 1)]]);
    }

    #[test]
    fn witness_explosion_is_capped() {
        // (a1 ⊕ ... ⊕ a20) ⊗ (b1 ⊕ ... ⊕ b20) = 400 witnesses, capped.
        let sum = |rel: &str| {
            (0..20)
                .map(|i| Provenance::base(rel.to_string(), i))
                .reduce(Provenance::plus)
                .expect("non-empty")
        };
        let p = Provenance::times(sum("a"), sum("b"));
        let w = witnesses(&p);
        assert!(w.len() <= MAX_WITNESSES);
        assert!(!w.is_empty());
    }
}
