//! Provenance polynomials.
//!
//! Every tuple an operator produces carries a [`Provenance`] expression:
//! base tuples are variables, joins multiply (⊗), unions/duplicate
//! elimination add (⊕), and a query's output is wrapped in a
//! [`Provenance::Labeled`] node naming the query — the hook that lets
//! tuple-level feedback reach the query that produced the tuple.

use std::fmt;
use std::sync::Arc;

/// Identity of a base (source) tuple: relation name + row ordinal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Source relation name (shared, cheap to clone).
    pub relation: Arc<str>,
    /// Row ordinal within the relation.
    pub row: u64,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(relation: impl Into<Arc<str>>, row: u64) -> Self {
        Self { relation: relation.into(), row }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.relation, self.row)
    }
}

/// A provenance polynomial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// A source tuple (a variable of the polynomial).
    Base(TupleId),
    /// ⊗-product: the tuple was derived by combining these (join).
    Join(Vec<Provenance>),
    /// ⊕-sum: the tuple has these alternative derivations (union /
    /// duplicate elimination).
    Union(Vec<Provenance>),
    /// A query/mapping label wrapped around a derivation. Labels are what
    /// feedback is traced back to.
    Labeled {
        /// Query or mapping name.
        label: Arc<str>,
        /// The underlying derivation.
        inner: Box<Provenance>,
    },
}

impl Provenance {
    /// A base-tuple leaf.
    pub fn base(relation: impl Into<Arc<str>>, row: u64) -> Self {
        Provenance::Base(TupleId::new(relation, row))
    }

    /// ⊗ of two derivations, flattening nested products.
    pub fn times(a: Provenance, b: Provenance) -> Provenance {
        let mut parts = Vec::new();
        for p in [a, b] {
            match p {
                Provenance::Join(mut inner) => parts.append(&mut inner),
                other => parts.push(other),
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Provenance::Join(parts)
        }
    }

    /// ⊕ of two derivations, flattening nested sums and deduplicating
    /// identical alternatives (⊕ is idempotent for why-provenance).
    pub fn plus(a: Provenance, b: Provenance) -> Provenance {
        let mut parts = Vec::new();
        for p in [a, b] {
            match p {
                Provenance::Union(mut inner) => parts.append(&mut inner),
                other => parts.push(other),
            }
        }
        parts.dedup();
        let mut seen = Vec::new();
        for p in parts {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        if seen.len() == 1 {
            seen.pop().expect("len checked")
        } else {
            Provenance::Union(seen)
        }
    }

    /// Wrap with a query label.
    pub fn labeled(label: impl Into<Arc<str>>, inner: Provenance) -> Provenance {
        Provenance::Labeled { label: label.into(), inner: Box::new(inner) }
    }

    /// All base tuple ids mentioned, in first-occurrence order.
    pub fn base_tuples(&self) -> Vec<&TupleId> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let Provenance::Base(t) = p {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        });
        out
    }

    /// All query labels mentioned, outermost first, deduplicated.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.walk(&mut |p| {
            if let Provenance::Labeled { label, .. } = p {
                if !out.contains(&label.as_ref()) {
                    out.push(label);
                }
            }
        });
        out
    }

    /// All distinct source relations mentioned.
    pub fn relations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.walk(&mut |p| {
            if let Provenance::Base(t) = p {
                if !out.contains(&t.relation.as_ref()) {
                    out.push(&t.relation);
                }
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Provenance)) {
        f(self);
        match self {
            Provenance::Base(_) => {}
            Provenance::Join(parts) | Provenance::Union(parts) => {
                for p in parts {
                    p.walk(f);
                }
            }
            Provenance::Labeled { inner, .. } => inner.walk(f),
        }
    }

    /// Evaluate the polynomial in any semiring, assigning a value to each
    /// base tuple. Labels are transparent to evaluation.
    pub fn eval<S: Semiring>(&self, assign: &impl Fn(&TupleId) -> S::Value) -> S::Value {
        match self {
            Provenance::Base(t) => assign(t),
            Provenance::Join(parts) => parts
                .iter()
                .map(|p| p.eval::<S>(assign))
                .fold(S::one(), |a, b| S::times(a, b)),
            Provenance::Union(parts) => parts
                .iter()
                .map(|p| p.eval::<S>(assign))
                .fold(S::zero(), |a, b| S::plus(a, b)),
            Provenance::Labeled { inner, .. } => inner.eval::<S>(assign),
        }
    }

    /// Number of nodes in the expression (for size bounds in tests).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Base(t) => write!(f, "{t}"),
            Provenance::Join(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊗ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Provenance::Union(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊕ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Provenance::Labeled { label, inner } => write!(f, "{label}[{inner}]"),
        }
    }
}

/// A commutative semiring for provenance evaluation.
pub trait Semiring {
    /// Element type.
    type Value;
    /// Additive identity.
    fn zero() -> Self::Value;
    /// Multiplicative identity.
    fn one() -> Self::Value;
    /// ⊕.
    fn plus(a: Self::Value, b: Self::Value) -> Self::Value;
    /// ⊗.
    fn times(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// Boolean semiring: does the tuple exist given which base tuples exist?
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Value = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn plus(a: bool, b: bool) -> bool {
        a || b
    }
    fn times(a: bool, b: bool) -> bool {
        a && b
    }
}

/// Counting semiring: how many distinct derivations?
pub struct CountSemiring;

impl Semiring for CountSemiring {
    type Value = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn plus(a: u64, b: u64) -> u64 {
        a + b
    }
    fn times(a: u64, b: u64) -> u64 {
        a.saturating_mul(b)
    }
}

/// Tropical (min, +) semiring: the cheapest derivation cost — the cost
/// model CopyCat's ranked answers use.
pub struct TropicalSemiring;

impl Semiring for TropicalSemiring {
    type Value = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn plus(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn times(a: f64, b: f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Provenance {
        // (s#1 ⊗ z#3) ⊕ (s#2 ⊗ z#3)
        Provenance::plus(
            Provenance::times(Provenance::base("shelters", 1), Provenance::base("zips", 3)),
            Provenance::times(Provenance::base("shelters", 2), Provenance::base("zips", 3)),
        )
    }

    #[test]
    fn display_roundtrip_shape() {
        assert_eq!(
            sample().to_string(),
            "((shelters#1 ⊗ zips#3) ⊕ (shelters#2 ⊗ zips#3))"
        );
    }

    #[test]
    fn times_flattens() {
        let p = Provenance::times(
            Provenance::times(Provenance::base("a", 1), Provenance::base("b", 2)),
            Provenance::base("c", 3),
        );
        assert!(matches!(&p, Provenance::Join(parts) if parts.len() == 3));
    }

    #[test]
    fn plus_deduplicates() {
        let p = Provenance::plus(Provenance::base("a", 1), Provenance::base("a", 1));
        assert_eq!(p, Provenance::base("a", 1));
    }

    #[test]
    fn base_tuples_and_relations() {
        let p = sample();
        let bases = p.base_tuples();
        assert_eq!(bases.len(), 3);
        assert_eq!(p.relations(), vec!["shelters", "zips"]);
    }

    #[test]
    fn labels_route_to_queries() {
        let p = Provenance::labeled("Q7", sample());
        assert_eq!(p.labels(), vec!["Q7"]);
        // Labels are transparent to evaluation.
        let count = p.eval::<CountSemiring>(&|_| 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn bool_semiring_membership() {
        let p = sample();
        // Without zips#3, nothing derives.
        let present = |t: &TupleId| t.relation.as_ref() != "zips";
        assert!(!p.eval::<BoolSemiring>(&present));
        // With everything, it derives.
        assert!(p.eval::<BoolSemiring>(&|_| true));
        // Removing shelters#1 still leaves the second derivation.
        let drop_one = |t: &TupleId| !(t.relation.as_ref() == "shelters" && t.row == 1);
        assert!(p.eval::<BoolSemiring>(&drop_one));
    }

    #[test]
    fn tropical_semiring_is_cheapest_derivation() {
        let p = sample();
        // shelters#1 costs 5, shelters#2 costs 1, zips#3 costs 2.
        let cost = |t: &TupleId| match (t.relation.as_ref(), t.row) {
            ("shelters", 1) => 5.0,
            ("shelters", 2) => 1.0,
            _ => 2.0,
        };
        assert_eq!(p.eval::<TropicalSemiring>(&cost), 3.0);
    }

    #[test]
    fn count_semiring_counts_derivations() {
        assert_eq!(sample().eval::<CountSemiring>(&|_| 1), 2);
    }
}
