//! The sharded session registry: many tenants, each a full [`CopyCat`]
//! engine, behind FxHash-sharded `RwLock` shards.
//!
//! Lookup takes one shard's read lock for the duration of a hash-map
//! probe and an `Arc` clone — never while an engine runs. Engine
//! operations serialize per *session* on the session's own mutex, so
//! two tenants never contend and one tenant's requests apply in
//! arrival order (the property the determinism test pins).

use copycat_core::autocomplete::{ColumnSuggestion, ScoredQuery};
use copycat_core::CopyCat;
use copycat_services::{Flaky, World};
use copycat_util::hash::{FxHashMap, FxHasher};
use copycat_util::sync::{Mutex, RwLock};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Everything one tenant owns. Guarded by the session mutex as a unit:
/// the engine plus the request/response continuity state (the
/// suggestion and query lists the client refers back to by index).
pub struct SessionState {
    /// The tenant's engine.
    pub engine: CopyCat,
    /// The world backing `register_world` services, if any.
    pub world: Option<Arc<World>>,
    /// Column suggestions from the last `column_suggestions` response.
    pub last_suggestions: Vec<ColumnSuggestion>,
    /// Queries from the last `autocomplete` response.
    pub last_queries: Vec<ScoredQuery>,
    /// Fault-injected services whose *virtual* latency is charged to
    /// request deadlines (see [`crate::deadline::Deadline`]).
    pub probes: Vec<Arc<Flaky>>,
}

impl SessionState {
    fn fresh(engine: CopyCat) -> SessionState {
        SessionState {
            engine,
            world: None,
            last_suggestions: Vec::new(),
            last_queries: Vec::new(),
            probes: Vec::new(),
        }
    }

    /// Total virtual latency accrued across this session's probes (ms),
    /// plus the virtual retry backoff charged by the engine's resilient
    /// service wrappers — all simulated time, no wallclock.
    pub fn virtual_latency_ms(&self) -> u64 {
        let probes: u64 = self.probes.iter().map(|p| p.virtual_latency_ms()).sum();
        probes + self.engine.health().backoff_virtual_ms()
    }
}

/// One live session.
pub struct Session {
    /// The tenant's name (registry key).
    pub name: String,
    /// The guarded state.
    pub state: Mutex<SessionState>,
}

/// The registry. Shard count is fixed at construction (a power of two).
pub struct SessionRegistry {
    shards: Vec<RwLock<FxHashMap<String, Arc<Session>>>>,
    mask: usize,
}

/// Why a registry mutation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// `create` for an existing name.
    Exists,
    /// Lookup / removal of a missing name.
    Missing,
}

impl SessionRegistry {
    /// A registry with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> SessionRegistry {
        let n = shards.max(1).next_power_of_two();
        SessionRegistry {
            shards: (0..n).map(|_| RwLock::new(FxHashMap::default())).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, name: &str) -> &RwLock<FxHashMap<String, Arc<Session>>> {
        let mut h = FxHasher::default();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Create a session around a fresh (or restored) engine.
    pub fn create(&self, name: &str, engine: CopyCat) -> Result<Arc<Session>, RegistryError> {
        let mut shard = self.shard(name).write();
        if shard.contains_key(name) {
            return Err(RegistryError::Exists);
        }
        let session = Arc::new(Session {
            name: name.to_string(),
            state: Mutex::new(SessionState::fresh(engine)),
        });
        shard.insert(name.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Replace (or create) a session wholesale — the `load_session`
    /// path. The old engine, if any, is dropped with its cache.
    pub fn replace(&self, name: &str, engine: CopyCat) -> Arc<Session> {
        let session = Arc::new(Session {
            name: name.to_string(),
            state: Mutex::new(SessionState::fresh(engine)),
        });
        self.shard(name)
            .write()
            .insert(name.to_string(), Arc::clone(&session));
        session
    }

    /// Look a session up.
    pub fn get(&self, name: &str) -> Result<Arc<Session>, RegistryError> {
        self.shard(name)
            .read()
            .get(name)
            .cloned()
            .ok_or(RegistryError::Missing)
    }

    /// Drop a session.
    pub fn remove(&self, name: &str) -> Result<(), RegistryError> {
        match self.shard(name).write().remove(name) {
            Some(_) => Ok(()),
            None => Err(RegistryError::Missing),
        }
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Session names, sorted (stable `list_sessions` output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Visit every session (metrics aggregation). Sessions are visited
    /// outside any shard lock.
    pub fn for_each(&self, mut f: impl FnMut(&Arc<Session>)) {
        for shard in &self.shards {
            let sessions: Vec<Arc<Session>> = shard.read().values().cloned().collect();
            for s in &sessions {
                f(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_remove_roundtrip() {
        let r = SessionRegistry::new(4);
        assert!(r.is_empty());
        r.create("alice", CopyCat::new()).unwrap();
        match r.create("alice", CopyCat::new()) {
            Err(RegistryError::Exists) => {}
            other => panic!("duplicate create must fail: {:?}", other.map(|_| ())),
        }
        r.create("bob", CopyCat::new()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.names(), vec!["alice".to_string(), "bob".to_string()]);
        assert!(r.get("alice").is_ok());
        r.remove("alice").unwrap();
        assert_eq!(r.remove("alice").unwrap_err(), RegistryError::Missing);
        assert!(matches!(r.get("alice"), Err(RegistryError::Missing)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn shards_spread_and_stay_consistent_under_concurrency() {
        let r = SessionRegistry::new(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..50 {
                        r.create(&format!("tenant-{t}-{i}"), CopyCat::new()).unwrap();
                    }
                });
            }
        });
        assert_eq!(r.len(), 400);
        let mut seen = 0;
        r.for_each(|_| seen += 1);
        assert_eq!(seen, 400);
    }
}
