//! Per-request deadlines with wall *and* virtual time.
//!
//! A request's budget starts at admission, so queue wait counts: a
//! request that sat behind an overload misses its deadline even if its
//! handler would have been fast. Handlers check the deadline at
//! *operator boundaries* — dequeue, after session lookup, and after the
//! engine operation — never mid-operator, so session state is always a
//! consistent prefix of the request's effects.
//!
//! Besides the wall clock, a deadline can be charged **virtual
//! latency**: [`copycat_services::Flaky`] accrues per-call latency as a
//! counter instead of sleeping, and the server charges the delta across
//! an engine operation to the request. This keeps deadline tests and
//! simulations deterministic — a flaky backend "spends" 100ms per call
//! without any thread ever sleeping — while production deployments feel
//! the same accounting through the wall clock.

use std::time::Instant;

/// A request budget. `None` budget = no deadline.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    budget_us: Option<u64>,
    virtual_us: u64,
}

impl Deadline {
    /// A deadline starting now with the given budget.
    pub fn starting_now(budget_ms: Option<u64>) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget_us: budget_ms.map(|ms| ms.saturating_mul(1_000)),
            virtual_us: 0,
        }
    }

    /// Charge virtual service latency (milliseconds) against the budget.
    pub fn charge_virtual_ms(&mut self, ms: u64) {
        self.virtual_us = self.virtual_us.saturating_add(ms.saturating_mul(1_000));
    }

    /// Wall time elapsed plus virtual time charged, in microseconds.
    pub fn spent_us(&self) -> u64 {
        (self.start.elapsed().as_micros() as u64).saturating_add(self.virtual_us)
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        match self.budget_us {
            Some(budget) => self.spent_us() > budget,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_never_expires() {
        let d = Deadline::starting_now(None);
        assert!(!d.expired());
    }

    #[test]
    fn virtual_charge_expires_without_sleeping() {
        let mut d = Deadline::starting_now(Some(50));
        assert!(!d.expired());
        d.charge_virtual_ms(49);
        // 49ms virtual + a few µs of wall time: still inside 50ms.
        assert!(!d.expired());
        d.charge_virtual_ms(2);
        assert!(d.expired(), "51ms virtual must exceed a 50ms budget");
    }

    #[test]
    fn wall_time_counts() {
        let d = Deadline::starting_now(Some(0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(d.expired());
    }
}
