//! The server's metrics registry: counters and latency histograms per
//! request class, aggregated once and read by the `stats` request.
//!
//! Everything is lock-free after construction — workers record with
//! Release increments, the stats reader reconciles with Acquire loads
//! ([`copycat_util::hist::Histogram`] underneath), and the snapshot
//! walks the fixed [`Op::ALL`] table. The orderings matter because the
//! drain invariant (`responses <= total`, with equality at quiescence)
//! is checked by reconciling counters written by different threads: a
//! request's `total` increment happens-before its outcome increment
//! via the job channel, so a snapshot that reads outcomes *first* and
//! totals *second* (see [`snapshot_json`](Metrics::snapshot_json)) can
//! never observe a response without its admission.
//!
//! Latency is recorded for
//! *executed* requests; `overloaded` rejections are counted but not
//! timed (they never ran), and `timeout` records the time actually
//! burned (wall + virtual) before the deadline fired, which is what an
//! operator staring at a p99 wants to see.

use crate::protocol::Op;
use copycat_util::hist::Histogram;
use copycat_util::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters + latency histogram for one request class.
#[derive(Debug, Default)]
pub struct ClassMetrics {
    /// Requests admitted or rejected under this class.
    pub total: AtomicU64,
    /// Completed successfully.
    pub ok: AtomicU64,
    /// Completed with a typed error (bad_request, no_such_session, …).
    pub error: AtomicU64,
    /// Rejected at admission: queue full.
    pub overloaded: AtomicU64,
    /// Deadline exceeded (at any operator boundary).
    pub timeout: AtomicU64,
    /// Rejected during drain.
    pub shed: AtomicU64,
    /// Latency of executed requests (µs).
    pub latency: Histogram,
}

/// The registry: one [`ClassMetrics`] per [`Op`].
#[derive(Debug)]
pub struct Metrics {
    classes: Vec<ClassMetrics>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Metrics {
        Metrics {
            classes: Op::ALL.iter().map(|_| ClassMetrics::default()).collect(),
        }
    }

    /// The counters for one class.
    pub fn class(&self, op: Op) -> &ClassMetrics {
        &self.classes[op.index()]
    }

    /// Count an admission (or admission attempt). Release pairs with
    /// the Acquire in [`grand_total`](Metrics::grand_total).
    pub fn admitted(&self, op: Op) {
        self.class(op).total.fetch_add(1, Ordering::Release);
    }

    /// Count a success and record its latency. Outcome increments are
    /// Release so an Acquire reader that observes one also observes
    /// everything the worker published before it (the latency record,
    /// and — via the job channel's edges — the admission increment).
    pub fn ok(&self, op: Op, us: u64) {
        let c = self.class(op);
        c.latency.record_us(us);
        c.ok.fetch_add(1, Ordering::Release);
    }

    /// Count a typed error and record its latency.
    pub fn error(&self, op: Op, us: u64) {
        let c = self.class(op);
        c.latency.record_us(us);
        c.error.fetch_add(1, Ordering::Release);
    }

    /// Count a deadline miss, recording the time burned before it fired.
    pub fn timeout(&self, op: Op, us: u64) {
        let c = self.class(op);
        c.latency.record_us(us);
        c.timeout.fetch_add(1, Ordering::Release);
    }

    /// Count a queue-full rejection (not timed — it never ran).
    pub fn overloaded(&self, op: Op) {
        self.class(op).overloaded.fetch_add(1, Ordering::Release);
    }

    /// Count a drain-time rejection.
    pub fn shed(&self, op: Op) {
        self.class(op).shed.fetch_add(1, Ordering::Release);
    }

    /// Total requests observed across every class.
    pub fn grand_total(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.total.load(Ordering::Acquire))
            .sum()
    }

    /// Total responses produced across every class (every admitted
    /// request must end in exactly one of these buckets — the drain
    /// invariant the determinism test reconciles).
    pub fn grand_responses(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| {
                c.ok.load(Ordering::Acquire)
                    + c.error.load(Ordering::Acquire)
                    + c.overloaded.load(Ordering::Acquire)
                    + c.timeout.load(Ordering::Acquire)
                    + c.shed.load(Ordering::Acquire)
            })
            .sum()
    }

    /// The `stats` payload: per-class counters + p50/p99, classes with
    /// zero traffic omitted.
    pub fn snapshot_json(&self) -> Json {
        // Read outcomes before totals: an outcome's Release increment
        // happened-after its admission's (via the job channel), so the
        // later Acquire load of `total` sees every admission behind an
        // observed response — `responses <= total` holds even while
        // workers are racing the snapshot.
        let responses = self.grand_responses();
        let grand_total = self.grand_total();
        let mut classes = Vec::new();
        for op in Op::ALL {
            let c = self.class(op);
            let total = c.total.load(Ordering::Acquire);
            if total == 0 {
                continue;
            }
            let lat = c.latency.snapshot();
            classes.push((
                op.as_str().to_string(),
                Json::obj(vec![
                    ("total".into(), Json::Num(total as f64)),
                    ("ok".into(), Json::Num(c.ok.load(Ordering::Acquire) as f64)),
                    ("error".into(), Json::Num(c.error.load(Ordering::Acquire) as f64)),
                    (
                        "overloaded".into(),
                        Json::Num(c.overloaded.load(Ordering::Acquire) as f64),
                    ),
                    ("timeout".into(), Json::Num(c.timeout.load(Ordering::Acquire) as f64)),
                    ("shed".into(), Json::Num(c.shed.load(Ordering::Acquire) as f64)),
                    (
                        "latency".into(),
                        Json::obj(vec![
                            ("count".into(), Json::Num(lat.count as f64)),
                            ("mean_us".into(), Json::Num(if lat.count == 0 {
                                0.0
                            } else {
                                (lat.sum_us / lat.count) as f64
                            })),
                            ("p50_us".into(), Json::Num(lat.p50_us as f64)),
                            ("p99_us".into(), Json::Num(lat.p99_us as f64)),
                            ("max_us".into(), Json::Num(lat.max_us as f64)),
                        ]),
                    ),
                ]),
            ));
        }
        Json::obj(vec![
            ("total".into(), Json::Num(grand_total as f64)),
            ("responses".into(), Json::Num(responses as f64)),
            ("classes".into(), Json::obj(classes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_admission_reconciles_with_a_response() {
        let m = Metrics::new();
        m.admitted(Op::Ping);
        m.ok(Op::Ping, 5);
        m.admitted(Op::Autocomplete);
        m.timeout(Op::Autocomplete, 1000);
        m.admitted(Op::Autocomplete);
        m.overloaded(Op::Autocomplete);
        assert_eq!(m.grand_total(), 3);
        assert_eq!(m.grand_responses(), 3);
    }

    #[test]
    fn snapshot_omits_idle_classes() {
        let m = Metrics::new();
        m.admitted(Op::Export);
        m.ok(Op::Export, 42);
        let j = m.snapshot_json();
        assert!(j["classes"].get("export").is_some());
        assert!(j["classes"].get("ping").is_none());
        assert_eq!(j["classes"]["export"]["ok"].as_f64(), Some(1.0));
    }
}
