//! Durable sessions behind a consistent-hash shard router.
//!
//! The [`Router`] fronts N in-process [`Server`] shards. Session names
//! hash onto a vnode ring, so each tenant consistently lands on one
//! shard; adding shards moves only the sessions whose ring interval
//! changed. On top of placement it layers *durability by replay*:
//!
//! * Every **effectful** request (see [`Op::mutates`] and
//!   [`response_is_effectful`]) is journaled to the session's
//!   [`SessionStore`] — an append-only WAL plus periodic snapshots —
//!   **before the response is released** to the caller. A response you
//!   received is a response that survives a crash (when
//!   `sync_every == 1`); effects whose ack never reached you may be
//!   lost, which is exactly the at-most-once contract a client must
//!   already handle.
//! * Recovery ([`Router::recover`]) loads each session's snapshot,
//!   replays the WAL tail through the owning shard, and resumes. The
//!   protocol is deterministic by construction (responses carry no
//!   timing; engines are seeded), so a replayed session is
//!   *byte-identical* to the one that crashed — the property the
//!   kill-and-recover tests pin.
//! * The journaled line is the request body with `deadline_ms`
//!   stripped: a deadline raced against the wall clock at execution
//!   time must not race again (and possibly differently) at replay.
//!
//! The snapshot payload is the session's *replay checkpoint*: the full
//! journaled history as a JSON array of request lines. That makes
//! snapshot+tail recovery and live migration the same operation —
//! [`Router::migrate_session`] drains the session (its per-session
//! journal lock serializes every request), checkpoints, replays the
//! checkpoint on the target shard, and repoints the ring override.
//!
//! Lock order: the per-session journal lock is taken *before* the
//! shard executes, and held across execute → journal append → fsync.
//! That single lock guarantees WAL order equals execution order and
//! that no second request for the same session can be acked ahead of
//! an earlier one's durability. Different sessions proceed in
//! parallel — the lock is per-name.

use crate::protocol::{ok_response, Op, Request};
use crate::server::{Server, ServerConfig};
use copycat_store::{Fs, RecoveryReport, SessionStore, StoreStats};
use copycat_util::hash::{FxHashMap, FxHasher};
use copycat_util::json::{self, Json};
use copycat_util::sync::Mutex;
use copycat_util::zjson::{ZDoc, ZRef};
use std::cell::RefCell;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-thread parse scratch for the router's own envelope peek —
    /// warm, routing a request allocates nothing on the parse side.
    /// Shard servers pool their own scratch, so no re-entrancy.
    static ROUTER_DOC: RefCell<ZDoc> = RefCell::new(ZDoc::new());
}

/// Sizing and durability knobs for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// In-process serve shards.
    pub shards: usize,
    /// Ring vnodes per shard (more = smoother balance).
    pub vnodes: usize,
    /// Per-shard server sizing.
    pub server: ServerConfig,
    /// Root directory for session stores; `None` = ephemeral (no
    /// durability, placement and migration still work).
    pub store_root: Option<PathBuf>,
    /// Snapshot + compact the WAL after this many records since the
    /// last checkpoint.
    pub snapshot_every: u64,
    /// Group-commit width: fsync after this many journaled records.
    /// `1` = strict ack durability (every acked effect survives a
    /// crash); larger values trade the tail of un-synced acks for
    /// fewer fsyncs.
    pub sync_every: u64,
    /// Snapshot + compact once this many bytes have been synced to a
    /// session's WAL since its last checkpoint — the record-size-blind
    /// bound on log growth (`snapshot_every` alone lets huge records
    /// grow the log without limit).
    pub max_wal_bytes: u64,
    /// Filesystem every store I/O goes through: [`Fs::real`] in
    /// production, a seeded [`copycat_store::SimFs`] in fault tests.
    pub fs: Fs,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            vnodes: 16,
            server: ServerConfig::default(),
            store_root: None,
            snapshot_every: 64,
            sync_every: 1,
            max_wal_bytes: 1 << 20,
            fs: Fs::real(),
        }
    }
}

impl RouterConfig {
    /// An ephemeral (no-durability) router with `shards` shards.
    pub fn ephemeral(shards: usize) -> RouterConfig {
        RouterConfig { shards, ..RouterConfig::default() }
    }

    /// A durable router journaling under `root`.
    pub fn durable(shards: usize, root: impl Into<PathBuf>) -> RouterConfig {
        RouterConfig { shards, store_root: Some(root.into()), ..RouterConfig::default() }
    }
}

/// One session's durability state, guarded as a unit by its own mutex:
/// holding it serializes execute → append → sync for that session.
struct SessionJournal {
    /// Every journaled request line since session creation — the
    /// replay checkpoint. Snapshot payloads serialize this verbatim.
    history: Vec<String>,
    /// The on-disk WAL + snapshot pair (`None` on ephemeral routers).
    store: Option<SessionStore>,
    /// Journaled records not yet fsynced (group commit).
    pending_sync: u64,
}

/// What a [`Router::migrate_session`] call moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Source shard index.
    pub from: usize,
    /// Target shard index.
    pub to: usize,
    /// Checkpoint length replayed onto the target.
    pub replayed: usize,
}

/// A consistent-hash router over N serve shards with per-session
/// WAL + snapshot durability. See the module docs for the contract.
pub struct Router {
    shards: Vec<Server>,
    /// Sorted `(ring point, shard)` pairs.
    ring: Vec<(u64, usize)>,
    /// Migration overrides: session name → shard, consulted before
    /// the ring.
    placed: Mutex<FxHashMap<String, usize>>,
    sessions: Mutex<FxHashMap<String, Arc<Mutex<SessionJournal>>>>,
    config: RouterConfig,
    migrations: AtomicU64,
    replayed_records: AtomicU64,
    recovered_sessions: AtomicU64,
    torn_bytes: AtomicU64,
    /// Interior WAL records quarantined across all recoveries.
    quarantined_records: AtomicU64,
    /// Interior WAL bytes quarantined across all recoveries.
    quarantined_bytes: AtomicU64,
    /// Snapshot generations skipped as corrupt across all recoveries.
    generations_skipped: AtomicU64,
    /// Sessions whose recovery failed outright (state left on disk,
    /// session not resumed).
    recovery_failures: AtomicU64,
    /// Journal fsyncs that returned an error (the batch stays buffered
    /// and retries with the next record).
    sync_failures: AtomicU64,
    /// Checkpoint installs that returned an error (the WAL keeps
    /// growing until one succeeds).
    snapshot_failures: AtomicU64,
    /// Per-session recovery reports from the last [`Router::recover`]
    /// (session name → typed loss accounting).
    recovery_reports: Mutex<Vec<(String, RecoveryReport)>>,
}

fn hash64(s: &str) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

fn build_ring(shards: usize, vnodes: usize) -> Vec<(u64, usize)> {
    let mut ring: Vec<(u64, usize)> = (0..shards)
        .flat_map(|s| (0..vnodes.max(1)).map(move |v| (hash64(&format!("shard-{s}/vnode-{v}")), s)))
        .collect();
    ring.sort_unstable();
    ring
}

thread_local! {
    /// Scratch for classifying *response* lines. Distinct from
    /// [`ROUTER_DOC`], which is still mutably borrowed by the request
    /// view when responses get classified.
    static RESPONSE_DOC: RefCell<ZDoc> = RefCell::new(ZDoc::new());
}

/// Parse a response line into the response scratch doc and hand the
/// root to `f`. `None` on unparseable input.
fn with_response_root<R>(resp: &str, f: impl FnOnce(Option<ZRef<'_>>) -> R) -> R {
    RESPONSE_DOC.with(|cell| match cell.try_borrow_mut() {
        Ok(mut doc) => f(doc.parse(resp).ok()),
        // Unreachable re-entrancy guard: never poison the scratch.
        Err(_) => {
            let mut doc = ZDoc::new();
            f(doc.parse(resp).ok())
        }
    })
}

/// Whether the *top-level* `ok` member of a response is `true`.
/// Structural on purpose: a payload that happens to contain the text
/// `"ok":true` (an echoed request, an error message quoting a
/// response) must not count.
fn response_ok(resp: &str) -> bool {
    with_response_root(resp, |root| {
        root.and_then(|r| r.get("ok")).and_then(|v| v.as_bool()) == Some(true)
    })
}

/// Whether a response proves the request *reached a session and ran*.
/// Refused work (queue full, draining, unknown session, duplicate
/// create) and requests that timed out before execution left no trace
/// to replay; everything else — including `bad_request` after partial
/// parameter validation and `unavailable` answers that advanced
/// breaker machines — must be journaled, because replaying it
/// reproduces the same state transitions. Classification only reads
/// the top-level envelope (see [`response_ok`] on decoys) and borrows
/// the line — no DOM is built on the journaling path.
fn response_is_effectful(resp: &str) -> bool {
    with_response_root(resp, |root| {
        let Some(root) = root else { return true };
        if root.get("ok").and_then(|v| v.as_bool()) == Some(true) {
            return true;
        }
        let error = root.get("error");
        let field = |key: &str| error.and_then(|e| e.get(key)).and_then(|v| v.as_str());
        match field("kind").unwrap_or("") {
            "overloaded" | "shutting_down" | "no_such_session" | "session_exists" => false,
            // Queued/lock-wait timeouts never touched the engine; an
            // execution timeout kept its effects (a consistent prefix).
            "timeout" => field("message") == Some("deadline exceeded during execution"),
            _ => true,
        }
    })
}

/// The journaled form of a request: its body with the `deadline_ms`
/// envelope stripped, so replay cannot re-race the wall clock. The
/// line is re-serialized canonically (same bytes `Json` would emit).
fn logged_line(req: &Request) -> String {
    let mut out = String::with_capacity(req.body.raw().len());
    if req.body.is_obj() {
        out.push('{');
        let mut first = true;
        for (k, v) in req.body.entries() {
            if k == "deadline_ms" {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            json::write_escaped(&mut out, k);
            out.push(':');
            v.write(&mut out);
        }
        out.push('}');
    } else {
        req.body.write(&mut out);
    }
    out
}

/// The snapshot payload: the journaled history as a JSON string array.
fn checkpoint_payload(history: &[String]) -> String {
    Json::Arr(history.iter().map(|l| Json::str(l.as_str())).collect()).to_string()
}

fn parse_checkpoint(payload: &str) -> Vec<String> {
    Json::parse(payload)
        .ok()
        .and_then(|j| {
            j.as_array().map(|items| {
                items.iter().filter_map(|v| v.as_str().map(str::to_string)).collect()
            })
        })
        .unwrap_or_default()
}

/// On-disk directory for one session: a sanitized prefix for humans
/// plus the full-name hash for uniqueness (two names that sanitize
/// identically still get distinct directories).
fn session_dir(root: &Path, name: &str) -> PathBuf {
    let mut sanitized: String = name
        .chars()
        .take(40)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if sanitized.is_empty() {
        sanitized.push('s');
    }
    root.join(format!("{sanitized}-{:08x}", hash64(name) & 0xffff_ffff))
}

/// Sidecar recording the raw session name (directory names are lossy).
const NAME_FILE: &str = "name";

impl Router {
    /// A router with fresh shards and an empty ring placement.
    pub fn new(config: RouterConfig) -> Router {
        let shards = (0..config.shards.max(1))
            .map(|_| Server::new(config.server.clone()))
            .collect::<Vec<_>>();
        let ring = build_ring(shards.len(), config.vnodes);
        Router {
            shards,
            ring,
            placed: Mutex::new(FxHashMap::default()),
            sessions: Mutex::new(FxHashMap::default()),
            config,
            migrations: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
            recovered_sessions: AtomicU64::new(0),
            torn_bytes: AtomicU64::new(0),
            quarantined_records: AtomicU64::new(0),
            quarantined_bytes: AtomicU64::new(0),
            generations_skipped: AtomicU64::new(0),
            recovery_failures: AtomicU64::new(0),
            sync_failures: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            recovery_reports: Mutex::new(Vec::new()),
        }
    }

    /// Rebuild a router from whatever `config.store_root` holds: for
    /// every session directory, load the newest verifiable snapshot
    /// generation, replay it plus the WAL tail through the owning
    /// shard, and resume with the store positioned to keep appending.
    /// Torn tails, quarantined interior records, and skipped snapshot
    /// generations are counted (and surfaced per-session via
    /// [`recovery_reports`](Router::recovery_reports)), never fatal. A
    /// session whose recovery fails outright is skipped — its state
    /// stays on disk for inspection — and counted; one rotten tenant
    /// must not take the router down.
    pub fn recover(config: RouterConfig) -> std::io::Result<Router> {
        let router = Router::new(config);
        let Some(root) = router.config.store_root.clone() else {
            return Ok(router);
        };
        let fs = router.config.fs.clone();
        if !fs.exists(&root) {
            return Ok(router);
        }
        let mut dirs: Vec<PathBuf> = fs.list_dirs(&root)?;
        dirs.sort(); // deterministic recovery order
        for dir in dirs {
            let Ok(name_bytes) = fs.read(&dir.join(NAME_FILE)) else {
                continue; // not a session directory
            };
            let Ok(name) = String::from_utf8(name_bytes) else {
                continue;
            };
            // The sidecar itself can be a casualty (a short write left a
            // truncated name). The directory name embeds the full-name
            // hash, so a name that doesn't map back to its own directory
            // is corrupt — resurrecting the session under a wrong name
            // would be a silent identity swap. Count it as a failed
            // recovery and leave the state on disk.
            if session_dir(&root, &name) != dir {
                // relaxed: monotone recovery counter, stats() only
                router.recovery_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let (store, recovery) = match SessionStore::recover(&fs, &dir) {
                Ok(pair) => pair,
                Err(_) => {
                    // relaxed: monotone recovery counter, stats() only
                    router.recovery_failures.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let mut history: Vec<String> =
                recovery.snapshot.as_deref().map(parse_checkpoint).unwrap_or_default();
            history.extend(recovery.tail.iter().cloned());
            let report = recovery.report;
            // relaxed: monotone recovery counters, read only by stats()
            router.torn_bytes.fetch_add(report.torn_tail_bytes, Ordering::Relaxed);
            router
                .quarantined_records
                // relaxed: monotone recovery counter, stats() only
                .fetch_add(report.quarantined.len() as u64, Ordering::Relaxed);
            router
                .quarantined_bytes
                // relaxed: monotone recovery counter, stats() only
                .fetch_add(report.quarantined_bytes, Ordering::Relaxed);
            router
                .generations_skipped
                // relaxed: monotone recovery counter, stats() only
                .fetch_add(report.generations_skipped, Ordering::Relaxed);
            let shard = router.ring_shard(&name);
            for line in &history {
                let _ = router.shards[shard].handle_line(line);
            }
            router
                .replayed_records
                // relaxed: monotone recovery counter, stats() only
                .fetch_add(history.len() as u64, Ordering::Relaxed);
            // relaxed: monotone recovery counter, stats() only
            router.recovered_sessions.fetch_add(1, Ordering::Relaxed);
            router.recovery_reports.lock().push((name.clone(), report));
            router.sessions.lock().insert(
                name,
                Arc::new(Mutex::new(SessionJournal {
                    history,
                    store: Some(store),
                    pending_sync: 0,
                })),
            );
        }
        Ok(router)
    }

    /// Per-session typed loss accounting from the last
    /// [`recover`](Router::recover), in recovery order.
    pub fn recovery_reports(&self) -> Vec<(String, RecoveryReport)> {
        self.recovery_reports.lock().clone()
    }

    /// The journaled history for one session — the exact replay
    /// checkpoint, in WAL order (test/verification introspection; the
    /// crash-storm sweep diffs this byte-for-byte against what it
    /// acked).
    pub fn journal_history(&self, name: &str) -> Option<Vec<String>> {
        let entry = { self.sessions.lock().get(name).map(Arc::clone) };
        entry.map(|e| e.lock().history.clone())
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (test/bench introspection).
    pub fn shard(&self, i: usize) -> &Server {
        &self.shards[i]
    }

    /// Where `name` currently lives: a migration override if one
    /// exists, otherwise its ring interval.
    pub fn shard_of(&self, name: &str) -> usize {
        if let Some(&s) = self.placed.lock().get(name) {
            return s;
        }
        self.ring_shard(name)
    }

    fn ring_shard(&self, name: &str) -> usize {
        let h = hash64(name);
        let i = match self.ring.binary_search(&(h, usize::MAX)) {
            Ok(i) => i,
            Err(i) => i % self.ring.len(),
        };
        self.ring[i].1
    }

    fn journal_entry(&self, name: &str) -> Arc<Mutex<SessionJournal>> {
        let mut map = self.sessions.lock();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(SessionJournal {
                history: Vec::new(),
                store: None,
                pending_sync: 0,
            }))
        }))
    }

    /// Handle one request line, blocking until its response line —
    /// the same contract as [`Server::handle_line`], with placement
    /// and durability layered on.
    pub fn handle_line(&self, line: &str) -> String {
        ROUTER_DOC.with(|cell| match cell.try_borrow_mut() {
            Ok(mut doc) => self.route_line(&mut doc, line),
            // Unreachable re-entrancy guard: never poison the scratch.
            Err(_) => self.route_line(&mut ZDoc::new(), line),
        })
    }

    fn route_line(&self, doc: &mut ZDoc, line: &str) -> String {
        let req = match Request::parse(doc, line) {
            // Unparseable requests go to shard 0 for the identical
            // bad_request answer (and its `invalid` metrics class).
            Err(_) => return self.shards[0].handle_line(line),
            Ok(r) => r,
        };
        match req.op {
            Op::Shutdown => {
                for s in &self.shards {
                    let _ = s.handle_line(line);
                }
                return ok_response(
                    req.id,
                    &Json::obj(vec![("draining".into(), Json::Bool(true))]),
                );
            }
            Op::ListSessions => {
                let mut names: Vec<String> =
                    self.shards.iter().flat_map(|s| s.registry().names()).collect();
                names.sort();
                let listed = Json::Arr(names.iter().map(|n| Json::str(n.as_str())).collect());
                return ok_response(req.id, &Json::obj(vec![("sessions".into(), listed)]));
            }
            Op::Stats => return ok_response(req.id, &self.stats()),
            _ => {}
        }
        let Some(name) = req.session else {
            // Session-less ops (ping) are stateless; any shard answers.
            return self.shards[0].handle_line(line);
        };
        // Every session-scoped op serializes on the journal lock: it
        // orders the WAL like execution, and it is what `migrate_session`
        // drains against (reads included — a read racing a migration
        // must not land on the vacated shard).
        let journal = self.journal_entry(name);
        let mut j = journal.lock();
        let shard_idx = self.shard_of(name);
        // lint:allow(guard-across-blocking) by design: WAL order must equal execution order, so the journal lock spans the shard call (which blocks on the worker reply channel)
        let resp = self.shards[shard_idx].handle_line(line); // lint:allow(lock-order) name-based call graph merges Router::handle_line into this call; shards never lock router journals
        if req.op == Op::CloseSession {
            if response_ok(&resp) {
                // A durably *closed* session: remove its journal and
                // its on-disk state (idempotent), and forget overrides.
                if let Some(root) = &self.config.store_root {
                    let _ = SessionStore::destroy(&self.config.fs, &session_dir(root, name));
                }
                j.history.clear();
                j.store = None;
                self.sessions.lock().remove(name);
                self.placed.lock().remove(name);
            }
            return resp;
        }
        if req.op.mutates() && response_is_effectful(&resp) {
            let logged = logged_line(&req);
            j.history.push(logged.clone());
            if let Some(root) = self.config.store_root.clone() {
                self.journal_durably(name, &root, &mut j, &logged);
            }
        }
        resp
    }

    /// Append one record to the session's store — creating it on the
    /// first record — group-commit per `sync_every`, and checkpoint
    /// per `snapshot_every`. Called with the journal lock held, after
    /// execution, before the response is released: the write-ahead is
    /// of the *acknowledgment*, not the execution.
    fn journal_durably(
        &self,
        name: &str,
        root: &Path,
        j: &mut SessionJournal,
        logged: &str,
    ) {
        if j.store.is_none() {
            let dir = session_dir(root, name);
            match SessionStore::create(&self.config.fs, &dir) {
                Ok(store) => {
                    // Durable on purpose: a crash that truncated an
                    // unsynced sidecar would leave the session's WAL
                    // unrecoverable (the name no longer hashes back to
                    // its directory). One fsync per session creation.
                    let _ = self.config.fs.write_sync(&dir.join(NAME_FILE), name.as_bytes());
                    j.store = Some(store);
                }
                Err(_) => return, // ephemeral fallback; never fail the request
            }
        }
        let Some(store) = j.store.as_mut() else { return };
        store.append(logged);
        j.pending_sync += 1;
        if j.pending_sync >= self.config.sync_every.max(1) {
            // On failure the batch stays in the WAL's group-commit
            // buffer and `pending_sync` stays up, so the very next
            // journaled record retries the whole batch.
            if store.sync().is_ok() {
                j.pending_sync = 0;
            } else {
                // relaxed: monotone failure counter, stats() only
                self.sync_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        if store.records_since_snapshot() >= self.config.snapshot_every.max(1)
            || store.wal_bytes_since_snapshot() >= self.config.max_wal_bytes.max(1)
        {
            if store.snapshot(&checkpoint_payload(&j.history)).is_ok() {
                j.pending_sync = 0;
            } else {
                // The WAL keeps every record; the next journaled
                // record re-trips the trigger and retries.
                // relaxed: monotone failure counter, stats() only
                self.snapshot_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Handle one binary-framed request (see [`crate::frame`]) with
    /// placement and durability layered on, returning the framed
    /// response.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        crate::frame::handle_with(frame, |line| self.handle_line(line))
    }

    /// [`handle_line`](Router::handle_line) plus response parsing.
    pub fn handle(&self, line: &str) -> Json {
        // lint:allow(panic-path) test/script convenience on router-produced JSON, not a request path
        Json::parse(&self.handle_line(line)).expect("router responses are valid JSON")
    }

    /// Move a live session to another shard: **drain** (the journal
    /// lock blocks every request for this session), **checkpoint**
    /// (durable consistency point when a store exists), **transfer**
    /// (replay the checkpoint on the target shard), **resume** (repoint
    /// the placement override and release the lock).
    pub fn migrate_session(&self, name: &str, to: usize) -> Result<MigrationReport, String> {
        if to >= self.shards.len() {
            return Err(format!("no shard {to} (router has {})", self.shards.len()));
        }
        let journal = self.journal_entry(name);
        let mut j = journal.lock();
        let from = self.shard_of(name);
        if j.history.is_empty() {
            return Err(format!("no journaled session named {name:?}"));
        }
        if from == to {
            return Ok(MigrationReport { from, to, replayed: 0 });
        }
        let payload = checkpoint_payload(&j.history);
        if let Some(store) = j.store.as_mut() {
            store
                .snapshot(&payload)
                .map_err(|e| format!("checkpoint failed: {e}"))?;
            j.pending_sync = 0;
        }
        for line in &j.history {
            // lint:allow(guard-across-blocking) replay under the journal lock IS the migration barrier: no new writes may interleave with the transfer
            let _ = self.shards[to].handle_line(line); // lint:allow(lock-order) false re-acquire from the Router::handle_line name merge; shards never lock router journals
        }
        // Vacate the source copy. Direct shard call: migration is an
        // administrative move, not a journaled protocol event.
        let close = Json::obj(vec![
            ("op".into(), Json::str("close_session")),
            ("session".into(), Json::str(name)),
        ])
        .to_string();
        // lint:allow(guard-across-blocking) the vacate close must land before the placement flips, still under the migration barrier
        let _ = self.shards[from].handle_line(&close); // lint:allow(lock-order) same Router::handle_line name merge as the replay loop above
        self.placed.lock().insert(name.to_string(), to);
        // relaxed: monotone stat; no reader reconciles it against state
        self.migrations.fetch_add(1, Ordering::Relaxed);
        Ok(MigrationReport { from, to, replayed: j.history.len() })
    }

    /// Merged router-level stats: placement, durability accounting,
    /// and every shard's own metrics snapshot under `"shards"`.
    pub fn stats(&self) -> Json {
        let mut sessions = 0usize;
        let mut durable = StoreStats::default();
        let mut with_store = 0usize;
        {
            let map = self.sessions.lock();
            for entry in map.values() {
                let j = entry.lock();
                sessions += 1;
                if let Some(store) = &j.store {
                    let s = store.stats();
                    with_store += 1;
                    durable.appends += s.appends;
                    durable.snapshots += s.snapshots;
                    durable.sync.syncs += s.sync.syncs;
                    durable.sync.records_synced += s.sync.records_synced;
                    durable.sync.bytes_synced += s.sync.bytes_synced;
                    durable.sync.sync_micros += s.sync.sync_micros;
                }
            }
        }
        let shard_stats: Vec<Json> = self
            .shards
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("sessions".into(), Json::Num(s.registry().len() as f64)),
                    ("metrics".into(), s.metrics().snapshot_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("shards".into(), Json::Arr(shard_stats)),
            ("sessions".into(), Json::Num(sessions as f64)),
            (
                "placement".into(),
                Json::obj(vec![
                    ("ring_points".into(), Json::Num(self.ring.len() as f64)),
                    (
                        "overrides".into(),
                        Json::Num(self.placed.lock().len() as f64),
                    ),
                    (
                        "migrations".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.migrations.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "durability".into(),
                Json::obj(vec![
                    ("stores".into(), Json::Num(with_store as f64)),
                    ("appends".into(), Json::Num(durable.appends as f64)),
                    ("snapshots".into(), Json::Num(durable.snapshots as f64)),
                    ("syncs".into(), Json::Num(durable.sync.syncs as f64)),
                    (
                        "records_synced".into(),
                        Json::Num(durable.sync.records_synced as f64),
                    ),
                    (
                        "bytes_synced".into(),
                        Json::Num(durable.sync.bytes_synced as f64),
                    ),
                    (
                        "replayed_records".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.replayed_records.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "recovered_sessions".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.recovered_sessions.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "torn_bytes".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.torn_bytes.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "quarantined_records".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.quarantined_records.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "quarantined_bytes".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.quarantined_bytes.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "generations_skipped".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.generations_skipped.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "recovery_failures".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.recovery_failures.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "sync_failures".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.sync_failures.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "snapshot_failures".into(),
                        // relaxed: stats snapshot of a monotone counter
                        Json::Num(self.snapshot_failures.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Graceful shutdown: flush every journal, then drain every shard.
    /// Dropping a `Router` *without* calling this is the crash
    /// simulation the recovery tests use — buffered (un-synced)
    /// journal records are lost, synced ones survive.
    pub fn shutdown(self) {
        {
            let map = self.sessions.lock();
            for entry in map.values() {
                let mut j = entry.lock();
                if let Some(store) = j.store.as_mut() {
                    let _ = store.sync();
                }
                j.pending_sync = 0;
            }
        }
        for s in self.shards {
            s.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copycat-router-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_lookup_is_consistent_and_total() {
        let r = Router::new(RouterConfig::ephemeral(4));
        for i in 0..200 {
            let name = format!("tenant-{i}");
            let a = r.shard_of(&name);
            let b = r.shard_of(&name);
            assert_eq!(a, b, "placement is a function of the name");
            assert!(a < 4);
        }
        // With vnodes, 200 tenants should not all collapse onto one
        // shard.
        let mut counts = [0usize; 4];
        for i in 0..200 {
            counts[r.shard_of(&format!("tenant-{i}"))] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all shards used: {counts:?}");
    }

    #[test]
    fn growing_the_ring_moves_only_an_interval_fraction() {
        let small = Router::new(RouterConfig::ephemeral(4));
        let big = Router::new(RouterConfig::ephemeral(5));
        let moved = (0..400)
            .filter(|i| {
                let name = format!("tenant-{i}");
                small.shard_of(&name) != big.shard_of(&name)
            })
            .count();
        // Consistent hashing: ~1/5 of keys move when a fifth shard
        // joins; naive modulo would move ~4/5. Allow generous slack.
        assert!(moved < 200, "only an interval moved, not the world: {moved}/400");
        small.shutdown();
        big.shutdown();
    }

    #[test]
    fn effectful_classification_matches_the_protocol() {
        assert!(response_is_effectful(r#"{"id":1,"ok":true,"result":{}}"#));
        assert!(response_is_effectful(
            r#"{"id":1,"ok":false,"error":{"kind":"bad_request","message":"x"}}"#
        ));
        assert!(response_is_effectful(
            r#"{"id":1,"ok":false,"error":{"kind":"unavailable","message":"x"}}"#
        ));
        assert!(response_is_effectful(
            r#"{"id":1,"ok":false,"error":{"kind":"timeout","message":"deadline exceeded during execution"}}"#
        ));
        for refused in [
            r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"x"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"shutting_down","message":"x"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"no_such_session","message":"x"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"session_exists","message":"x"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"timeout","message":"deadline exceeded while queued"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"timeout","message":"deadline exceeded awaiting session"}}"#,
        ] {
            assert!(!response_is_effectful(refused), "{refused}");
        }
    }

    #[test]
    fn decoy_ok_true_text_in_payloads_does_not_flip_classification() {
        // The classifiers are structural: `"ok":true` appearing as
        // *text* inside a message or echoed value must not make a
        // refused response look effectful (journaling a refusal would
        // replay a request the engine never ran).
        let decoys = [
            r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"retry {\"ok\":true} later"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"no_such_session","message":"\"ok\":true"}}"#,
            r#"{"id":1,"ok":false,"error":{"kind":"session_exists","message":"client sent \"ok\":true"}}"#,
        ];
        for resp in decoys {
            assert!(!response_is_effectful(resp), "{resp}");
            assert!(!response_ok(resp), "{resp}");
        }
        // A nested object member named `ok` is not the top-level one.
        let nested = r#"{"id":1,"ok":false,"error":{"kind":"shutting_down","message":"x","detail":{"ok":true}}}"#;
        assert!(!response_is_effectful(nested));
        assert!(!response_ok(nested));
        // And the genuine envelope still classifies.
        assert!(response_ok(r#"{"id":1,"ok":true,"result":{"note":"\"ok\":false"}}"#));
    }

    #[test]
    fn decoy_close_response_does_not_destroy_the_journal() {
        // A failed close (no such session on the shard) whose error
        // message quotes `"ok":true` must leave durable state alone:
        // the close path keys journal destruction on `response_ok`.
        let root = temp_root("decoy-close");
        let router = Router::new(RouterConfig::durable(2, root.clone()));
        let ok = router.handle_line(r#"{"id":1,"op":"create_session","session":"keep"}"#);
        assert!(response_ok(&ok), "{ok}");
        let paste = router.handle_line(
            r#"{"id":2,"op":"open_doc","session":"keep","name":"D","headers":["A"],"rows":[["x"]]}"#,
        );
        assert!(response_ok(&paste), "{paste}");
        // Closing a *different* session fails; state for `keep` stays.
        let refused = router.handle_line(r#"{"id":3,"op":"close_session","session":"gone"}"#);
        assert!(!response_ok(&refused), "{refused}");
        let stats = router.handle_line(r#"{"id":4,"op":"session_stats","session":"keep"}"#);
        assert!(response_ok(&stats), "{stats}");
        router.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn deadline_is_stripped_from_the_journal() {
        let mut doc = ZDoc::new();
        let req = Request::parse(
            &mut doc,
            r#"{"id":9,"op":"paste","session":"s","doc":0,"values":["a"],"deadline_ms":250}"#,
        )
        .unwrap();
        let logged = logged_line(&req);
        assert!(!logged.contains("deadline_ms"), "{logged}");
        assert!(logged.contains("\"values\""), "{logged}");
        // And the journaled line is still a parseable request.
        let mut redoc = ZDoc::new();
        assert!(Request::parse(&mut redoc, &logged).is_ok());
    }

    #[test]
    fn session_dirs_are_unique_even_when_sanitization_collides() {
        let root = Path::new("/tmp/x");
        let a = session_dir(root, "a/b");
        let b = session_dir(root, "a.b");
        assert_ne!(a, b);
        assert!(a.file_name().unwrap().to_str().unwrap().starts_with("a_b-"));
    }

    #[test]
    fn checkpoint_payload_round_trips() {
        let history = vec![
            r#"{"op":"create_session","session":"s"}"#.to_string(),
            r#"{"op":"paste","session":"s","values":["a","b"]}"#.to_string(),
        ];
        assert_eq!(parse_checkpoint(&checkpoint_payload(&history)), history);
        assert_eq!(parse_checkpoint("not json"), Vec::<String>::new());
    }
}
