//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response per line, in order. A request is
//! a JSON object:
//!
//! ```json
//! {"id": 7, "op": "autocomplete", "session": "alice",
//!  "values": ["7782 Cypress Ave", "(954) 555-7735"], "k": 3,
//!  "deadline_ms": 250}
//! ```
//!
//! `id` is echoed verbatim in the response so clients can pipeline.
//! `deadline_ms` is an optional per-request budget: queue wait, lock
//! wait, execution, and any *virtual* service latency accrued by
//! [`copycat_services::Flaky`] probes all draw from it, and the server
//! checks it at operator boundaries (dequeue, post-lookup, post-engine).
//!
//! A response is `{"id": …, "ok": true, "result": {…}}` or
//! `{"id": …, "ok": false, "error": {"kind": "…", "message": "…"}}`.
//! Error kinds are closed (see [`ErrorKind`]) so clients can switch on
//! them; `overloaded` and `timeout` are the backpressure/deadline
//! signals, never conflated with `internal`.
//!
//! Parsing is **zero-copy**: [`Request`] is a borrowed view over the
//! request line, built on [`copycat_util::zjson`]'s flat DOM. String
//! parameters are slices of the line (or of the parse arena, when they
//! contained escapes); the id is echoed as the verbatim input slice; a
//! warm parse of a hot-path request performs no heap allocation. The
//! backing `(ZDoc, line)` pair is owned by whoever carries the request
//! across threads (see [`crate::pool::Job`]) and pooled for reuse by
//! the server's front door. Responses are assembled in a thread-local
//! scratch buffer and copied out once at exact size.

use copycat_util::json::{self, Json, JsonError};
use copycat_util::zjson::{ZDoc, ZRef};
use std::cell::RefCell;

/// Every request class the server speaks. One histogram + counter set
/// per class lives in the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Create a named session.
    CreateSession,
    /// Restore a session from a `save_session` snapshot.
    LoadSession,
    /// Snapshot a session (JSON string, reloadable).
    SaveSession,
    /// Drop a session.
    CloseSession,
    /// Names of live sessions.
    ListSessions,
    /// Register an in-memory spreadsheet document.
    OpenDoc,
    /// Paste an example row from a document (import mode).
    Paste,
    /// Accept all suggested rows.
    AcceptRows,
    /// Rename a column.
    NameColumn,
    /// Pick a column's semantic type.
    SetColumnType,
    /// Commit the active tab as a named source.
    CommitSource,
    /// Register the seeded simulated-service bundle.
    RegisterWorld,
    /// Re-register one world service wrapped in fault injection.
    RegisterFlaky,
    /// Ranked column auto-completions for the active query.
    ColumnSuggestions,
    /// Accept a previously returned column suggestion by index.
    AcceptColumn,
    /// Reject a previously returned column suggestion by index.
    RejectColumn,
    /// Discover ranked queries for a pasted tuple (the Steiner path).
    Autocomplete,
    /// Prefer one discovered query over others (MIRA feedback).
    Feedback,
    /// Explain a row's provenance.
    Explain,
    /// Export the active tab (csv/json/xml).
    Export,
    /// Render the active tab as text.
    Render,
    /// Per-service health: breaker states, retry/trip counters,
    /// observed failure rates, and virtual backoff charged.
    Health,
    /// Per-session cache stats and view-state depth.
    SessionStats,
    /// Learn a string-transform program from example pairs and add it
    /// as a graph edge.
    LearnTransform,
    /// List the session's learned transform edges.
    ListTransforms,
    /// Server-wide metrics snapshot.
    Stats,
    /// Begin a graceful shutdown (stop admitting, drain in-flight).
    Shutdown,
    /// Synthetic class for unparseable requests, so rejects are
    /// observable in the metrics too. Never parsed from the wire.
    Invalid,
}

impl Op {
    /// Every class, in protocol order (metrics iteration order).
    pub const ALL: [Op; 29] = [
        Op::Ping,
        Op::CreateSession,
        Op::LoadSession,
        Op::SaveSession,
        Op::CloseSession,
        Op::ListSessions,
        Op::OpenDoc,
        Op::Paste,
        Op::AcceptRows,
        Op::NameColumn,
        Op::SetColumnType,
        Op::CommitSource,
        Op::RegisterWorld,
        Op::RegisterFlaky,
        Op::ColumnSuggestions,
        Op::AcceptColumn,
        Op::RejectColumn,
        Op::Autocomplete,
        Op::Feedback,
        Op::Explain,
        Op::Export,
        Op::Render,
        Op::Health,
        Op::SessionStats,
        Op::LearnTransform,
        Op::ListTransforms,
        Op::Stats,
        Op::Shutdown,
        Op::Invalid,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::CreateSession => "create_session",
            Op::LoadSession => "load_session",
            Op::SaveSession => "save_session",
            Op::CloseSession => "close_session",
            Op::ListSessions => "list_sessions",
            Op::OpenDoc => "open_doc",
            Op::Paste => "paste",
            Op::AcceptRows => "accept_rows",
            Op::NameColumn => "name_column",
            Op::SetColumnType => "set_column_type",
            Op::CommitSource => "commit_source",
            Op::RegisterWorld => "register_world",
            Op::RegisterFlaky => "register_flaky",
            Op::ColumnSuggestions => "column_suggestions",
            Op::AcceptColumn => "accept_column",
            Op::RejectColumn => "reject_column",
            Op::Autocomplete => "autocomplete",
            Op::Feedback => "feedback",
            Op::Explain => "explain",
            Op::Export => "export",
            Op::Render => "render",
            Op::Health => "health",
            Op::SessionStats => "session_stats",
            Op::LearnTransform => "learn_transform",
            Op::ListTransforms => "list_transforms",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::Invalid => "invalid",
        }
    }

    /// Parse a wire name (`invalid` is internal-only, never accepted).
    pub fn parse(s: &str) -> Option<Op> {
        Op::ALL
            .iter()
            .copied()
            .find(|o| *o != Op::Invalid && o.as_str() == s)
    }

    /// The metrics-table index of this class. [`Op::ALL`] lists the
    /// variants in declaration order, so the discriminant *is* the
    /// table index (asserted by `op_index_matches_all_order`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether a successful request of this class changes session state
    /// that recovery-by-replay must reproduce. This is the write-ahead
    /// log's admission filter: only mutating classes are journaled.
    ///
    /// Note `column_suggestions` and `autocomplete` ARE mutating even
    /// though they look like reads: they record the suggestion/query
    /// lists later feedback refers to by index, advance the query cache
    /// counters, and drive registered services (whose breaker machines,
    /// retry counters and fault-injection rolls all move). Dropping them
    /// from the journal would make a replayed session diverge.
    pub fn mutates(self) -> bool {
        match self {
            Op::CreateSession
            | Op::LoadSession
            | Op::CloseSession
            | Op::OpenDoc
            | Op::Paste
            | Op::AcceptRows
            | Op::NameColumn
            | Op::SetColumnType
            | Op::CommitSource
            | Op::RegisterWorld
            | Op::RegisterFlaky
            | Op::ColumnSuggestions
            | Op::AcceptColumn
            | Op::RejectColumn
            | Op::Autocomplete
            | Op::Feedback
            | Op::LearnTransform => true,
            Op::Ping
            | Op::SaveSession
            | Op::ListSessions
            | Op::ListTransforms
            | Op::Explain
            | Op::Export
            | Op::Render
            | Op::Health
            | Op::SessionStats
            | Op::Stats
            | Op::Shutdown
            | Op::Invalid => false,
        }
    }
}

/// Typed error kinds — a closed vocabulary clients can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, unknown op, or missing/ill-typed parameter.
    BadRequest,
    /// The named session does not exist.
    NoSuchSession,
    /// `create_session` for a name already live.
    SessionExists,
    /// The admission queue is full — retry later (backpressure).
    Overloaded,
    /// The request's deadline elapsed (wall or virtual time).
    Timeout,
    /// The server is draining; no new work admitted.
    ShuttingDown,
    /// A required external service is down or its breaker is open and
    /// no replacement could answer.
    Unavailable,
    /// A handler panicked or an invariant failed.
    Internal,
}

impl ErrorKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NoSuchSession => "no_such_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A parsed request: a borrowed view over one request line. `id` is
/// the verbatim input slice of the id value (`"null"` when absent), so
/// echoing it costs nothing and preserves the client's exact spelling;
/// `session` and every parameter borrow the line or the parse arena.
/// The caller owns the backing [`ZDoc`] + line pair and keeps both
/// alive for as long as the view is used.
#[derive(Debug, Clone, Copy)]
pub struct Request<'d> {
    /// The verbatim id slice, echoed in the response.
    pub id: &'d str,
    /// The request class.
    pub op: Op,
    /// Target session, when the op is session-scoped.
    pub session: Option<&'d str>,
    /// Per-request budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The whole request object (parameter lookup).
    pub body: ZRef<'d>,
}

// The borrowed-view request parse: everything here slices the input
// line or the parse arena. lint:hotpath(begin)
fn envelope<'d>(body: ZRef<'d>) -> (&'d str, Option<&'d str>, Option<u64>) {
    let id = body.get("id").map(|v| v.raw()).unwrap_or("null");
    let session = body.get("session").and_then(|v| v.as_str());
    let deadline_ms = body.get("deadline_ms").and_then(|v| v.as_f64()).map(|v| v as u64);
    (id, session, deadline_ms)
}

impl<'d> Request<'d> {
    /// Parse one request line into `doc`. The error carries the raw id
    /// slice (for the response envelope) and the message.
    pub fn parse(doc: &'d mut ZDoc, line: &'d str) -> Result<Request<'d>, (&'d str, String)> {
        let body = match doc.parse(line) {
            Ok(b) => b,
            // lint:allow(hot-path-alloc) cold arm: malformed input only
            Err(e) => return Err(("null", format!("{e}"))),
        };
        let (id, session, deadline_ms) = envelope(body);
        let Some(op_name) = body.get("op").and_then(|v| v.as_str()) else {
            return Err((id, "missing \"op\"".to_string())); // lint:allow(hot-path-alloc) cold arm: rejected request
        };
        let Some(op) = Op::parse(op_name) else {
            return Err((id, format!("unknown op {op_name:?}"))); // lint:allow(hot-path-alloc) cold arm: rejected request
        };
        Ok(Request { id, op, session, deadline_ms, body })
    }

    /// Rebuild the borrowed view over a doc + line pair that already
    /// parsed successfully — e.g. after both were moved (owned) across
    /// a worker queue. Re-slices the flat DOM; no re-parse. Returns
    /// `None` if the pair never held a parsed request.
    pub fn rejoin(doc: &'d ZDoc, line: &'d str) -> Option<Request<'d>> {
        let body = doc.root(line)?;
        let (id, session, deadline_ms) = envelope(body);
        let op = Op::parse(body.get("op").and_then(|v| v.as_str())?)?;
        Some(Request { id, op, session, deadline_ms, body })
    }
    // lint:hotpath(end)

    fn required(&self, key: &str) -> Result<ZRef<'d>, JsonError> {
        self.body
            .get(key)
            .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
    }

    /// A required string parameter (borrowed from the line or arena).
    pub fn str_param(&self, key: &str) -> Result<&'d str, JsonError> {
        self.required(key)?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a string")))
    }

    /// A required non-negative integer parameter.
    pub fn usize_param(&self, key: &str) -> Result<usize, JsonError> {
        let n = self
            .required(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a number")))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(JsonError::new(format!("{key:?} must be a non-negative integer")));
        }
        Ok(n as usize)
    }

    /// A required number parameter.
    pub fn f64_param(&self, key: &str) -> Result<f64, JsonError> {
        self.required(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a number")))
    }

    /// A required array-of-strings parameter. The strings borrow the
    /// request line; only the spine vector is allocated.
    pub fn strings_param(&self, key: &str) -> Result<Vec<&'d str>, JsonError> {
        let arr = self.required(key)?;
        if !arr.is_arr() {
            return Err(JsonError::new(format!("{key:?} must be an array")));
        }
        arr.items()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| JsonError::new(format!("{key:?} must hold strings")))
            })
            .collect()
    }
}

// Response serialization: pooled scratch in, one exact-size copy out.
// lint:hotpath(begin)
thread_local! {
    /// Per-worker response assembly buffer: responses are serialized
    /// here, then copied out once at exact size, so steady-state
    /// serialization never grows a fresh buffer.
    static RESPONSE_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn with_response_scratch(f: impl FnOnce(&mut String)) -> String {
    RESPONSE_SCRATCH.with(|cell| {
        match cell.try_borrow_mut() {
            Ok(mut out) => {
                out.clear();
                f(&mut out);
                out.as_str().to_owned() // lint:allow(hot-path-alloc) the one exact-size copy-out the scratch design pays for
            }
            // Re-entrant serialization (impossible today): fall back to
            // a fresh buffer rather than failing the response.
            Err(_) => {
                let mut out = String::new();
                f(&mut out);
                out
            }
        }
    })
}

/// Serialize a success response. `id` is the raw id slice (already
/// valid JSON — it came from a parsed request line).
pub fn ok_response(id: &str, result: &Json) -> String {
    with_response_scratch(|out| {
        out.push_str("{\"id\":");
        out.push_str(id);
        out.push_str(",\"ok\":true,\"result\":");
        result.write_compact(out);
        out.push('}');
    })
}

/// Serialize an error response.
pub fn err_response(id: &str, kind: ErrorKind, message: &str) -> String {
    with_response_scratch(|out| {
        out.push_str("{\"id\":");
        out.push_str(id);
        out.push_str(",\"ok\":false,\"error\":{\"kind\":\"");
        out.push_str(kind.as_str());
        out.push_str("\",\"message\":");
        json::write_escaped(out, message);
        out.push_str("}}");
    })
}
// lint:hotpath(end)

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_index_matches_all_order() {
        // `index()` relies on ALL listing variants in declaration
        // order; this pins the invariant for every variant.
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?}");
            assert_eq!(Op::ALL[op.index()], *op);
        }
    }

    #[test]
    fn every_wire_name_round_trips() {
        for op in Op::ALL {
            if op == Op::Invalid {
                assert_eq!(Op::parse(op.as_str()), None);
            } else {
                assert_eq!(Op::parse(op.as_str()), Some(op));
            }
        }
    }

    fn within(outer: &str, inner: &str) -> bool {
        let (o, i) = (outer.as_ptr() as usize, inner.as_ptr() as usize);
        i >= o && i + inner.len() <= o + outer.len()
    }

    #[test]
    fn parse_borrows_the_line_and_echoes_the_id_verbatim() {
        let mut doc = ZDoc::new();
        let line = r#"{"id":1.50,"op":"paste","session":"alice","values":["x"],"deadline_ms":250}"#;
        let req = Request::parse(&mut doc, line).unwrap();
        // Verbatim echo: the client's exact spelling, not a canonical
        // re-serialization ("1.50", not "1.5").
        assert_eq!(req.id, "1.50");
        assert_eq!(req.op, Op::Paste);
        assert_eq!(req.deadline_ms, Some(250));
        // The session and string params are slices INTO the line — no
        // copies were made.
        let session = req.session.unwrap();
        assert_eq!(session, "alice");
        assert!(within(line, session), "session must borrow the line");
        let values = req.strings_param("values").unwrap();
        assert_eq!(values, vec!["x"]);
        assert!(within(line, values[0]), "payload strings must borrow the line");
    }

    #[test]
    fn rejoin_rebuilds_the_view_after_an_owned_move() {
        let mut doc = ZDoc::new();
        let line = r#"{"id":7,"op":"render","session":"s"}"#.to_string();
        assert!(Request::parse(&mut doc, &line).is_ok());
        // Simulate a move across a queue: the doc and line travel as
        // owned values, then the view is re-joined without re-parsing.
        let (doc, line) = (doc, line);
        let req = Request::rejoin(&doc, &line).unwrap();
        assert_eq!(req.id, "7");
        assert_eq!(req.op, Op::Render);
        assert_eq!(req.session, Some("s"));
        // A never-parsed doc has no root.
        assert!(Request::rejoin(&ZDoc::new(), "").is_none());
    }

    #[test]
    fn parse_errors_keep_the_owned_protocol_wording() {
        let mut doc = ZDoc::new();
        let (id, msg) = Request::parse(&mut doc, "this is not json").unwrap_err();
        assert_eq!(id, "null");
        assert_eq!(msg, "json error: invalid literal (expected true) at byte 0");
        let mut doc = ZDoc::new();
        let (id, msg) = Request::parse(&mut doc, r#"{"id":3}"#).unwrap_err();
        assert_eq!(id, "3");
        assert_eq!(msg, "missing \"op\"");
        let mut doc = ZDoc::new();
        let (_, msg) = Request::parse(&mut doc, r#"{"op":"warp"}"#).unwrap_err();
        assert_eq!(msg, "unknown op \"warp\"");
    }

    #[test]
    fn param_errors_keep_the_owned_protocol_wording() {
        let mut doc = ZDoc::new();
        let line = r#"{"op":"ping","n":1.5,"s":"x","a":[1],"b":"y"}"#;
        let req = Request::parse(&mut doc, line).unwrap();
        assert_eq!(req.str_param("missing").unwrap_err().to_string(), "json error: missing field \"missing\"");
        assert_eq!(req.str_param("n").unwrap_err().to_string(), "json error: \"n\" must be a string");
        assert_eq!(req.usize_param("s").unwrap_err().to_string(), "json error: \"s\" must be a number");
        assert_eq!(req.usize_param("n").unwrap_err().to_string(), "json error: \"n\" must be a non-negative integer");
        assert_eq!(req.f64_param("s").unwrap_err().to_string(), "json error: \"s\" must be a number");
        assert_eq!(req.strings_param("b").unwrap_err().to_string(), "json error: \"b\" must be an array");
        assert_eq!(req.strings_param("a").unwrap_err().to_string(), "json error: \"a\" must hold strings");
        assert_eq!(req.f64_param("n").unwrap(), 1.5);
        assert_eq!(req.usize_param("a").unwrap_err().to_string(), "json error: \"a\" must be a number");
    }

    #[test]
    fn responses_serialize_to_the_pinned_wire_shape() {
        assert_eq!(
            ok_response("7", &Json::obj(vec![("pong".into(), Json::Bool(true))])),
            r#"{"id":7,"ok":true,"result":{"pong":true}}"#
        );
        assert_eq!(
            ok_response("\"abc\"", &Json::obj(vec![])),
            r#"{"id":"abc","ok":true,"result":{}}"#
        );
        assert_eq!(
            err_response("null", ErrorKind::BadRequest, "a \"quoted\" reason"),
            r#"{"id":null,"ok":false,"error":{"kind":"bad_request","message":"a \"quoted\" reason"}}"#
        );
    }
}
