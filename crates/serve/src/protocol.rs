//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response per line, in order. A request is
//! a JSON object:
//!
//! ```json
//! {"id": 7, "op": "autocomplete", "session": "alice",
//!  "values": ["7782 Cypress Ave", "(954) 555-7735"], "k": 3,
//!  "deadline_ms": 250}
//! ```
//!
//! `id` is echoed verbatim in the response so clients can pipeline.
//! `deadline_ms` is an optional per-request budget: queue wait, lock
//! wait, execution, and any *virtual* service latency accrued by
//! [`copycat_services::Flaky`] probes all draw from it, and the server
//! checks it at operator boundaries (dequeue, post-lookup, post-engine).
//!
//! A response is `{"id": …, "ok": true, "result": {…}}` or
//! `{"id": …, "ok": false, "error": {"kind": "…", "message": "…"}}`.
//! Error kinds are closed (see [`ErrorKind`]) so clients can switch on
//! them; `overloaded` and `timeout` are the backpressure/deadline
//! signals, never conflated with `internal`.

use copycat_util::json::{Json, JsonError};

/// Every request class the server speaks. One histogram + counter set
/// per class lives in the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Create a named session.
    CreateSession,
    /// Restore a session from a `save_session` snapshot.
    LoadSession,
    /// Snapshot a session (JSON string, reloadable).
    SaveSession,
    /// Drop a session.
    CloseSession,
    /// Names of live sessions.
    ListSessions,
    /// Register an in-memory spreadsheet document.
    OpenDoc,
    /// Paste an example row from a document (import mode).
    Paste,
    /// Accept all suggested rows.
    AcceptRows,
    /// Rename a column.
    NameColumn,
    /// Pick a column's semantic type.
    SetColumnType,
    /// Commit the active tab as a named source.
    CommitSource,
    /// Register the seeded simulated-service bundle.
    RegisterWorld,
    /// Re-register one world service wrapped in fault injection.
    RegisterFlaky,
    /// Ranked column auto-completions for the active query.
    ColumnSuggestions,
    /// Accept a previously returned column suggestion by index.
    AcceptColumn,
    /// Reject a previously returned column suggestion by index.
    RejectColumn,
    /// Discover ranked queries for a pasted tuple (the Steiner path).
    Autocomplete,
    /// Prefer one discovered query over others (MIRA feedback).
    Feedback,
    /// Explain a row's provenance.
    Explain,
    /// Export the active tab (csv/json/xml).
    Export,
    /// Render the active tab as text.
    Render,
    /// Per-service health: breaker states, retry/trip counters,
    /// observed failure rates, and virtual backoff charged.
    Health,
    /// Per-session cache stats and view-state depth.
    SessionStats,
    /// Server-wide metrics snapshot.
    Stats,
    /// Begin a graceful shutdown (stop admitting, drain in-flight).
    Shutdown,
    /// Synthetic class for unparseable requests, so rejects are
    /// observable in the metrics too. Never parsed from the wire.
    Invalid,
}

impl Op {
    /// Every class, in protocol order (metrics iteration order).
    pub const ALL: [Op; 27] = [
        Op::Ping,
        Op::CreateSession,
        Op::LoadSession,
        Op::SaveSession,
        Op::CloseSession,
        Op::ListSessions,
        Op::OpenDoc,
        Op::Paste,
        Op::AcceptRows,
        Op::NameColumn,
        Op::SetColumnType,
        Op::CommitSource,
        Op::RegisterWorld,
        Op::RegisterFlaky,
        Op::ColumnSuggestions,
        Op::AcceptColumn,
        Op::RejectColumn,
        Op::Autocomplete,
        Op::Feedback,
        Op::Explain,
        Op::Export,
        Op::Render,
        Op::Health,
        Op::SessionStats,
        Op::Stats,
        Op::Shutdown,
        Op::Invalid,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::CreateSession => "create_session",
            Op::LoadSession => "load_session",
            Op::SaveSession => "save_session",
            Op::CloseSession => "close_session",
            Op::ListSessions => "list_sessions",
            Op::OpenDoc => "open_doc",
            Op::Paste => "paste",
            Op::AcceptRows => "accept_rows",
            Op::NameColumn => "name_column",
            Op::SetColumnType => "set_column_type",
            Op::CommitSource => "commit_source",
            Op::RegisterWorld => "register_world",
            Op::RegisterFlaky => "register_flaky",
            Op::ColumnSuggestions => "column_suggestions",
            Op::AcceptColumn => "accept_column",
            Op::RejectColumn => "reject_column",
            Op::Autocomplete => "autocomplete",
            Op::Feedback => "feedback",
            Op::Explain => "explain",
            Op::Export => "export",
            Op::Render => "render",
            Op::Health => "health",
            Op::SessionStats => "session_stats",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::Invalid => "invalid",
        }
    }

    /// Parse a wire name (`invalid` is internal-only, never accepted).
    pub fn parse(s: &str) -> Option<Op> {
        Op::ALL
            .iter()
            .copied()
            .find(|o| *o != Op::Invalid && o.as_str() == s)
    }

    /// The metrics-table index of this class. [`Op::ALL`] lists the
    /// variants in declaration order, so the discriminant *is* the
    /// table index (asserted by `op_index_matches_all_order`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether a successful request of this class changes session state
    /// that recovery-by-replay must reproduce. This is the write-ahead
    /// log's admission filter: only mutating classes are journaled.
    ///
    /// Note `column_suggestions` and `autocomplete` ARE mutating even
    /// though they look like reads: they record the suggestion/query
    /// lists later feedback refers to by index, advance the query cache
    /// counters, and drive registered services (whose breaker machines,
    /// retry counters and fault-injection rolls all move). Dropping them
    /// from the journal would make a replayed session diverge.
    pub fn mutates(self) -> bool {
        match self {
            Op::CreateSession
            | Op::LoadSession
            | Op::CloseSession
            | Op::OpenDoc
            | Op::Paste
            | Op::AcceptRows
            | Op::NameColumn
            | Op::SetColumnType
            | Op::CommitSource
            | Op::RegisterWorld
            | Op::RegisterFlaky
            | Op::ColumnSuggestions
            | Op::AcceptColumn
            | Op::RejectColumn
            | Op::Autocomplete
            | Op::Feedback => true,
            Op::Ping
            | Op::SaveSession
            | Op::ListSessions
            | Op::Explain
            | Op::Export
            | Op::Render
            | Op::Health
            | Op::SessionStats
            | Op::Stats
            | Op::Shutdown
            | Op::Invalid => false,
        }
    }
}

/// Typed error kinds — a closed vocabulary clients can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, unknown op, or missing/ill-typed parameter.
    BadRequest,
    /// The named session does not exist.
    NoSuchSession,
    /// `create_session` for a name already live.
    SessionExists,
    /// The admission queue is full — retry later (backpressure).
    Overloaded,
    /// The request's deadline elapsed (wall or virtual time).
    Timeout,
    /// The server is draining; no new work admitted.
    ShuttingDown,
    /// A required external service is down or its breaker is open and
    /// no replacement could answer.
    Unavailable,
    /// A handler panicked or an invariant failed.
    Internal,
}

impl ErrorKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NoSuchSession => "no_such_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A parsed request: the class, the raw body for parameter extraction,
/// and the routing/deadline envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed in the response.
    pub id: Json,
    /// The request class.
    pub op: Op,
    /// Target session, when the op is session-scoped.
    pub session: Option<String>,
    /// Per-request budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The whole request object (parameter lookup).
    pub body: Json,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, (Json, String)> {
        let body = Json::parse(line).map_err(|e| (Json::Null, format!("{e}")))?;
        let id = body.get("id").cloned().unwrap_or(Json::Null);
        let op_name = body
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| (id.clone(), "missing \"op\"".to_string()))?;
        let op = Op::parse(op_name)
            .ok_or_else(|| (id.clone(), format!("unknown op {op_name:?}")))?;
        let session = body.get("session").and_then(Json::as_str).map(str::to_string);
        let deadline_ms = body.get("deadline_ms").and_then(Json::as_f64).map(|v| v as u64);
        Ok(Request { id, op, session, deadline_ms, body })
    }

    /// A required string parameter.
    pub fn str_param(&self, key: &str) -> Result<&str, JsonError> {
        self.body
            .field(key)?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a string")))
    }

    /// A required non-negative integer parameter.
    pub fn usize_param(&self, key: &str) -> Result<usize, JsonError> {
        let n = self
            .body
            .field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a number")))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(JsonError::new(format!("{key:?} must be a non-negative integer")));
        }
        Ok(n as usize)
    }

    /// A required number parameter.
    pub fn f64_param(&self, key: &str) -> Result<f64, JsonError> {
        self.body
            .field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be a number")))
    }

    /// A required array-of-strings parameter.
    pub fn strings_param(&self, key: &str) -> Result<Vec<String>, JsonError> {
        self.body
            .field(key)?
            .as_array()
            .ok_or_else(|| JsonError::new(format!("{key:?} must be an array")))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| JsonError::new(format!("{key:?} must hold strings")))
            })
            .collect()
    }
}

/// Serialize a success response.
pub fn ok_response(id: &Json, result: Json) -> String {
    Json::obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
    .to_string()
}

/// Serialize an error response.
pub fn err_response(id: &Json, kind: ErrorKind, message: &str) -> String {
    Json::obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::obj(vec![
                ("kind".into(), Json::str(kind.as_str())),
                ("message".into(), Json::str(message)),
            ]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_index_matches_all_order() {
        // `index()` relies on ALL listing variants in declaration
        // order; this pins the invariant for every variant.
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?}");
            assert_eq!(Op::ALL[op.index()], *op);
        }
    }

    #[test]
    fn every_wire_name_round_trips() {
        for op in Op::ALL {
            if op == Op::Invalid {
                assert_eq!(Op::parse(op.as_str()), None);
            } else {
                assert_eq!(Op::parse(op.as_str()), Some(op));
            }
        }
    }
}
