//! The bounded worker pool: admission control in front of a fixed set
//! of worker threads.
//!
//! Admission is `try_send` on a bounded [`copycat_util::channel`] —
//! when the queue is full the request is rejected *now* with
//! [`Overloaded`](crate::protocol::ErrorKind::Overloaded) instead of
//! growing an unbounded backlog whose every entry would miss its
//! deadline anyway. Workers drain the queue until every [`Pool`] sender
//! is dropped, then exit — so a graceful shutdown is: stop admitting,
//! drop the sender, join. Every job admitted before the drop still
//! produces its response (the no-dropped-responses half of the
//! shutdown invariant).

use crate::deadline::Deadline;
use crate::protocol::{err_response, ErrorKind, Op};
use copycat_util::channel::{self, Receiver, Sender, TrySendError};
use copycat_util::zjson::ZDoc;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One admitted request: the raw line plus its parsed flat-DOM index
/// (the worker re-joins them into a borrowed
/// [`Request`](crate::protocol::Request) without re-parsing), the small
/// `Copy` envelope extracted at admission, the running deadline, and the
/// rendezvous the submitting caller blocks on.
pub struct Job {
    /// The raw request line, owned across the queue hop.
    pub line: String,
    /// The parse of `line` (spans index into it), moved alongside it.
    pub doc: ZDoc,
    /// The operation, resolved at admission.
    pub op: Op,
    /// Byte span of the verbatim `"id"` value in `line`, if present.
    pub id_span: Option<(u32, u32)>,
    /// The budget, started at admission (queue wait counts).
    pub deadline: Deadline,
    /// Exactly one response line is sent here per job.
    pub reply: SyncSender<String>,
}

impl Job {
    /// The verbatim id slice to echo in responses (`"null"` when the
    /// request carried no id).
    pub fn id_raw(&self) -> &str {
        match self.id_span {
            Some((start, end)) => &self.line[start as usize..end as usize],
            None => "null",
        }
    }
}

/// Why a submission did not enter the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity: backpressure.
    Full,
    /// The pool has shut down.
    Closed,
}

/// A fixed set of workers behind a bounded queue.
pub struct Pool {
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

/// Run one job, keeping the one-response-per-job contract even if the
/// handler panics: the caller blocked on `reply` gets a typed
/// `internal` error instead of a hung rendezvous, and the worker
/// survives to serve the next job.
fn run_one(handler: &(dyn Fn(Job) + Send + Sync), job: Job) {
    let reply = job.reply.clone();
    let id = job.id_raw().to_owned();
    if std::panic::catch_unwind(AssertUnwindSafe(|| handler(job))).is_err() {
        let _ = reply.send(err_response(
            &id,
            ErrorKind::Internal,
            "handler panicked; worker recovered",
        ));
    }
}

impl Pool {
    /// Spawn `workers` threads running `handler` over a queue of
    /// `queue_depth` jobs.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        handler: Arc<dyn Fn(Job) + Send + Sync>,
    ) -> Pool {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::bounded(queue_depth.max(1));
        let workers = (0..workers.max(1))
            .filter_map(|i| {
                let rx = rx.clone();
                let handler = Arc::clone(&handler);
                // A failed spawn (thread exhaustion) degrades capacity
                // instead of panicking; if *every* spawn fails, all
                // receivers drop and submissions report `Closed`, which
                // the server turns into a typed shutting_down response.
                std::thread::Builder::new()
                    .name(format!("copycat-serve-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            run_one(&*handler, job);
                        }
                    })
                    .ok()
            })
            .collect();
        Pool { tx, workers }
    }

    /// Admit a job without blocking.
    pub fn submit(&self, job: Job) -> Result<(), (Job, SubmitError)> {
        self.tx.try_send(job).map_err(|(job, e)| {
            let e = match e {
                TrySendError::Full => SubmitError::Full,
                TrySendError::Closed => SubmitError::Closed,
            };
            (job, e)
        })
    }

    /// Jobs currently queued (racy; metrics only).
    pub fn queued(&self) -> usize {
        self.tx.queued()
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drain and join: no new submissions, queued jobs finish, workers
    /// exit. Consumes the pool.
    pub fn shutdown(self) {
        let Pool { tx, workers } = self;
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_util::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::sync_channel;

    fn job(reply: SyncSender<String>) -> Job {
        Job {
            line: String::new(),
            doc: ZDoc::new(),
            op: Op::Ping,
            id_span: None,
            deadline: Deadline::starting_now(None),
            reply,
        }
    }

    #[test]
    fn shutdown_drains_every_admitted_job() {
        let handled = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&handled);
        let pool = Pool::new(2, 64, Arc::new(move |j: Job| {
            h.fetch_add(1, Ordering::Relaxed);
            let _ = j.reply.send("done".to_string());
        }));
        let mut rxs = Vec::new();
        for _ in 0..50 {
            let (tx, rx) = sync_channel(1);
            // Blocking send isn't available on the pool; retry on Full.
            let mut j = job(tx);
            loop {
                match pool.submit(j) {
                    Ok(()) => break,
                    Err((back, SubmitError::Full)) => {
                        j = back;
                        std::thread::yield_now();
                    }
                    Err((_, SubmitError::Closed)) => panic!("pool closed early"),
                }
            }
            rxs.push(rx);
        }
        pool.shutdown();
        assert_eq!(handled.load(Ordering::Relaxed), 50);
        for rx in rxs {
            assert_eq!(rx.recv().unwrap(), "done");
        }
    }

    #[test]
    fn panicking_handler_yields_typed_internal_error_not_a_dead_worker() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        // Single worker: if the panic killed it, the second job would
        // never be handled and shutdown would hang on a queued job.
        let pool = Pool::new(1, 4, Arc::new(move |j: Job| {
            if c.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("injected handler failure");
            }
            let _ = j.reply.send("ok".to_string());
        }));
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let (tx1, rx1) = sync_channel(1);
        assert!(pool.submit(job(tx1)).is_ok());
        let first = rx1.recv().unwrap();
        std::panic::set_hook(prev_hook);
        let parsed = Json::parse(&first).unwrap();
        assert_eq!(parsed["error"]["kind"].as_str(), Some("internal"));
        // The same (only) worker must still be alive to serve this one.
        let (tx2, rx2) = sync_channel(1);
        assert!(pool.submit(job(tx2)).is_ok());
        assert_eq!(rx2.recv().unwrap(), "ok");
        pool.shutdown();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        // A handler that parks until released, pinning the queue full.
        let (release_tx, release_rx) = sync_channel::<()>(0);
        let release_rx = std::sync::Mutex::new(release_rx);
        let pool = Pool::new(1, 1, Arc::new(move |j: Job| {
            let _ = release_rx.lock().unwrap().recv();
            let _ = j.reply.send("ok".into());
        }));
        let (tx1, rx1) = sync_channel(1);
        assert!(pool.submit(job(tx1)).is_ok()); // taken by the worker
        // Fill the queue slot (the worker may or may not have dequeued
        // the first job yet; keep adding until Full appears).
        let mut parked = Vec::new();
        let saw_full = loop {
            let (tx, rx) = sync_channel(1);
            match pool.submit(job(tx)) {
                Ok(()) => parked.push(rx),
                Err((_, SubmitError::Full)) => break true,
                Err((_, SubmitError::Closed)) => break false,
            }
        };
        assert!(saw_full, "bounded queue must report Full");
        for _ in 0..=parked.len() {
            let _ = release_tx.send(());
        }
        assert_eq!(rx1.recv().unwrap(), "ok");
        pool.shutdown();
    }
}
