//! copycat-serve — a multi-tenant session server for the CopyCat
//! engine.
//!
//! The paper's CopyCat is a single-user desktop tool; this crate is the
//! headless serving layer that hosts *many* interactive sessions at
//! once, one engine per tenant, behind a line-delimited JSON protocol:
//!
//! - [`registry`] — FxHash-sharded session registry; per-session mutex,
//!   per-shard `RwLock`, cross-tenant concurrency.
//! - [`pool`] — bounded worker pool: `try_send` admission, explicit
//!   `overloaded` rejection, drain-on-shutdown.
//! - [`deadline`] — per-request budgets spanning wall time *and* the
//!   virtual latency of fault-injected services.
//! - [`metrics`] — per-class counters + fixed-bucket latency
//!   histograms (p50/p99), readable via the `stats` request.
//! - [`protocol`] — the request/response grammar (see `DESIGN.md`,
//!   "Serving layer"); parsing borrows the request line (zero-copy).
//! - [`frame`] — optional length-prefixed binary framing, byte-
//!   equivalent to the JSON lines.
//! - [`server`] — admission, dispatch, graceful drain; its
//!   [`Server::handle_line`] is the in-process transport.
//! - [`router`] — consistent-hash placement across N in-process
//!   shards, per-session WAL + snapshot durability (via
//!   `copycat-store`), kill-and-recover by deterministic replay, and
//!   live session migration by checkpoint handoff.
//! - [`tcp`] — the socket transport (`copycat-serve` binary).
//! - [`smoke`] — one scripted request per request class, used by the
//!   verify pipeline.
//!
//! Responses carry no timing, so a request script is byte-deterministic
//! whether sessions are driven sequentially or concurrently; latency is
//! observable only through the metrics registry.

pub mod deadline;
pub mod frame;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;
pub mod smoke;
pub mod tcp;

pub use deadline::Deadline;
pub use frame::{FrameCodec, FrameError};
pub use metrics::{ClassMetrics, Metrics};
pub use pool::{Job, Pool, SubmitError};
pub use protocol::{err_response, ok_response, ErrorKind, Op, Request};
pub use registry::{RegistryError, Session, SessionRegistry, SessionState};
pub use router::{MigrationReport, Router, RouterConfig};
pub use server::{Server, ServerConfig};
