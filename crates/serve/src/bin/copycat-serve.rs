//! The copycat-serve binary.
//!
//! ```text
//! copycat-serve [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--shards N]
//! copycat-serve smoke
//! copycat-serve chaos
//! copycat-serve recover
//! copycat-serve crash-storm [seed] [stride]
//! copycat-serve transforms
//! copycat-serve herd [sessions]
//! ```
//!
//! The default mode binds a TCP listener and serves line-delimited JSON
//! until a client issues `{"op":"shutdown"}`. `smoke` runs one request
//! of every class through an in-process server and exits non-zero if a
//! required class fails — the hook `scripts/verify.sh` uses. `chaos`
//! runs the fault-injection script (hard-down primary, retries, breaker
//! trip, failover to a replacement alias) and exits non-zero if the
//! failover path misbehaves. `recover` runs the kill-and-recover smoke:
//! durable router, injected traffic, crash (no shutdown), recovery from
//! snapshot + WAL, and a byte-for-byte diff against a never-crashed
//! control. `crash-storm` runs the storage-fault sweep: every fault
//! kind (short writes, torn appends, failed/lying fsyncs, bit flips,
//! partial reads, ENOSPC) injected at every I/O operation of a seeded
//! workload on the simulated filesystem, each followed by kill,
//! recovery, and the no-silent-loss property check.
//! `transforms` learns a string-transform program bridging two
//! incompatibly formatted sources, accepts the resulting edge, crashes,
//! and requires the recovered session to answer byte-identically.
//! `herd` creates 10k copy-on-write sessions over one shared
//! world, probes a sample end to end, and exits non-zero if the
//! marginal memory cost falls below the sessions-per-GiB floor.

use copycat_serve::server::{Server, ServerConfig};
use copycat_serve::{smoke, tcp};
use copycat_util::bench::CountingAlloc;
use std::net::TcpListener;
use std::process::ExitCode;

/// Counting allocator so `herd` can measure live-byte growth; the
/// delegation to `System` costs two relaxed increments per call.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Minimum copy-on-write sessions that must fit in one GiB. Measured
/// marginal cost is ~1.6 KiB/session (~650k sessions/GiB); the floor
/// asserts the title claim — 100k sessions in well under a gigabyte —
/// with generous headroom against allocator and platform variance.
const HERD_SESSIONS_PER_GB_FLOOR: f64 = 100_000.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        return run_smoke();
    }
    if args.first().map(String::as_str) == Some("chaos") {
        return run_chaos();
    }
    if args.first().map(String::as_str) == Some("recover") {
        return run_recover();
    }
    if args.first().map(String::as_str) == Some("crash-storm") {
        let seed = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(0xC1D9);
        let stride = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(1);
        return run_crash_storm(seed, stride);
    }
    if args.first().map(String::as_str) == Some("transforms") {
        return run_transforms();
    }
    if args.first().map(String::as_str) == Some("herd") {
        let sessions = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(10_000);
        return run_herd(sessions);
    }
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = (args[i].as_str(), args.get(i + 1));
        let Some(value) = value else {
            eprintln!("missing value for {flag}");
            return ExitCode::from(2);
        };
        match flag {
            "--addr" => addr = value.clone(),
            "--workers" => config.workers = value.parse().unwrap_or(config.workers),
            "--queue" => config.queue_depth = value.parse().unwrap_or(config.queue_depth),
            "--shards" => config.shards = value.parse().unwrap_or(config.shards),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "copycat-serve listening on {addr} ({} workers, queue {})",
        config.workers, config.queue_depth
    );
    match tcp::serve(listener, Server::new(config)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_smoke() -> ExitCode {
    match smoke::run_default() {
        Ok(log) => {
            for x in &log {
                println!("{} {}", if x.ok { "ok " } else { "err" }, x.op);
            }
            println!("smoke: {} exchanges, all required classes ok", log.len());
            ExitCode::SUCCESS
        }
        Err(failed) => {
            eprintln!("smoke FAILED at {}:\n  request:  {}\n  response: {}",
                failed.op, failed.request, failed.response);
            ExitCode::from(1)
        }
    }
}

fn run_recover() -> ExitCode {
    match smoke::run_recover_default() {
        Ok(s) => {
            println!(
                "recover: {} journaled, crash, {} replayed ({} torn bytes, \
                 {} quarantined, {} generations skipped), {} probes byte-identical",
                s.journaled, s.replayed, s.torn_bytes, s.quarantined,
                s.generations_skipped, s.probes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("recover FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_crash_storm(seed: u64, stride: u64) -> ExitCode {
    match smoke::run_crash_storm(seed, stride) {
        Ok(r) => {
            println!(
                "crash-storm: {} runs over {} ops (stride {stride}, seed {}), \
                 {} faults fired, {} acked -> {} recovered + {} quarantined + \
                 {} tail-lost, 0 silent losses, {} probes",
                r.runs, r.workload_ops, r.seed, r.faults_fired, r.acked,
                r.recovered, r.quarantined, r.tail_lost, r.probes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("crash-storm FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_transforms() -> ExitCode {
    match smoke::run_transforms_default() {
        Ok(s) => {
            println!(
                "transforms: learned {}, accepted, {} journaled, crash, {} replayed, \
                 {} probes byte-identical",
                s.program, s.journaled, s.replayed, s.probes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("transforms FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_herd(sessions: usize) -> ExitCode {
    let server = Server::new(ServerConfig { workers: 4, queue_depth: 128, shards: 256 });
    let report =
        smoke::run_herd(&server, sessions, HERD_SESSIONS_PER_GB_FLOOR, &|| ALLOC.snapshot());
    server.shutdown();
    match report {
        Ok(r) => {
            println!(
                "herd: {} shared-world sessions, {:.0} B/session marginal, \
                 {:.0} sessions/GiB (floor {:.0}), {} probes ok",
                r.sessions,
                r.marginal_bytes_per_session,
                r.sessions_per_gb,
                HERD_SESSIONS_PER_GB_FLOOR,
                r.probes_ok
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("herd FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_chaos() -> ExitCode {
    match smoke::run_chaos_default() {
        Ok(log) => {
            for x in &log {
                println!("{} {}", if x.ok { "ok " } else { "err" }, x.op);
            }
            println!("chaos: {} exchanges, breaker tripped, failover served", log.len());
            ExitCode::SUCCESS
        }
        Err(failed) => {
            eprintln!("chaos FAILED at {}:\n  request:  {}\n  response: {}",
                failed.op, failed.request, failed.response);
            ExitCode::from(1)
        }
    }
}
