//! The copycat-serve binary.
//!
//! ```text
//! copycat-serve [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--shards N]
//! copycat-serve smoke
//! copycat-serve chaos
//! copycat-serve recover
//! ```
//!
//! The default mode binds a TCP listener and serves line-delimited JSON
//! until a client issues `{"op":"shutdown"}`. `smoke` runs one request
//! of every class through an in-process server and exits non-zero if a
//! required class fails — the hook `scripts/verify.sh` uses. `chaos`
//! runs the fault-injection script (hard-down primary, retries, breaker
//! trip, failover to a replacement alias) and exits non-zero if the
//! failover path misbehaves. `recover` runs the kill-and-recover smoke:
//! durable router, injected traffic, crash (no shutdown), recovery from
//! snapshot + WAL, and a byte-for-byte diff against a never-crashed
//! control.

use copycat_serve::server::{Server, ServerConfig};
use copycat_serve::{smoke, tcp};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        return run_smoke();
    }
    if args.first().map(String::as_str) == Some("chaos") {
        return run_chaos();
    }
    if args.first().map(String::as_str) == Some("recover") {
        return run_recover();
    }
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = (args[i].as_str(), args.get(i + 1));
        let Some(value) = value else {
            eprintln!("missing value for {flag}");
            return ExitCode::from(2);
        };
        match flag {
            "--addr" => addr = value.clone(),
            "--workers" => config.workers = value.parse().unwrap_or(config.workers),
            "--queue" => config.queue_depth = value.parse().unwrap_or(config.queue_depth),
            "--shards" => config.shards = value.parse().unwrap_or(config.shards),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "copycat-serve listening on {addr} ({} workers, queue {})",
        config.workers, config.queue_depth
    );
    match tcp::serve(listener, Server::new(config)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_smoke() -> ExitCode {
    match smoke::run_default() {
        Ok(log) => {
            for x in &log {
                println!("{} {}", if x.ok { "ok " } else { "err" }, x.op);
            }
            println!("smoke: {} exchanges, all required classes ok", log.len());
            ExitCode::SUCCESS
        }
        Err(failed) => {
            eprintln!("smoke FAILED at {}:\n  request:  {}\n  response: {}",
                failed.op, failed.request, failed.response);
            ExitCode::from(1)
        }
    }
}

fn run_recover() -> ExitCode {
    match smoke::run_recover_default() {
        Ok(s) => {
            println!(
                "recover: {} journaled, crash, {} replayed, {} probes byte-identical",
                s.journaled, s.replayed, s.probes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("recover FAILED: {e}");
            ExitCode::from(1)
        }
    }
}

fn run_chaos() -> ExitCode {
    match smoke::run_chaos_default() {
        Ok(log) => {
            for x in &log {
                println!("{} {}", if x.ok { "ok " } else { "err" }, x.op);
            }
            println!("chaos: {} exchanges, breaker tripped, failover served", log.len());
            ExitCode::SUCCESS
        }
        Err(failed) => {
            eprintln!("chaos FAILED at {}:\n  request:  {}\n  response: {}",
                failed.op, failed.request, failed.response);
            ExitCode::from(1)
        }
    }
}
