//! Optional length-prefixed binary framing, next to the JSON line
//! protocol.
//!
//! A frame is a [`varint`] byte-length prefix followed by a tagged
//! encoding of exactly the value the JSON line would carry:
//!
//! | tag | value | payload |
//! |-----|-------|---------|
//! | 0 | `null` | — |
//! | 1 | `false` | — |
//! | 2 | `true` | — |
//! | 3 | number | 8 bytes, `f64` little-endian |
//! | 4 | string | varint byte length + UTF-8 bytes |
//! | 5 | array | varint item count + items |
//! | 6 | object | varint member count + (string key, value) pairs |
//!
//! The two framings are *byte-equivalent*: decoding a frame and
//! serializing the value canonically yields the exact JSON line, and
//! encoding the parsed JSON line yields the exact frame (object member
//! order is preserved in both directions). [`crate::Server::handle_frame`]
//! rides entirely on that equivalence — it decodes to the canonical
//! line, runs the ordinary [`handle_line`](crate::Server::handle_line)
//! path, and re-encodes the response — so the binary framing can never
//! drift from the JSON protocol's semantics.

use copycat_util::json::Json;
use copycat_util::varint::{self, VarintError};

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_NUM: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARR: u8 = 5;
const TAG_OBJ: u8 = 6;

/// Nesting depth limit, matching the JSON parsers.
const MAX_DEPTH: usize = 128;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame did.
    Truncated,
    /// Structurally invalid contents.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

fn from_varint(e: VarintError) -> FrameError {
    match e {
        VarintError::Truncated => FrameError::Truncated,
        VarintError::Overflow => FrameError::Malformed("varint overflow".to_string()),
    }
}

// The warm encode path appends into caller/scratch buffers only.
// lint:hotpath(begin)
/// Append the tagged encoding of `value` (no length prefix).
pub fn encode_value(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Num(n) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            varint::encode_u64(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            varint::encode_u64(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Json::Obj(fields) => {
            out.push(TAG_OBJ);
            varint::encode_u64(fields.len() as u64, out);
            for (key, v) in fields {
                varint::encode_u64(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(v, out);
            }
        }
    }
}

/// A frame encoder with a reusable body scratch buffer: warm, encoding
/// allocates only when a frame outgrows every previous one.
#[derive(Debug, Default)]
pub struct FrameCodec {
    scratch: Vec<u8>,
}

impl FrameCodec {
    /// A codec with an empty scratch buffer.
    pub fn new() -> FrameCodec {
        FrameCodec::default()
    }

    /// Append the length-prefixed frame for `value` to `out`.
    pub fn encode_frame(&mut self, value: &Json, out: &mut Vec<u8>) {
        self.scratch.clear();
        encode_value(value, &mut self.scratch);
        varint::encode_u64(self.scratch.len() as u64, out);
        out.extend_from_slice(&self.scratch);
    }
}
// lint:hotpath(end)

/// Encode one length-prefixed frame (convenience over [`FrameCodec`]).
pub fn encode_frame(value: &Json) -> Vec<u8> {
    let mut out = Vec::new();
    FrameCodec::new().encode_frame(value, &mut out);
    out
}

fn read_str(buf: &[u8], at: usize) -> Result<(String, usize), FrameError> {
    let (len, n) = varint::decode_u64(buf.get(at..).unwrap_or(&[])).map_err(from_varint)?;
    let start = at + n;
    let end = start
        .checked_add(len as usize)
        .filter(|&e| e <= buf.len())
        .ok_or(FrameError::Truncated)?;
    let s = std::str::from_utf8(&buf[start..end])
        .map_err(|_| FrameError::Malformed("invalid utf-8 in string".to_string()))?;
    Ok((s.to_string(), end))
}

fn decode_value(buf: &[u8], at: usize, depth: usize) -> Result<(Json, usize), FrameError> {
    if depth > MAX_DEPTH {
        return Err(FrameError::Malformed("nesting too deep".to_string()));
    }
    let tag = *buf.get(at).ok_or(FrameError::Truncated)?;
    let at = at + 1;
    match tag {
        TAG_NULL => Ok((Json::Null, at)),
        TAG_FALSE => Ok((Json::Bool(false), at)),
        TAG_TRUE => Ok((Json::Bool(true), at)),
        TAG_NUM => {
            let bytes: [u8; 8] = buf
                .get(at..at + 8)
                .and_then(|b| b.try_into().ok())
                .ok_or(FrameError::Truncated)?;
            let n = f64::from_le_bytes(bytes);
            if !n.is_finite() {
                return Err(FrameError::Malformed("non-finite number".to_string()));
            }
            Ok((Json::Num(n), at + 8))
        }
        TAG_STR => {
            let (s, at) = read_str(buf, at)?;
            Ok((Json::Str(s), at))
        }
        TAG_ARR => {
            let (count, n) = varint::decode_u64(buf.get(at..).unwrap_or(&[])).map_err(from_varint)?;
            let mut at = at + n;
            let mut items = Vec::new();
            for _ in 0..count {
                let (item, next) = decode_value(buf, at, depth + 1)?;
                items.push(item);
                at = next;
            }
            Ok((Json::Arr(items), at))
        }
        TAG_OBJ => {
            let (count, n) = varint::decode_u64(buf.get(at..).unwrap_or(&[])).map_err(from_varint)?;
            let mut at = at + n;
            let mut fields = Vec::new();
            for _ in 0..count {
                let (key, next) = read_str(buf, at)?;
                let (v, after) = decode_value(buf, next, depth + 1)?;
                fields.push((key, v));
                at = after;
            }
            Ok((Json::Obj(fields), at))
        }
        other => Err(FrameError::Malformed(format!("unknown tag {other}"))),
    }
}

/// Decode one length-prefixed frame from the front of `buf`, returning
/// the value and the total bytes consumed (prefix included). Trailing
/// bytes beyond the frame are left for the caller (stream framing).
pub fn decode_frame(buf: &[u8]) -> Result<(Json, usize), FrameError> {
    let (len, n) = varint::decode_u64(buf).map_err(from_varint)?;
    let end = n
        .checked_add(len as usize)
        .filter(|&e| e <= buf.len())
        .ok_or(FrameError::Truncated)?;
    let (value, used) = decode_value(&buf[..end], n, 0)?;
    if used != end {
        return Err(FrameError::Malformed("trailing bytes inside frame".to_string()));
    }
    Ok((value, end))
}

/// The bad-frame response value, mirroring the JSON protocol's
/// `bad_request` envelope (`id` is `null` — an undecodable frame has
/// no id to echo).
fn bad_frame(e: &FrameError) -> Json {
    Json::obj(vec![
        ("id".to_string(), Json::Null),
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::obj(vec![
                ("kind".to_string(), Json::str("bad_request")),
                ("message".to_string(), Json::str(&format!("{e}"))),
            ]),
        ),
    ])
}

/// Run one framed request through a line handler: decode, serialize
/// canonically, handle, re-encode the response. The bridge both
/// [`crate::Server::handle_frame`] and [`crate::Router::handle_frame`]
/// ride on.
pub fn handle_with(frame: &[u8], handle: impl FnOnce(&str) -> String) -> Vec<u8> {
    let resp = match decode_frame(frame) {
        Ok((req, _)) => {
            let line = req.to_string();
            match Json::parse(&handle(&line)) {
                Ok(resp) => resp,
                // Unreachable: handlers emit valid JSON by construction.
                Err(_) => bad_frame(&FrameError::Malformed("unencodable response".to_string())),
            }
        }
        Err(e) => bad_frame(&e),
    };
    encode_frame(&resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &str) {
        let value = Json::parse(line).unwrap();
        let frame = encode_frame(&value);
        let (back, used) = decode_frame(&frame).unwrap();
        assert_eq!(used, frame.len(), "whole frame consumed for {line:?}");
        // Byte equivalence both ways: frame → canonical JSON line, and
        // the line's value → the same frame bytes.
        assert_eq!(back.to_string(), value.to_string(), "for {line:?}");
        assert_eq!(encode_frame(&back), frame, "for {line:?}");
    }

    #[test]
    fn framing_round_trips_protocol_shapes() {
        for line in [
            "null",
            "true",
            "false",
            "0",
            "-2.5",
            "1e3",
            "\"\"",
            "\"plain\"",
            "\"esc \\n \\\" tab\\t\"",
            "[]",
            "[1,[2,[3]],\"x\"]",
            "{}",
            r#"{"id":1,"op":"ping"}"#,
            r#"{"id":2,"op":"paste","session":"alice","doc":0,"values":["Venue","Street","City"]}"#,
            r#"{"id":null,"ok":false,"error":{"kind":"bad_request","message":"missing \"op\""}}"#,
        ] {
            round_trip(line);
        }
    }

    #[test]
    fn frame_bytes_are_pinned() {
        // Freeze the format: tag values, varint prefixes, f64 LE.
        assert_eq!(encode_frame(&Json::Null), vec![1, TAG_NULL]);
        assert_eq!(encode_frame(&Json::Bool(true)), vec![1, TAG_TRUE]);
        assert_eq!(
            encode_frame(&Json::Num(1.0)),
            vec![9, TAG_NUM, 0, 0, 0, 0, 0, 0, 0xF0, 0x3F]
        );
        assert_eq!(
            encode_frame(&Json::str("ok")),
            vec![4, TAG_STR, 2, b'o', b'k']
        );
        let obj = Json::obj(vec![("a".to_string(), Json::Arr(vec![Json::Num(0.0)]))]);
        assert_eq!(
            encode_frame(&obj),
            vec![15, TAG_OBJ, 1, 1, b'a', TAG_ARR, 1, TAG_NUM, 0, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn truncations_and_bad_tags_are_rejected() {
        let frame = encode_frame(&Json::parse(r#"{"id":1,"op":"ping"}"#).unwrap());
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        assert_eq!(
            decode_frame(&[1, 9]),
            Err(FrameError::Malformed("unknown tag 9".to_string()))
        );
        // Non-finite numbers cannot appear in JSON; reject them.
        let mut nan = vec![9, TAG_NUM];
        nan.extend_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(decode_frame(&nan), Err(FrameError::Malformed(_))));
        // A frame whose declared length exceeds its body is truncated.
        assert_eq!(decode_frame(&[5, TAG_NULL]), Err(FrameError::Truncated));
        // Extra bytes inside the declared length are malformed.
        assert_eq!(
            decode_frame(&[2, TAG_NULL, TAG_NULL]),
            Err(FrameError::Malformed("trailing bytes inside frame".to_string()))
        );
        // Trailing bytes *after* the frame belong to the next frame.
        assert_eq!(decode_frame(&[1, TAG_NULL, 0xAB]).unwrap().1, 2);
    }

    #[test]
    fn warm_codec_reuses_its_scratch() {
        let mut codec = FrameCodec::new();
        let value = Json::parse(r#"{"id":1,"op":"ping","session":"alice"}"#).unwrap();
        let mut out = Vec::new();
        codec.encode_frame(&value, &mut out);
        let cap = codec.scratch.capacity();
        for _ in 0..50 {
            out.clear();
            codec.encode_frame(&value, &mut out);
        }
        assert_eq!(codec.scratch.capacity(), cap);
    }
}
