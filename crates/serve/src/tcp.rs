//! The TCP transport: a thin byte pump over [`Server::handle_line`].
//!
//! One thread per connection, line-delimited JSON both ways, flushed
//! per response. Everything interesting — admission, backpressure,
//! deadlines, metrics — lives below in the server, so a socket client
//! and an in-process test observe identical behavior.

use crate::server::Server;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

/// Serve `listener` until a client issues `shutdown`, then drain and
/// return. Consumes the server (shutdown joins its workers).
pub fn serve(listener: TcpListener, server: Server) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    // A scope (rather than detached spawns) guarantees every connection
    // thread has joined before the scope returns, so the server can be
    // consumed by `shutdown` below without reference counting.
    let accepted = thread::scope(|scope| {
        loop {
            let (stream, _) = listener.accept()?;
            if server.draining() {
                return Ok(());
            }
            let srv = &server;
            scope.spawn(move || {
                let _ = handle_connection(stream, srv, addr);
            });
        }
    });
    // Drain even when the accept loop died on an I/O error: admitted
    // work still gets its responses.
    server.shutdown();
    accepted
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if server.draining() {
            // Wake the acceptor (it blocks in accept) so the listener
            // loop notices the drain and exits.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    Ok(())
}
