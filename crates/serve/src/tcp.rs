//! The TCP transport: a thin byte pump over [`Server::handle_line`].
//!
//! One thread per connection, line-delimited JSON both ways, flushed
//! per response. Everything interesting — admission, backpressure,
//! deadlines, metrics — lives below in the server, so a socket client
//! and an in-process test observe identical behavior.

use crate::server::Server;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

/// Serve `listener` until a client issues `shutdown`, then drain and
/// return. Consumes the server (shutdown joins its workers).
pub fn serve(listener: TcpListener, server: Server) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    // A scope (rather than detached spawns) guarantees every connection
    // thread has joined before the scope returns, so the server can be
    // consumed by `shutdown` below without reference counting.
    let accepted = thread::scope(|scope| {
        loop {
            let (stream, _) = listener.accept()?;
            if server.draining() {
                return Ok(());
            }
            let srv = &server;
            scope.spawn(move || {
                let _ = handle_connection(stream, srv, addr);
            });
        }
    });
    // Drain even when the accept loop died on an I/O error: admitted
    // work still gets its responses.
    server.shutdown();
    accepted
}

/// Strip one trailing line terminator — `\n`, `\r\n`, or a bare `\r`
/// left by a client that frames with CRLF but whose `\n` landed in the
/// next read. Interior bytes are untouched: the payload is JSON, and a
/// stray `\r` before the closing brace must stay a parse error.
fn trim_line_terminator(line: &mut Vec<u8>) {
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        // Explicit framing instead of `BufRead::lines()`: a final
        // request whose connection closed before the terminating
        // newline is still a complete frame (read_until returns it
        // with n > 0), and a non-UTF-8 payload is answered with the
        // server's parse error instead of killing the connection.
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // clean EOF
        }
        trim_line_terminator(&mut line);
        let text = String::from_utf8_lossy(&line);
        if text.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&text);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if server.draining() {
            // Wake the acceptor (it blocks in accept) so the listener
            // loop notices the drain and exits.
            let _ = TcpStream::connect(addr);
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::trim_line_terminator;

    #[test]
    fn terminator_trim_handles_all_framings() {
        for (input, want) in [
            (&b"{\"id\":1}\n"[..], &b"{\"id\":1}"[..]),
            (b"{\"id\":1}\r\n", b"{\"id\":1}"),
            (b"{\"id\":1}\r", b"{\"id\":1}"),
            (b"{\"id\":1}", b"{\"id\":1}"),
            (b"\r\n", b""),
            (b"", b""),
            // Interior CR is payload, not framing.
            (b"{\"s\":\"a\rb\"}\n", b"{\"s\":\"a\rb\"}"),
        ] {
            let mut v = input.to_vec();
            trim_line_terminator(&mut v);
            assert_eq!(v, want, "input {input:?}");
        }
    }
}
