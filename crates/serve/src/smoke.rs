//! An end-to-end smoke script: one request per request class through
//! the in-process transport, ending in a graceful shutdown.
//!
//! Used three ways: `copycat-serve smoke` (the verify-script hook), the
//! serve test suite (asserts every class round-trips), and as living
//! documentation of a full client conversation.

use crate::protocol::Op;
use crate::server::{Server, ServerConfig};
use copycat_util::json::Json;

/// One request/response exchange from the smoke run.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// The request class exercised.
    pub op: &'static str,
    /// The request line sent.
    pub request: String,
    /// The response line received.
    pub response: String,
    /// Whether the response was `ok:true`.
    pub ok: bool,
}

fn esc(s: &str) -> String {
    Json::str(s).to_string()
}

fn row_json(row: &[String]) -> String {
    let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
    format!("[{}]", cells.join(","))
}

fn rows_json(rows: &[Vec<String>]) -> String {
    let rendered: Vec<String> = rows.iter().map(|r| row_json(r)).collect();
    format!("[{}]", rendered.join(","))
}

/// Drive one request of every class through `server`, in a realistic
/// order (import two sources, learn, autocomplete, save/load, drain).
///
/// Returns the exchanges; `Err` carries the first exchange that failed
/// when it was required to succeed. The `invalid` class is exercised
/// with a garbage line and is *expected* to fail with `bad_request`.
pub fn run(server: &Server) -> Result<Vec<Exchange>, Box<Exchange>> {
    let mut log: Vec<Exchange> = Vec::new();
    let mut next_id = 0u64;
    let mut call = |op: Op, line: String, must_ok: bool| -> Result<Json, Box<Exchange>> {
        let response = server.handle_line(&line);
        let parsed = Json::parse(&response).expect("server responses parse");
        let ok = parsed["ok"].as_bool() == Some(true);
        let exchange = Exchange { op: op.as_str(), request: line, response, ok };
        let failed = must_ok && !ok;
        log.push(exchange.clone());
        if failed {
            return Err(Box::new(exchange));
        }
        Ok(parsed)
    };
    let mut id = || {
        next_id += 1;
        next_id
    };
    let s = "\"session\":\"smoke\"";

    call(Op::Ping, format!("{{\"id\":{},\"op\":\"ping\"}}", id()), true)?;
    call(
        Op::CreateSession,
        format!("{{\"id\":{},\"op\":\"create_session\",{s}}}", id()),
        true,
    )?;
    let world = call(
        Op::RegisterWorld,
        format!(
            "{{\"id\":{},\"op\":\"register_world\",{s},\"seed\":2009,\"venues\":10}}",
            id()
        ),
        true,
    )?;
    let shelters = rows_of(&world["result"]["shelters"]);
    let contacts = rows_of(&world["result"]["contacts"]);

    // Import source 1: shelters.
    let doc = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ShelterSheet\",\
             \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{}}}",
            id(),
            rows_json(&shelters)
        ),
        true,
    )?;
    let doc_id = doc["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc_id},\"values\":{}}}",
            id(),
            row_json(&shelters[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::NameColumn,
        format!("{{\"id\":{},\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Name\"}}", id()),
        true,
    )?;
    call(
        Op::SetColumnType,
        format!(
            "{{\"id\":{},\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\"}}",
            id()
        ),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}", id()),
        true,
    )?;

    // Wrap a service in (healthy) fault injection; its virtual latency
    // is charged to deadlines from here on.
    call(
        Op::RegisterFlaky,
        format!(
            "{{\"id\":{},\"op\":\"register_flaky\",{s},\"service\":\"zip_resolver\",\
             \"failure_rate\":0,\"latency_ms\":1,\"seed\":1}}",
            id()
        ),
        true,
    )?;

    // Column auto-completion on the committed source.
    let suggs = call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    let n_suggs = suggs["result"]["suggestions"].as_array().map_or(0, |a| a.len());
    call(
        Op::AcceptColumn,
        format!("{{\"id\":{},\"op\":\"accept_column\",{s},\"index\":0}}", id()),
        n_suggs > 0,
    )?;
    // A fresh suggestion round to reject from.
    call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    call(
        Op::RejectColumn,
        format!("{{\"id\":{},\"op\":\"reject_column\",{s},\"index\":0}}", id()),
        false, // ok only when the second round was non-empty
    )?;

    // Import source 2: contacts (shares venue names with shelters).
    let doc2 = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ContactSheet\",\
             \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}}}",
            id(),
            rows_json(&contacts)
        ),
        true,
    )?;
    let doc2_id = doc2["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc2_id},\"values\":{}}}",
            id(),
            row_json(&contacts[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::NameColumn,
        format!("{{\"id\":{},\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Name\"}}", id()),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}", id()),
        true,
    )?;

    // Query discovery across both sources + feedback on the ranking.
    let queries = call(
        Op::Autocomplete,
        format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3}}",
            id(),
            esc(&shelters[0][1]),
            esc(&contacts[0][1]),
        ),
        true,
    )?;
    let n_queries = queries["result"]["queries"].as_array().map_or(0, |a| a.len());
    call(
        Op::Feedback,
        format!("{{\"id\":{},\"op\":\"feedback\",{s},\"accept\":0}}", id()),
        n_queries > 0,
    )?;

    call(
        Op::Explain,
        format!("{{\"id\":{},\"op\":\"explain\",{s},\"row\":0}}", id()),
        true,
    )?;
    call(
        Op::Export,
        format!("{{\"id\":{},\"op\":\"export\",{s},\"format\":\"csv\"}}", id()),
        true,
    )?;
    call(Op::Render, format!("{{\"id\":{},\"op\":\"render\",{s}}}", id()), true)?;
    call(
        Op::Health,
        format!("{{\"id\":{},\"op\":\"health\",{s}}}", id()),
        true,
    )?;
    call(
        Op::SessionStats,
        format!("{{\"id\":{},\"op\":\"session_stats\",{s}}}", id()),
        true,
    )?;

    // Snapshot, drop, restore, list.
    let saved = call(
        Op::SaveSession,
        format!("{{\"id\":{},\"op\":\"save_session\",{s}}}", id()),
        true,
    )?;
    let snapshot = saved["result"]["snapshot"].as_str().expect("snapshot").to_string();
    call(
        Op::CloseSession,
        format!("{{\"id\":{},\"op\":\"close_session\",{s}}}", id()),
        true,
    )?;
    call(
        Op::LoadSession,
        format!(
            "{{\"id\":{},\"op\":\"load_session\",{s},\"snapshot\":{}}}",
            id(),
            esc(&snapshot)
        ),
        true,
    )?;
    call(
        Op::ListSessions,
        format!("{{\"id\":{},\"op\":\"list_sessions\"}}", id()),
        true,
    )?;

    // Example-driven transform synthesis: learn a program mapping the
    // contact sheet's venue spelling onto the shelter source, then list
    // the learned edges. These ride at fixed ids past the sequential
    // counter so the exchanges before them keep their identifiers.
    call(
        Op::LearnTransform,
        format!(
            "{{\"id\":96,\"op\":\"learn_transform\",{s},\"from\":\"Contacts\",\
             \"from_col\":\"Name\",\"to\":\"Shelters\",\"to_col\":\"Name\",\
             \"examples\":[[{v0},{v0}],[{v1},{v1}],[{v2},{v2}]]}}",
            v0 = esc(&contacts[0][2]),
            v1 = esc(&contacts[1][2]),
            v2 = esc(&contacts[2][2]),
        ),
        true,
    )?;
    call(
        Op::ListTransforms,
        format!("{{\"id\":97,\"op\":\"list_transforms\",{s}}}"),
        true,
    )?;

    // The synthetic class: garbage must answer bad_request, not hang.
    call(Op::Invalid, "this is not json".to_string(), false)?;

    call(Op::Stats, format!("{{\"id\":{},\"op\":\"stats\"}}", id()), true)?;
    call(Op::Shutdown, format!("{{\"id\":{},\"op\":\"shutdown\"}}", id()), true)?;

    Ok(log)
}

/// Build a default-sized server, run the smoke script, shut down.
pub fn run_default() -> Result<Vec<Exchange>, Box<Exchange>> {
    let server = Server::new(ServerConfig::default());
    let result = run(&server);
    server.shutdown();
    result
}

/// The chaos smoke: a fault-injected session with retries, a circuit
/// breaker, and an equivalent replacement source, proving the serve
/// layer's failover path end to end.
///
/// The zip resolver is made *hard down* so its breaker trips, yet
/// `column_suggestions` must still offer a healthy (non-degraded) Zip
/// completion through the replacement alias, and `health` must report
/// the trip with virtual (never wallclock) backoff.
pub fn run_chaos(server: &Server) -> Result<Vec<Exchange>, Box<Exchange>> {
    let mut log: Vec<Exchange> = Vec::new();
    let mut next_id = 0u64;
    let mut call = |op: Op, line: String, must_ok: bool| -> Result<Json, Box<Exchange>> {
        let response = server.handle_line(&line);
        let parsed = Json::parse(&response).expect("server responses parse");
        let ok = parsed["ok"].as_bool() == Some(true);
        let exchange = Exchange { op: op.as_str(), request: line, response, ok };
        let failed = must_ok && !ok;
        log.push(exchange.clone());
        if failed {
            return Err(Box::new(exchange));
        }
        Ok(parsed)
    };
    let mut id = || {
        next_id += 1;
        next_id
    };
    let s = "\"session\":\"chaos\"";

    call(
        Op::CreateSession,
        format!("{{\"id\":{},\"op\":\"create_session\",{s}}}", id()),
        true,
    )?;
    let world = call(
        Op::RegisterWorld,
        format!(
            "{{\"id\":{},\"op\":\"register_world\",{s},\"seed\":2009,\"venues\":10}}",
            id()
        ),
        true,
    )?;
    let shelters = rows_of(&world["result"]["shelters"]);
    let doc = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ShelterSheet\",\
             \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{}}}",
            id(),
            rows_json(&shelters)
        ),
        true,
    )?;
    let doc_id = doc["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc_id},\"values\":{}}}",
            id(),
            row_json(&shelters[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::SetColumnType,
        format!(
            "{{\"id\":{},\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\"}}",
            id()
        ),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}", id()),
        true,
    )?;
    // Hard-down primary behind retry + breaker, with a healthy alias.
    call(
        Op::RegisterFlaky,
        format!(
            "{{\"id\":{},\"op\":\"register_flaky\",{s},\"service\":\"zip_resolver\",\
             \"failure_rate\":1,\"latency_ms\":5,\"seed\":7,\"retries\":3,\
             \"breaker_threshold\":4,\"cooldown_ms\":400,\
             \"replacement\":\"zip_backup\"}}",
            id()
        ),
        true,
    )?;
    let suggs = call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    let listed = suggs["result"]["suggestions"].as_array().unwrap_or(&[]);
    let healthy_backup = listed
        .first()
        .map(|e| e["degraded"] == Json::Null && format!("{}", e["label"]).contains("zip_backup"))
        .unwrap_or(false);
    if !healthy_backup {
        return Err(Box::new(log.last().expect("at least one exchange").clone()));
    }
    call(
        Op::AcceptColumn,
        format!("{{\"id\":{},\"op\":\"accept_column\",{s},\"index\":0}}", id()),
        true,
    )?;
    let health = call(
        Op::Health,
        format!("{{\"id\":{},\"op\":\"health\",{s}}}", id()),
        true,
    )?;
    let tripped = health["result"]["tripped"].as_array().map_or(0, |a| a.len());
    let trips = health["result"]["trips"].as_f64().unwrap_or(0.0);
    let backoff = health["result"]["backoff_virtual_ms"].as_f64().unwrap_or(0.0);
    if tripped == 0 || trips < 1.0 || backoff <= 0.0 {
        return Err(Box::new(log.last().expect("health exchange").clone()));
    }
    call(Op::Stats, format!("{{\"id\":{},\"op\":\"stats\"}}", id()), true)?;
    Ok(log)
}

/// Build a default-sized server, run the chaos script, shut down.
pub fn run_chaos_default() -> Result<Vec<Exchange>, Box<Exchange>> {
    let server = Server::new(ServerConfig::default());
    let result = run_chaos(&server);
    server.shutdown();
    result
}

/// Summary of the kill-and-recover smoke.
#[derive(Debug, Clone)]
pub struct RecoverSummary {
    /// Effectful requests journaled before the crash.
    pub journaled: u64,
    /// Records replayed during recovery.
    pub replayed: u64,
    /// Probe requests compared byte-for-byte against the control.
    pub probes: usize,
}

/// The kill-and-recover smoke: start a durable router in a scratch
/// directory, inject traffic, **crash it** (drop without shutdown),
/// recover from disk, and diff the recovered session's answers against
/// a never-crashed control — byte for byte. The verify-script hook for
/// the durability layer (`copycat-serve recover`).
pub fn run_recover_default() -> Result<RecoverSummary, String> {
    use crate::router::{Router, RouterConfig};
    let root = std::env::temp_dir().join(format!("copycat-recover-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = || RouterConfig {
        shards: 2,
        snapshot_every: 4, // force snapshot + WAL-tail recovery
        sync_every: 1,
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    };
    let s = "\"session\":\"smoke\"";
    let mut lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{s}}}"),
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{s},\"name\":\"Sheet\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\
             \"rows\":[[\"V-0\",\"0 Oak St\",\"CityA\"],[\"V-1\",\"1 Oak St\",\"CityB\"],\
             [\"V-2\",\"2 Oak St\",\"CityA\"]]}}"
        ),
        format!("{{\"id\":3,\"op\":\"paste\",{s},\"doc\":0,\"values\":[\"V-0\",\"0 Oak St\",\"CityA\"]}}"),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}"),
    ];
    for i in 0..4 {
        lines.push(format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{s},\"values\":[\"0 Oak St\"],\"k\":2}}",
            7 + i
        ));
    }
    let probes = [
        format!("{{\"id\":90,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":91,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":92,\"op\":\"session_stats\",{s}}}"),
        format!("{{\"id\":93,\"op\":\"save_session\",{s}}}"),
    ];

    let durable = Router::new(config());
    for line in &lines {
        let resp = durable.handle_line(line);
        if !resp.contains("\"ok\":true") {
            let _ = std::fs::remove_dir_all(&root);
            return Err(format!("traffic refused before crash: {line} -> {resp}"));
        }
    }
    let journaled = durable.stats()["durability"]["appends"].as_f64().unwrap_or(0.0) as u64;
    drop(durable); // crash: no shutdown, no flush

    let recovered =
        Router::recover(config()).map_err(|e| format!("recovery failed: {e}"))?;
    let replayed =
        recovered.stats()["durability"]["replayed_records"].as_f64().unwrap_or(0.0) as u64;
    let control = Router::new(RouterConfig { shards: 2, ..RouterConfig::default() });
    for line in &lines {
        control.handle_line(line);
    }
    for probe in &probes {
        let got = recovered.handle_line(probe);
        let want = control.handle_line(probe);
        if got != want {
            let _ = std::fs::remove_dir_all(&root);
            return Err(format!(
                "recovered session diverged on {probe}:\n  recovered: {got}\n  control:   {want}"
            ));
        }
    }
    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    if replayed == 0 {
        return Err("recovery replayed nothing; the WAL never made it to disk".to_string());
    }
    Ok(RecoverSummary { journaled, replayed, probes: probes.len() })
}

/// Summary of the transform kill-and-recover smoke.
#[derive(Debug, Clone)]
pub struct TransformSummary {
    /// The learned program, rendered.
    pub program: String,
    /// Effectful requests journaled before the crash.
    pub journaled: u64,
    /// Records replayed during recovery.
    pub replayed: u64,
    /// Probe requests compared byte-for-byte against the control.
    pub probes: usize,
}

/// The transforms smoke: two sources whose phone columns disagree on
/// format (so value-overlap association discovery finds nothing), a
/// `learn_transform` that bridges them, the resulting transform edge
/// surfacing as the top column suggestion, an `accept_column` that
/// executes the derive-then-join plan — then a **crash** and a recovery
/// that must answer every probe byte-for-byte like a never-crashed
/// control. The verify-script hook for transform synthesis
/// (`copycat-serve transforms`).
pub fn run_transforms_default() -> Result<TransformSummary, String> {
    use crate::router::{Router, RouterConfig};
    let root =
        std::env::temp_dir().join(format!("copycat-transform-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = || RouterConfig {
        shards: 2,
        snapshot_every: 6,
        sync_every: 1,
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    };
    let s = "\"session\":\"transforms\"";
    let lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{s}}}"),
        // Directory first: its phones are dashed, the contacts' phones
        // are parenthesized, so no Link edge can bridge them by value.
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{s},\"name\":\"DirectorySheet\",\
             \"headers\":[\"Venue\",\"Line\"],\
             \"rows\":[[\"V-0\",\"555-010-1000\"],[\"V-1\",\"555-010-1001\"],\
             [\"V-2\",\"555-010-1002\"]]}}"
        ),
        format!("{{\"id\":3,\"op\":\"paste\",{s},\"doc\":0,\"values\":[\"V-0\",\"555-010-1000\"]}}"),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{s},\"col\":1,\"name\":\"Line\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{s},\"name\":\"Directory\"}}"),
        format!(
            "{{\"id\":7,\"op\":\"open_doc\",{s},\"name\":\"ContactSheet\",\
             \"headers\":[\"Person\",\"Phone\"],\
             \"rows\":[[\"Ada\",\"(555) 010-1000\"],[\"Grace\",\"(555) 010-1001\"],\
             [\"Edsger\",\"(555) 010-1002\"]]}}"
        ),
        format!(
            "{{\"id\":8,\"op\":\"paste\",{s},\"doc\":1,\"values\":[\"Ada\",\"(555) 010-1000\"]}}"
        ),
        format!("{{\"id\":9,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":10,\"op\":\"name_column\",{s},\"col\":1,\"name\":\"Phone\"}}"),
        format!("{{\"id\":11,\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}"),
        format!(
            "{{\"id\":12,\"op\":\"learn_transform\",{s},\"from\":\"Contacts\",\
             \"from_col\":\"Phone\",\"to\":\"Directory\",\"to_col\":\"Line\",\
             \"examples\":[[\"(555) 010-1000\",\"555-010-1000\"],\
             [\"(555) 010-1001\",\"555-010-1001\"]]}}"
        ),
    ];
    let probes = [
        format!("{{\"id\":90,\"op\":\"list_transforms\",{s}}}"),
        format!("{{\"id\":91,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":92,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":93,\"op\":\"session_stats\",{s}}}"),
    ];

    let durable = Router::new(config());
    let mut program = String::new();
    for line in &lines {
        let resp = durable.handle_line(line);
        if !resp.contains("\"ok\":true") {
            let _ = std::fs::remove_dir_all(&root);
            return Err(format!("traffic refused before crash: {line} -> {resp}"));
        }
        if line.contains("learn_transform") {
            let parsed = Json::parse(&resp).expect("responses parse");
            program = parsed["result"]["program"].as_str().unwrap_or("").to_string();
        }
    }
    // The learned edge must surface as the top-ranked column suggestion
    // and its derive-then-join plan must execute on acceptance.
    let suggest =
        durable.handle_line(&format!("{{\"id\":13,\"op\":\"column_suggestions\",{s}}}"));
    if !suggest.contains("\"ok\":true") || !suggest.contains("T:Contacts+Directory") {
        let _ = std::fs::remove_dir_all(&root);
        return Err(format!("transform edge missing from suggestions: {suggest}"));
    }
    let accept = durable.handle_line(&format!("{{\"id\":14,\"op\":\"accept_column\",{s},\"index\":0}}"));
    if !accept.contains("\"ok\":true") {
        let _ = std::fs::remove_dir_all(&root);
        return Err(format!("accepting the transform suggestion failed: {accept}"));
    }
    let journaled = durable.stats()["durability"]["appends"].as_f64().unwrap_or(0.0) as u64;
    drop(durable); // crash: no shutdown, no flush

    let recovered = Router::recover(config()).map_err(|e| format!("recovery failed: {e}"))?;
    let replayed =
        recovered.stats()["durability"]["replayed_records"].as_f64().unwrap_or(0.0) as u64;
    let control = Router::new(RouterConfig { shards: 2, ..RouterConfig::default() });
    for line in &lines {
        control.handle_line(line);
    }
    control.handle_line(&format!("{{\"id\":13,\"op\":\"column_suggestions\",{s}}}"));
    control.handle_line(&format!("{{\"id\":14,\"op\":\"accept_column\",{s},\"index\":0}}"));
    for probe in &probes {
        let got = recovered.handle_line(probe);
        let want = control.handle_line(probe);
        if got != want {
            let _ = std::fs::remove_dir_all(&root);
            return Err(format!(
                "recovered session diverged on {probe}:\n  recovered: {got}\n  control:   {want}"
            ));
        }
    }
    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    if replayed == 0 {
        return Err("recovery replayed nothing; the WAL never made it to disk".to_string());
    }
    Ok(TransformSummary { program, journaled, replayed, probes: probes.len() })
}

/// Summary of a [`run_herd`] sweep: many shared-world sessions on one
/// server, with the marginal per-session memory cost measured by
/// differencing allocator snapshots around the bulk creation.
#[derive(Debug, Clone)]
pub struct HerdReport {
    /// Shared-world sessions created.
    pub sessions: usize,
    /// Net live-byte growth per session during the bulk creation.
    pub marginal_bytes_per_session: f64,
    /// Sessions that fit in one GiB at that marginal cost.
    pub sessions_per_gb: f64,
    /// Probe requests answered `ok:true` (render + stats + autocomplete
    /// on a sample of the herd).
    pub probes_ok: u64,
}

/// The 10k-session herd smoke: create `sessions` copy-on-write sessions
/// over one shared world, measure the marginal per-session memory via
/// `snap` (a [`CountingAlloc`](copycat_util::bench::CountingAlloc)
/// snapshot hook installed by the caller's binary), and probe a sample
/// of the herd end to end. Fails if any probe errs or if the marginal
/// cost implies fewer than `floor_sessions_per_gb` sessions per GiB.
pub fn run_herd(
    server: &Server,
    sessions: usize,
    floor_sessions_per_gb: f64,
    snap: &dyn Fn() -> copycat_util::bench::AllocSnapshot,
) -> Result<HerdReport, String> {
    let world = "\"world\":{\"seed\":2009,\"venues\":6}";
    let create = |name: &str| {
        let resp = server
            .handle_line(&format!("{{\"id\":0,\"op\":\"create_session\",\"session\":{},{world}}}", esc(name)));
        if resp.contains("\"ok\":true") { Ok(()) } else { Err(format!("create {name}: {resp}")) }
    };
    // Warm rounds pay the one-time costs (shared world build, scratch
    // pools, registry shards) outside the measured window.
    let warm = 64.min(sessions / 4).max(1);
    for i in 0..warm {
        create(&format!("herd-warm-{i}"))?;
    }
    let before = snap();
    for i in 0..sessions {
        create(&format!("herd-{i}"))?;
    }
    let after = snap();
    let marginal = after.live_growth_since(&before).max(1) as f64 / sessions as f64;
    let sessions_per_gb = (1u64 << 30) as f64 / marginal;

    // Probe a spread of the herd: every session sampled must answer
    // the interactive hot path.
    let mut probes_ok = 0u64;
    let stride = (sessions / 16).max(1);
    for i in (0..sessions).step_by(stride) {
        let s = esc(&format!("herd-{i}"));
        for line in [
            format!("{{\"id\":1,\"op\":\"render\",\"session\":{s}}}"),
            format!("{{\"id\":2,\"op\":\"session_stats\",\"session\":{s}}}"),
            format!("{{\"id\":3,\"op\":\"autocomplete\",\"session\":{s},\"values\":[\"a\"],\"k\":1}}"),
        ] {
            let resp = server.handle_line(&line);
            if !resp.contains("\"ok\":true") {
                return Err(format!("herd probe failed: {line} -> {resp}"));
            }
            probes_ok += 1;
        }
    }
    if sessions_per_gb < floor_sessions_per_gb {
        return Err(format!(
            "marginal session cost too high: {marginal:.0} B/session \
             ({sessions_per_gb:.0} sessions/GiB < floor {floor_sessions_per_gb:.0})"
        ));
    }
    Ok(HerdReport { sessions, marginal_bytes_per_session: marginal, sessions_per_gb, probes_ok })
}

fn rows_of(j: &Json) -> Vec<Vec<String>> {
    j.as_array()
        .map(|rows| {
            rows.iter()
                .map(|r| {
                    r.as_array()
                        .map(|cells| {
                            cells
                                .iter()
                                .filter_map(|c| c.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default()
}
