//! An end-to-end smoke script: one request per request class through
//! the in-process transport, ending in a graceful shutdown.
//!
//! Used three ways: `copycat-serve smoke` (the verify-script hook), the
//! serve test suite (asserts every class round-trips), and as living
//! documentation of a full client conversation.

use crate::protocol::Op;
use crate::server::{Server, ServerConfig};
use copycat_store::{FaultKind, FaultPlan, Fs, SimFs};
use copycat_util::json::Json;
use std::path::PathBuf;
use std::sync::Arc;

/// One request/response exchange from the smoke run.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// The request class exercised.
    pub op: &'static str,
    /// The request line sent.
    pub request: String,
    /// The response line received.
    pub response: String,
    /// Whether the response was `ok:true`.
    pub ok: bool,
}

fn esc(s: &str) -> String {
    Json::str(s).to_string()
}

fn row_json(row: &[String]) -> String {
    let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
    format!("[{}]", cells.join(","))
}

fn rows_json(rows: &[Vec<String>]) -> String {
    let rendered: Vec<String> = rows.iter().map(|r| row_json(r)).collect();
    format!("[{}]", rendered.join(","))
}

/// Drive one request of every class through `server`, in a realistic
/// order (import two sources, learn, autocomplete, save/load, drain).
///
/// Returns the exchanges; `Err` carries the first exchange that failed
/// when it was required to succeed. The `invalid` class is exercised
/// with a garbage line and is *expected* to fail with `bad_request`.
pub fn run(server: &Server) -> Result<Vec<Exchange>, Box<Exchange>> {
    let mut log: Vec<Exchange> = Vec::new();
    let mut next_id = 0u64;
    let mut call = |op: Op, line: String, must_ok: bool| -> Result<Json, Box<Exchange>> {
        let response = server.handle_line(&line);
        let parsed = Json::parse(&response).expect("server responses parse");
        let ok = parsed["ok"].as_bool() == Some(true);
        let exchange = Exchange { op: op.as_str(), request: line, response, ok };
        let failed = must_ok && !ok;
        log.push(exchange.clone());
        if failed {
            return Err(Box::new(exchange));
        }
        Ok(parsed)
    };
    let mut id = || {
        next_id += 1;
        next_id
    };
    let s = "\"session\":\"smoke\"";

    call(Op::Ping, format!("{{\"id\":{},\"op\":\"ping\"}}", id()), true)?;
    call(
        Op::CreateSession,
        format!("{{\"id\":{},\"op\":\"create_session\",{s}}}", id()),
        true,
    )?;
    let world = call(
        Op::RegisterWorld,
        format!(
            "{{\"id\":{},\"op\":\"register_world\",{s},\"seed\":2009,\"venues\":10}}",
            id()
        ),
        true,
    )?;
    let shelters = rows_of(&world["result"]["shelters"]);
    let contacts = rows_of(&world["result"]["contacts"]);

    // Import source 1: shelters.
    let doc = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ShelterSheet\",\
             \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{}}}",
            id(),
            rows_json(&shelters)
        ),
        true,
    )?;
    let doc_id = doc["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc_id},\"values\":{}}}",
            id(),
            row_json(&shelters[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::NameColumn,
        format!("{{\"id\":{},\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Name\"}}", id()),
        true,
    )?;
    call(
        Op::SetColumnType,
        format!(
            "{{\"id\":{},\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\"}}",
            id()
        ),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}", id()),
        true,
    )?;

    // Wrap a service in (healthy) fault injection; its virtual latency
    // is charged to deadlines from here on.
    call(
        Op::RegisterFlaky,
        format!(
            "{{\"id\":{},\"op\":\"register_flaky\",{s},\"service\":\"zip_resolver\",\
             \"failure_rate\":0,\"latency_ms\":1,\"seed\":1}}",
            id()
        ),
        true,
    )?;

    // Column auto-completion on the committed source.
    let suggs = call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    let n_suggs = suggs["result"]["suggestions"].as_array().map_or(0, |a| a.len());
    call(
        Op::AcceptColumn,
        format!("{{\"id\":{},\"op\":\"accept_column\",{s},\"index\":0}}", id()),
        n_suggs > 0,
    )?;
    // A fresh suggestion round to reject from.
    call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    call(
        Op::RejectColumn,
        format!("{{\"id\":{},\"op\":\"reject_column\",{s},\"index\":0}}", id()),
        false, // ok only when the second round was non-empty
    )?;

    // Import source 2: contacts (shares venue names with shelters).
    let doc2 = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ContactSheet\",\
             \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}}}",
            id(),
            rows_json(&contacts)
        ),
        true,
    )?;
    let doc2_id = doc2["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc2_id},\"values\":{}}}",
            id(),
            row_json(&contacts[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::NameColumn,
        format!("{{\"id\":{},\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Name\"}}", id()),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}", id()),
        true,
    )?;

    // Query discovery across both sources + feedback on the ranking.
    let queries = call(
        Op::Autocomplete,
        format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3}}",
            id(),
            esc(&shelters[0][1]),
            esc(&contacts[0][1]),
        ),
        true,
    )?;
    let n_queries = queries["result"]["queries"].as_array().map_or(0, |a| a.len());
    call(
        Op::Feedback,
        format!("{{\"id\":{},\"op\":\"feedback\",{s},\"accept\":0}}", id()),
        n_queries > 0,
    )?;

    call(
        Op::Explain,
        format!("{{\"id\":{},\"op\":\"explain\",{s},\"row\":0}}", id()),
        true,
    )?;
    call(
        Op::Export,
        format!("{{\"id\":{},\"op\":\"export\",{s},\"format\":\"csv\"}}", id()),
        true,
    )?;
    call(Op::Render, format!("{{\"id\":{},\"op\":\"render\",{s}}}", id()), true)?;
    call(
        Op::Health,
        format!("{{\"id\":{},\"op\":\"health\",{s}}}", id()),
        true,
    )?;
    call(
        Op::SessionStats,
        format!("{{\"id\":{},\"op\":\"session_stats\",{s}}}", id()),
        true,
    )?;

    // Snapshot, drop, restore, list.
    let saved = call(
        Op::SaveSession,
        format!("{{\"id\":{},\"op\":\"save_session\",{s}}}", id()),
        true,
    )?;
    let snapshot = saved["result"]["snapshot"].as_str().expect("snapshot").to_string();
    call(
        Op::CloseSession,
        format!("{{\"id\":{},\"op\":\"close_session\",{s}}}", id()),
        true,
    )?;
    call(
        Op::LoadSession,
        format!(
            "{{\"id\":{},\"op\":\"load_session\",{s},\"snapshot\":{}}}",
            id(),
            esc(&snapshot)
        ),
        true,
    )?;
    call(
        Op::ListSessions,
        format!("{{\"id\":{},\"op\":\"list_sessions\"}}", id()),
        true,
    )?;

    // Example-driven transform synthesis: learn a program mapping the
    // contact sheet's venue spelling onto the shelter source, then list
    // the learned edges. These ride at fixed ids past the sequential
    // counter so the exchanges before them keep their identifiers.
    call(
        Op::LearnTransform,
        format!(
            "{{\"id\":96,\"op\":\"learn_transform\",{s},\"from\":\"Contacts\",\
             \"from_col\":\"Name\",\"to\":\"Shelters\",\"to_col\":\"Name\",\
             \"examples\":[[{v0},{v0}],[{v1},{v1}],[{v2},{v2}]]}}",
            v0 = esc(&contacts[0][2]),
            v1 = esc(&contacts[1][2]),
            v2 = esc(&contacts[2][2]),
        ),
        true,
    )?;
    call(
        Op::ListTransforms,
        format!("{{\"id\":97,\"op\":\"list_transforms\",{s}}}"),
        true,
    )?;

    // The synthetic class: garbage must answer bad_request, not hang.
    call(Op::Invalid, "this is not json".to_string(), false)?;

    call(Op::Stats, format!("{{\"id\":{},\"op\":\"stats\"}}", id()), true)?;
    call(Op::Shutdown, format!("{{\"id\":{},\"op\":\"shutdown\"}}", id()), true)?;

    Ok(log)
}

/// Build a default-sized server, run the smoke script, shut down.
pub fn run_default() -> Result<Vec<Exchange>, Box<Exchange>> {
    let server = Server::new(ServerConfig::default());
    let result = run(&server);
    server.shutdown();
    result
}

/// The chaos smoke: a fault-injected session with retries, a circuit
/// breaker, and an equivalent replacement source, proving the serve
/// layer's failover path end to end.
///
/// The zip resolver is made *hard down* so its breaker trips, yet
/// `column_suggestions` must still offer a healthy (non-degraded) Zip
/// completion through the replacement alias, and `health` must report
/// the trip with virtual (never wallclock) backoff.
pub fn run_chaos(server: &Server) -> Result<Vec<Exchange>, Box<Exchange>> {
    let mut log: Vec<Exchange> = Vec::new();
    let mut next_id = 0u64;
    let mut call = |op: Op, line: String, must_ok: bool| -> Result<Json, Box<Exchange>> {
        let response = server.handle_line(&line);
        let parsed = Json::parse(&response).expect("server responses parse");
        let ok = parsed["ok"].as_bool() == Some(true);
        let exchange = Exchange { op: op.as_str(), request: line, response, ok };
        let failed = must_ok && !ok;
        log.push(exchange.clone());
        if failed {
            return Err(Box::new(exchange));
        }
        Ok(parsed)
    };
    let mut id = || {
        next_id += 1;
        next_id
    };
    let s = "\"session\":\"chaos\"";

    call(
        Op::CreateSession,
        format!("{{\"id\":{},\"op\":\"create_session\",{s}}}", id()),
        true,
    )?;
    let world = call(
        Op::RegisterWorld,
        format!(
            "{{\"id\":{},\"op\":\"register_world\",{s},\"seed\":2009,\"venues\":10}}",
            id()
        ),
        true,
    )?;
    let shelters = rows_of(&world["result"]["shelters"]);
    let doc = call(
        Op::OpenDoc,
        format!(
            "{{\"id\":{},\"op\":\"open_doc\",{s},\"name\":\"ShelterSheet\",\
             \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{}}}",
            id(),
            rows_json(&shelters)
        ),
        true,
    )?;
    let doc_id = doc["result"]["doc"].as_f64().expect("doc id") as u64;
    call(
        Op::Paste,
        format!(
            "{{\"id\":{},\"op\":\"paste\",{s},\"doc\":{doc_id},\"values\":{}}}",
            id(),
            row_json(&shelters[0])
        ),
        true,
    )?;
    call(Op::AcceptRows, format!("{{\"id\":{},\"op\":\"accept_rows\",{s}}}", id()), true)?;
    call(
        Op::SetColumnType,
        format!(
            "{{\"id\":{},\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\"}}",
            id()
        ),
        true,
    )?;
    call(
        Op::CommitSource,
        format!("{{\"id\":{},\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}", id()),
        true,
    )?;
    // Hard-down primary behind retry + breaker, with a healthy alias.
    call(
        Op::RegisterFlaky,
        format!(
            "{{\"id\":{},\"op\":\"register_flaky\",{s},\"service\":\"zip_resolver\",\
             \"failure_rate\":1,\"latency_ms\":5,\"seed\":7,\"retries\":3,\
             \"breaker_threshold\":4,\"cooldown_ms\":400,\
             \"replacement\":\"zip_backup\"}}",
            id()
        ),
        true,
    )?;
    let suggs = call(
        Op::ColumnSuggestions,
        format!("{{\"id\":{},\"op\":\"column_suggestions\",{s}}}", id()),
        true,
    )?;
    let listed = suggs["result"]["suggestions"].as_array().unwrap_or(&[]);
    let healthy_backup = listed
        .first()
        .map(|e| e["degraded"] == Json::Null && format!("{}", e["label"]).contains("zip_backup"))
        .unwrap_or(false);
    if !healthy_backup {
        return Err(Box::new(log.last().expect("at least one exchange").clone()));
    }
    call(
        Op::AcceptColumn,
        format!("{{\"id\":{},\"op\":\"accept_column\",{s},\"index\":0}}", id()),
        true,
    )?;
    let health = call(
        Op::Health,
        format!("{{\"id\":{},\"op\":\"health\",{s}}}", id()),
        true,
    )?;
    let tripped = health["result"]["tripped"].as_array().map_or(0, |a| a.len());
    let trips = health["result"]["trips"].as_f64().unwrap_or(0.0);
    let backoff = health["result"]["backoff_virtual_ms"].as_f64().unwrap_or(0.0);
    if tripped == 0 || trips < 1.0 || backoff <= 0.0 {
        return Err(Box::new(log.last().expect("health exchange").clone()));
    }
    call(Op::Stats, format!("{{\"id\":{},\"op\":\"stats\"}}", id()), true)?;
    Ok(log)
}

/// Build a default-sized server, run the chaos script, shut down.
pub fn run_chaos_default() -> Result<Vec<Exchange>, Box<Exchange>> {
    let server = Server::new(ServerConfig::default());
    let result = run_chaos(&server);
    server.shutdown();
    result
}

/// Summary of the kill-and-recover smoke.
#[derive(Debug, Clone)]
pub struct RecoverSummary {
    /// Effectful requests journaled before the crash.
    pub journaled: u64,
    /// Records replayed during recovery.
    pub replayed: u64,
    /// Torn WAL tail bytes the recovery discarded (and reported).
    pub torn_bytes: u64,
    /// Interior WAL records quarantined during recovery.
    pub quarantined: u64,
    /// Snapshot generations skipped as corrupt during recovery.
    pub generations_skipped: u64,
    /// Probe requests compared byte-for-byte against the control.
    pub probes: usize,
}

/// The kill-and-recover smoke: start a durable router in a scratch
/// directory, inject traffic, **crash it** (drop without shutdown),
/// recover from disk, and diff the recovered session's answers against
/// a never-crashed control — byte for byte. The verify-script hook for
/// the durability layer (`copycat-serve recover`).
pub fn run_recover_default() -> Result<RecoverSummary, String> {
    use crate::router::{Router, RouterConfig};
    let fs = Fs::real();
    let root = std::env::temp_dir().join(format!("copycat-recover-smoke-{}", std::process::id()));
    let _ = fs.remove_dir_all(&root);
    let config = || RouterConfig {
        shards: 2,
        snapshot_every: 4, // force snapshot + WAL-tail recovery
        sync_every: 1,
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    };
    let s = "\"session\":\"smoke\"";
    let mut lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{s}}}"),
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{s},\"name\":\"Sheet\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\
             \"rows\":[[\"V-0\",\"0 Oak St\",\"CityA\"],[\"V-1\",\"1 Oak St\",\"CityB\"],\
             [\"V-2\",\"2 Oak St\",\"CityA\"]]}}"
        ),
        format!("{{\"id\":3,\"op\":\"paste\",{s},\"doc\":0,\"values\":[\"V-0\",\"0 Oak St\",\"CityA\"]}}"),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}"),
    ];
    for i in 0..4 {
        lines.push(format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{s},\"values\":[\"0 Oak St\"],\"k\":2}}",
            7 + i
        ));
    }
    let probes = [
        format!("{{\"id\":90,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":91,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":92,\"op\":\"session_stats\",{s}}}"),
        format!("{{\"id\":93,\"op\":\"save_session\",{s}}}"),
    ];

    let durable = Router::new(config());
    for line in &lines {
        let resp = durable.handle_line(line);
        if !resp.contains("\"ok\":true") {
            let _ = fs.remove_dir_all(&root);
            return Err(format!("traffic refused before crash: {line} -> {resp}"));
        }
    }
    let journaled = durable.stats()["durability"]["appends"].as_f64().unwrap_or(0.0) as u64;
    drop(durable); // crash: no shutdown, no flush

    let recovered =
        Router::recover(config()).map_err(|e| format!("recovery failed: {e}"))?;
    let stats = recovered.stats();
    let durability = &stats["durability"];
    let field = |k: &str| durability[k].as_f64().unwrap_or(0.0) as u64;
    let replayed = field("replayed_records");
    let summary = RecoverSummary {
        journaled,
        replayed,
        torn_bytes: field("torn_bytes"),
        quarantined: field("quarantined_records"),
        generations_skipped: field("generations_skipped"),
        probes: probes.len(),
    };
    let control = Router::new(RouterConfig { shards: 2, ..RouterConfig::default() });
    for line in &lines {
        control.handle_line(line);
    }
    for probe in &probes {
        let got = recovered.handle_line(probe);
        let want = control.handle_line(probe);
        if got != want {
            let _ = fs.remove_dir_all(&root);
            return Err(format!(
                "recovered session diverged on {probe}:\n  recovered: {got}\n  control:   {want}"
            ));
        }
    }
    recovered.shutdown();
    control.shutdown();
    let _ = fs.remove_dir_all(&root);
    if replayed == 0 {
        return Err("recovery replayed nothing; the WAL never made it to disk".to_string());
    }
    Ok(summary)
}

/// Summary of the transform kill-and-recover smoke.
#[derive(Debug, Clone)]
pub struct TransformSummary {
    /// The learned program, rendered.
    pub program: String,
    /// Effectful requests journaled before the crash.
    pub journaled: u64,
    /// Records replayed during recovery.
    pub replayed: u64,
    /// Probe requests compared byte-for-byte against the control.
    pub probes: usize,
}

/// The transforms smoke: two sources whose phone columns disagree on
/// format (so value-overlap association discovery finds nothing), a
/// `learn_transform` that bridges them, the resulting transform edge
/// surfacing as the top column suggestion, an `accept_column` that
/// executes the derive-then-join plan — then a **crash** and a recovery
/// that must answer every probe byte-for-byte like a never-crashed
/// control. The verify-script hook for transform synthesis
/// (`copycat-serve transforms`).
pub fn run_transforms_default() -> Result<TransformSummary, String> {
    use crate::router::{Router, RouterConfig};
    let fs = Fs::real();
    let root =
        std::env::temp_dir().join(format!("copycat-transform-smoke-{}", std::process::id()));
    let _ = fs.remove_dir_all(&root);
    let config = || RouterConfig {
        shards: 2,
        snapshot_every: 6,
        sync_every: 1,
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    };
    let s = "\"session\":\"transforms\"";
    let lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{s}}}"),
        // Directory first: its phones are dashed, the contacts' phones
        // are parenthesized, so no Link edge can bridge them by value.
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{s},\"name\":\"DirectorySheet\",\
             \"headers\":[\"Venue\",\"Line\"],\
             \"rows\":[[\"V-0\",\"555-010-1000\"],[\"V-1\",\"555-010-1001\"],\
             [\"V-2\",\"555-010-1002\"]]}}"
        ),
        format!("{{\"id\":3,\"op\":\"paste\",{s},\"doc\":0,\"values\":[\"V-0\",\"555-010-1000\"]}}"),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{s},\"col\":1,\"name\":\"Line\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{s},\"name\":\"Directory\"}}"),
        format!(
            "{{\"id\":7,\"op\":\"open_doc\",{s},\"name\":\"ContactSheet\",\
             \"headers\":[\"Person\",\"Phone\"],\
             \"rows\":[[\"Ada\",\"(555) 010-1000\"],[\"Grace\",\"(555) 010-1001\"],\
             [\"Edsger\",\"(555) 010-1002\"]]}}"
        ),
        format!(
            "{{\"id\":8,\"op\":\"paste\",{s},\"doc\":1,\"values\":[\"Ada\",\"(555) 010-1000\"]}}"
        ),
        format!("{{\"id\":9,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":10,\"op\":\"name_column\",{s},\"col\":1,\"name\":\"Phone\"}}"),
        format!("{{\"id\":11,\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}"),
        format!(
            "{{\"id\":12,\"op\":\"learn_transform\",{s},\"from\":\"Contacts\",\
             \"from_col\":\"Phone\",\"to\":\"Directory\",\"to_col\":\"Line\",\
             \"examples\":[[\"(555) 010-1000\",\"555-010-1000\"],\
             [\"(555) 010-1001\",\"555-010-1001\"]]}}"
        ),
    ];
    let probes = [
        format!("{{\"id\":90,\"op\":\"list_transforms\",{s}}}"),
        format!("{{\"id\":91,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":92,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":93,\"op\":\"session_stats\",{s}}}"),
    ];

    let durable = Router::new(config());
    let mut program = String::new();
    for line in &lines {
        let resp = durable.handle_line(line);
        if !resp.contains("\"ok\":true") {
            let _ = fs.remove_dir_all(&root);
            return Err(format!("traffic refused before crash: {line} -> {resp}"));
        }
        if line.contains("learn_transform") {
            let parsed = Json::parse(&resp).expect("responses parse");
            program = parsed["result"]["program"].as_str().unwrap_or("").to_string();
        }
    }
    // The learned edge must surface as the top-ranked column suggestion
    // and its derive-then-join plan must execute on acceptance.
    let suggest =
        durable.handle_line(&format!("{{\"id\":13,\"op\":\"column_suggestions\",{s}}}"));
    if !suggest.contains("\"ok\":true") || !suggest.contains("T:Contacts+Directory") {
        let _ = fs.remove_dir_all(&root);
        return Err(format!("transform edge missing from suggestions: {suggest}"));
    }
    let accept = durable.handle_line(&format!("{{\"id\":14,\"op\":\"accept_column\",{s},\"index\":0}}"));
    if !accept.contains("\"ok\":true") {
        let _ = fs.remove_dir_all(&root);
        return Err(format!("accepting the transform suggestion failed: {accept}"));
    }
    let journaled = durable.stats()["durability"]["appends"].as_f64().unwrap_or(0.0) as u64;
    drop(durable); // crash: no shutdown, no flush

    let recovered = Router::recover(config()).map_err(|e| format!("recovery failed: {e}"))?;
    let replayed =
        recovered.stats()["durability"]["replayed_records"].as_f64().unwrap_or(0.0) as u64;
    let control = Router::new(RouterConfig { shards: 2, ..RouterConfig::default() });
    for line in &lines {
        control.handle_line(line);
    }
    control.handle_line(&format!("{{\"id\":13,\"op\":\"column_suggestions\",{s}}}"));
    control.handle_line(&format!("{{\"id\":14,\"op\":\"accept_column\",{s},\"index\":0}}"));
    for probe in &probes {
        let got = recovered.handle_line(probe);
        let want = control.handle_line(probe);
        if got != want {
            let _ = fs.remove_dir_all(&root);
            return Err(format!(
                "recovered session diverged on {probe}:\n  recovered: {got}\n  control:   {want}"
            ));
        }
    }
    recovered.shutdown();
    control.shutdown();
    let _ = fs.remove_dir_all(&root);
    if replayed == 0 {
        return Err("recovery replayed nothing; the WAL never made it to disk".to_string());
    }
    Ok(TransformSummary { program, journaled, replayed, probes: probes.len() })
}

/// Summary of a [`run_herd`] sweep: many shared-world sessions on one
/// server, with the marginal per-session memory cost measured by
/// differencing allocator snapshots around the bulk creation.
#[derive(Debug, Clone)]
pub struct HerdReport {
    /// Shared-world sessions created.
    pub sessions: usize,
    /// Net live-byte growth per session during the bulk creation.
    pub marginal_bytes_per_session: f64,
    /// Sessions that fit in one GiB at that marginal cost.
    pub sessions_per_gb: f64,
    /// Probe requests answered `ok:true` (render + stats + autocomplete
    /// on a sample of the herd).
    pub probes_ok: u64,
}

/// The 10k-session herd smoke: create `sessions` copy-on-write sessions
/// over one shared world, measure the marginal per-session memory via
/// `snap` (a [`CountingAlloc`](copycat_util::bench::CountingAlloc)
/// snapshot hook installed by the caller's binary), and probe a sample
/// of the herd end to end. Fails if any probe errs or if the marginal
/// cost implies fewer than `floor_sessions_per_gb` sessions per GiB.
pub fn run_herd(
    server: &Server,
    sessions: usize,
    floor_sessions_per_gb: f64,
    snap: &dyn Fn() -> copycat_util::bench::AllocSnapshot,
) -> Result<HerdReport, String> {
    let world = "\"world\":{\"seed\":2009,\"venues\":6}";
    let create = |name: &str| {
        let resp = server
            .handle_line(&format!("{{\"id\":0,\"op\":\"create_session\",\"session\":{},{world}}}", esc(name)));
        if resp.contains("\"ok\":true") { Ok(()) } else { Err(format!("create {name}: {resp}")) }
    };
    // Warm rounds pay the one-time costs (shared world build, scratch
    // pools, registry shards) outside the measured window.
    let warm = 64.min(sessions / 4).max(1);
    for i in 0..warm {
        create(&format!("herd-warm-{i}"))?;
    }
    let before = snap();
    for i in 0..sessions {
        create(&format!("herd-{i}"))?;
    }
    let after = snap();
    let marginal = after.live_growth_since(&before).max(1) as f64 / sessions as f64;
    let sessions_per_gb = (1u64 << 30) as f64 / marginal;

    // Probe a spread of the herd: every session sampled must answer
    // the interactive hot path.
    let mut probes_ok = 0u64;
    let stride = (sessions / 16).max(1);
    for i in (0..sessions).step_by(stride) {
        let s = esc(&format!("herd-{i}"));
        for line in [
            format!("{{\"id\":1,\"op\":\"render\",\"session\":{s}}}"),
            format!("{{\"id\":2,\"op\":\"session_stats\",\"session\":{s}}}"),
            format!("{{\"id\":3,\"op\":\"autocomplete\",\"session\":{s},\"values\":[\"a\"],\"k\":1}}"),
        ] {
            let resp = server.handle_line(&line);
            if !resp.contains("\"ok\":true") {
                return Err(format!("herd probe failed: {line} -> {resp}"));
            }
            probes_ok += 1;
        }
    }
    if sessions_per_gb < floor_sessions_per_gb {
        return Err(format!(
            "marginal session cost too high: {marginal:.0} B/session \
             ({sessions_per_gb:.0} sessions/GiB < floor {floor_sessions_per_gb:.0})"
        ));
    }
    Ok(HerdReport { sessions, marginal_bytes_per_session: marginal, sessions_per_gb, probes_ok })
}

/// Summary of a [`run_crash_storm`] sweep.
#[derive(Debug, Clone)]
pub struct CrashStormReport {
    /// Seed driving the simulated filesystem (torn cuts, bit picks,
    /// crash retention).
    pub seed: u64,
    /// Countable I/O operations in the fault-free workload — the
    /// sweep's injection domain.
    pub workload_ops: u64,
    /// Fault-injected runs executed (kinds × strided injection points).
    pub runs: u64,
    /// Faults that actually fired across all runs.
    pub faults_fired: u64,
    /// Acknowledged effects across all runs (baseline included).
    pub acked: u64,
    /// Acked effects present byte-identically after recovery.
    pub recovered: u64,
    /// Acked effects explicitly reported lost to interior corruption.
    pub quarantined: u64,
    /// Acked effects explicitly reported lost with the torn tail.
    pub tail_lost: u64,
    /// Acked effects neither recovered nor reported — must be zero.
    pub silent_losses: u64,
    /// Probe responses checked across all recoveries.
    pub probes: u64,
}

/// What one kill-and-recover run under a fault plan observed.
struct StormRun {
    acked: u64,
    recovered: u64,
    quarantined: u64,
    tail_lost: u64,
    fired: u64,
    /// Property violations: acked effects that vanished without being
    /// reported, or recovered bytes that differ from what was acked.
    silent: Vec<String>,
    probe_responses: Vec<String>,
}

/// The storm's mutation workload: two sessions, all-journaled request
/// classes, sized so `snapshot_every: 4` crosses two snapshot
/// generations on `storm-a` (compaction + generational fallback are in
/// play at every injection point). Lines are canonical (no whitespace,
/// no `deadline_ms`), so the journaled form is byte-identical to what
/// was sent.
fn storm_workload() -> Vec<String> {
    let a = "\"session\":\"storm-a\"";
    let b = "\"session\":\"storm-b\"";
    let mut lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{a}}}"),
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{a},\"name\":\"Sheet\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\
             \"rows\":[[\"V-0\",\"0 Oak St\",\"CityA\"],[\"V-1\",\"1 Oak St\",\"CityB\"],\
             [\"V-2\",\"2 Oak St\",\"CityA\"]]}}"
        ),
        format!(
            "{{\"id\":3,\"op\":\"paste\",{a},\"doc\":0,\"values\":[\"V-0\",\"0 Oak St\",\"CityA\"]}}"
        ),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{a}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{a},\"col\":0,\"name\":\"Venue\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{a},\"name\":\"Shelters\"}}"),
    ];
    for i in 0..3 {
        lines.push(format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{a},\"values\":[\"{i} Oak St\"],\"k\":2}}",
            7 + i,
        ));
    }
    lines.extend([
        format!("{{\"id\":20,\"op\":\"create_session\",{b}}}"),
        format!(
            "{{\"id\":21,\"op\":\"open_doc\",{b},\"name\":\"ContactSheet\",\
             \"headers\":[\"Person\",\"Venue\"],\
             \"rows\":[[\"Ada\",\"V-0\"],[\"Grace\",\"V-1\"]]}}"
        ),
        format!("{{\"id\":22,\"op\":\"paste\",{b},\"doc\":0,\"values\":[\"Ada\",\"V-0\"]}}"),
        format!("{{\"id\":23,\"op\":\"accept_rows\",{b}}}"),
        format!("{{\"id\":24,\"op\":\"name_column\",{b},\"col\":1,\"name\":\"Venue\"}}"),
        format!("{{\"id\":25,\"op\":\"commit_source\",{b},\"name\":\"People\"}}"),
        format!("{{\"id\":26,\"op\":\"autocomplete\",{b},\"values\":[\"Ada\"],\"k\":2}}"),
    ]);
    lines
}

/// Read-only probes against both storm sessions (deterministic
/// responses, byte-comparable to a never-crashed control).
fn storm_probes() -> Vec<String> {
    ["storm-a", "storm-b"]
        .iter()
        .flat_map(|name| {
            let s = format!("\"session\":\"{name}\"");
            [
                format!("{{\"id\":90,\"op\":\"render\",{s}}}"),
                format!("{{\"id\":91,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
                format!("{{\"id\":92,\"op\":\"session_stats\",{s}}}"),
                format!("{{\"id\":93,\"op\":\"save_session\",{s}}}"),
            ]
        })
        .collect()
}

fn storm_config(fs: &Fs, root: Option<PathBuf>) -> crate::router::RouterConfig {
    crate::router::RouterConfig {
        shards: 1,
        server: ServerConfig { workers: 1, queue_depth: 32, shards: 2 },
        snapshot_every: 4,
        sync_every: 1,
        store_root: root,
        fs: fs.clone(),
        ..crate::router::RouterConfig::default()
    }
}

/// One kill-and-recover run under `plan`: drive the workload through a
/// durable router on a seeded [`SimFs`], kill it (drop, no flush),
/// crash the disk, recover, and check the loss-accounting property per
/// session: the recovered journal must equal the acked history at
/// exactly the sequence numbers the [`copycat_store::RecoveryReport`]
/// says survived — byte for byte — with every other acked effect
/// attributed to a reported loss class (quarantined interior record,
/// or tail at `seq > last_seq`). Returns the run plus the simulated
/// op count (the baseline caller uses it to size the sweep).
fn storm_run(
    seed: u64,
    plan: Vec<FaultPlan>,
    workload: &[String],
    probes: &[String],
    sessions: &[&str],
) -> Result<(StormRun, u64), String> {
    use crate::router::Router;
    let sim = Arc::new(SimFs::with_faults(seed, plan));
    let fs = Fs::sim(Arc::clone(&sim));
    let root = PathBuf::from("/storm");
    let router = Router::new(storm_config(&fs, Some(root.clone())));
    for line in workload {
        // Under an armed fault a request may legitimately fail; what
        // matters is what got *acked*, captured from the journal below.
        let _ = router.handle_line(line);
    }
    let pre: Vec<(String, Vec<String>)> = sessions
        .iter()
        .map(|s| (s.to_string(), router.journal_history(s).unwrap_or_default()))
        .collect();
    drop(router); // kill: no shutdown, no flush
    let ops = sim.op_count();
    sim.crash();
    let recovered = Router::recover(storm_config(&fs, Some(root)))
        .map_err(|e| format!("recovery failed: {e}"))?;
    let reports = recovered.recovery_reports();
    let mut out = StormRun {
        acked: 0,
        recovered: 0,
        quarantined: 0,
        tail_lost: 0,
        fired: sim.fired().len() as u64,
        silent: Vec::new(),
        probe_responses: Vec::new(),
    };
    for (name, acked_lines) in &pre {
        // No report = nothing recovered for the session (e.g. its store
        // never materialized, or its name sidecar was corrupt): every
        // acked effect is then tail-shaped loss against last_seq 0.
        let rep = reports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.clone())
            .unwrap_or_default();
        let acked = acked_lines.len() as u64;
        out.acked += acked;
        if rep.last_seq > acked {
            out.silent.push(format!(
                "session {name}: recovery invented records (last_seq {} > acked {acked})",
                rep.last_seq
            ));
            continue;
        }
        // Seqs are assigned 1:1 with journal pushes, so acked line k
        // carries seq k+1; the report enumerates exactly which survive.
        let expected: Vec<&String> = (1..=rep.last_seq)
            .filter(|s| !rep.quarantined.contains(s))
            .map(|s| &acked_lines[(s - 1) as usize])
            .collect();
        let post = recovered.journal_history(name).unwrap_or_default();
        let identical =
            post.len() == expected.len() && post.iter().zip(&expected).all(|(a, b)| a == *b);
        if !identical {
            out.silent.push(format!(
                "session {name}: recovered journal diverges from acked effects \
                 ({} recovered vs {} expected survivors)",
                post.len(),
                expected.len()
            ));
            continue;
        }
        out.recovered += expected.len() as u64;
        out.quarantined += rep.quarantined.len() as u64;
        out.tail_lost += acked - rep.last_seq;
    }
    for probe in probes {
        let resp = recovered.handle_line(probe);
        if Json::parse(&resp).is_err() {
            return Err(format!("probe answered non-JSON after recovery: {probe} -> {resp}"));
        }
        out.probe_responses.push(resp);
    }
    recovered.shutdown();
    Ok((out, ops))
}

/// The crash-storm property sweep: for **every fault kind at every
/// `stride`-th I/O operation** of the seeded workload, kill the router
/// and recover, asserting zero silent losses — each acked effect is
/// byte-identically present or explicitly accounted in a recovery
/// report. Runs that recovered with zero reported loss must also
/// answer every probe byte-identically to a never-crashed control.
/// `stride: 1` (the `copycat-serve crash-storm` smoke) covers every
/// injection point; tests use a coarser stride.
pub fn run_crash_storm(seed: u64, stride: u64) -> Result<CrashStormReport, String> {
    use crate::router::Router;
    let sessions = ["storm-a", "storm-b"];
    let workload = storm_workload();
    let probes = storm_probes();
    let stride = stride.max(1);

    // The never-crashed control: same workload, ephemeral router.
    let control = Router::new(storm_config(&Fs::real(), None));
    for line in &workload {
        let resp = control.handle_line(line);
        if !resp.contains("\"ok\":true") {
            return Err(format!("control refused workload line: {line} -> {resp}"));
        }
    }
    let control_probes: Vec<String> = probes.iter().map(|p| control.handle_line(p)).collect();
    control.shutdown();

    // Fault-free baseline: defines the sweep domain (op count) and must
    // recover everything, byte-identical to the control.
    let (base, ops) = storm_run(seed, Vec::new(), &workload, &probes, &sessions)?;
    if base.acked != workload.len() as u64 {
        return Err(format!(
            "baseline acked {} of {} workload lines",
            base.acked,
            workload.len()
        ));
    }
    if !base.silent.is_empty() || base.quarantined + base.tail_lost != 0 {
        return Err(format!(
            "fault-free baseline lost effects: quarantined {} tail {} silent {:?}",
            base.quarantined, base.tail_lost, base.silent
        ));
    }
    if base.probe_responses != control_probes {
        return Err("baseline recovery diverged from the never-crashed control".into());
    }

    let mut report = CrashStormReport {
        seed,
        workload_ops: ops,
        runs: 0,
        faults_fired: 0,
        acked: base.acked,
        recovered: base.recovered,
        quarantined: 0,
        tail_lost: 0,
        silent_losses: 0,
        probes: base.probe_responses.len() as u64,
    };
    let mut silent: Vec<String> = Vec::new();
    for kind in FaultKind::ALL {
        let mut at = 1u64;
        while at <= ops {
            let (run, _) = storm_run(
                seed,
                vec![FaultPlan { at_op: at, kind }],
                &workload,
                &probes,
                &sessions,
            )?;
            report.runs += 1;
            report.faults_fired += run.fired;
            report.acked += run.acked;
            report.recovered += run.recovered;
            report.quarantined += run.quarantined;
            report.tail_lost += run.tail_lost;
            report.probes += run.probe_responses.len() as u64;
            if run.silent.is_empty()
                && run.quarantined + run.tail_lost == 0
                && run.probe_responses != control_probes
            {
                silent.push(format!(
                    "{}@op{at}: lossless recovery diverged from the control on probes",
                    kind.name()
                ));
            }
            for s in run.silent {
                silent.push(format!("{}@op{at}: {s}", kind.name()));
            }
            at += stride;
        }
    }
    report.silent_losses = silent.len() as u64;
    if !silent.is_empty() {
        return Err(format!(
            "{} silent loss(es) across the storm; first: {}",
            silent.len(),
            silent[0]
        ));
    }
    Ok(report)
}

fn rows_of(j: &Json) -> Vec<Vec<String>> {
    j.as_array()
        .map(|rows| {
            rows.iter()
                .map(|r| {
                    r.as_array()
                        .map(|cells| {
                            cells
                                .iter()
                                .filter_map(|c| c.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default()
}
