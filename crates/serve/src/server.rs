//! The session server: admission → bounded pool → per-session engine
//! dispatch → metrics, with graceful drain.
//!
//! [`Server::handle_line`] *is* the in-process transport: callers hand
//! it one request line and block for the one response line. The TCP
//! listener ([`crate::tcp`]) is a thin byte pump over the same method,
//! so tests and benches exercise exactly the code a socket client hits.
//!
//! Request lifecycle and where deadlines are checked:
//!
//! 1. **Parse** — failures are counted under the synthetic `invalid`
//!    class and answered `bad_request` inline.
//! 2. **Admission** — draining servers answer `shutting_down`; a full
//!    queue answers `overloaded`. The deadline starts here, so time
//!    spent queued counts against the budget.
//! 3. **Dequeue** (worker) — expired requests answer `timeout` without
//!    touching any session.
//! 4. **Post-lookup** — after the session lock is taken but before the
//!    engine runs.
//! 5. **Post-engine** — after the engine op, with any *virtual* service
//!    latency accrued by [`Flaky`] probes charged to the budget. The
//!    op's effects are kept (a consistent prefix), but the client is
//!    told `timeout`.
//!
//! Responses never embed timing, so a given request script produces
//! byte-identical responses whether sessions are driven sequentially or
//! concurrently — the determinism contract the serve tests pin.

use crate::deadline::Deadline;
use crate::metrics::Metrics;
use crate::pool::{Job, Pool, SubmitError};
use crate::protocol::{err_response, ok_response, ErrorKind, Op, Request};
use crate::registry::{SessionRegistry, SessionState};
use copycat_core::{explain, export, CopyCat, WorldBase};
use copycat_document::corpus::contact_sheet;
use copycat_document::{Document, DocumentId};
use copycat_query::{Renamed, Service};
use copycat_services::{
    AddressResolver, CurrencyConverter, Flaky, Geocoder, HealthSnapshot, ReversePhone,
    RetryPolicy, UnitConverter, World, WorldConfig, ZipResolver,
};
use copycat_util::hash::FxHashMap;
use copycat_util::json::{Json, JsonError};
use copycat_util::sync::Mutex;
use copycat_util::zjson::ZDoc;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Pool and registry sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission queue depth; beyond it requests are `overloaded`.
    pub queue_depth: usize,
    /// Registry shard count (rounded up to a power of two).
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, queue_depth: 64, shards: 8 }
    }
}

/// A pooled line buffer larger than this is dropped instead of
/// returned, so one pathological request cannot pin megabytes.
const MAX_POOLED_LINE_CAPACITY: usize = 64 * 1024;

/// State shared between the front door and the workers.
pub(crate) struct Inner {
    registry: SessionRegistry,
    metrics: Metrics,
    accepting: AtomicBool,
    /// Reusable `(parse index, line buffer)` pairs: taken at admission,
    /// returned by the worker after the response is rendered. Warm,
    /// request handling performs no parse-side allocations.
    scratch: Mutex<Vec<(ZDoc, String)>>,
    /// Upper bound on pooled pairs — enough for every queue slot plus
    /// every in-flight worker.
    scratch_cap: usize,
    /// Shared world bases, memoized by `(seed, venues)`: every
    /// `create_session {"world": …}` naming the same config overlays the
    /// same frozen base (see [`WorldBase`]).
    worlds: Mutex<FxHashMap<(u64, usize), Arc<WorldBase>>>,
}

/// The multi-tenant session server.
pub struct Server {
    inner: Arc<Inner>,
    pool: Pool,
}

type OpResult = Result<Json, (ErrorKind, String)>;

fn bad(e: JsonError) -> (ErrorKind, String) {
    (ErrorKind::BadRequest, e.to_string())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn jnum(n: usize) -> Json {
    Json::Num(n as f64)
}

fn jrows(rows: &[Vec<String>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(|c| Json::str(c.as_str())).collect()))
            .collect(),
    )
}

fn jstrings(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::str(s.as_str())).collect())
}

fn jtransform(t: &copycat_core::LearnedTransform) -> Json {
    obj(vec![
        ("edge", Json::Num(t.edge.0 as f64)),
        ("from", Json::str(&t.from_source)),
        ("from_col", Json::str(&t.from_col)),
        ("to", Json::str(&t.to_source)),
        ("to_col", Json::str(&t.to_col)),
        ("program", Json::str(&t.program.to_string())),
        ("cost", Json::Num(t.cost)),
        ("coverage", Json::Num(t.coverage)),
    ])
}

fn jhealth(snap: &HealthSnapshot) -> Json {
    obj(vec![
        ("service", Json::str(&snap.service)),
        ("state", Json::str(snap.state.as_str())),
        ("calls", Json::Num(snap.calls as f64)),
        ("failures", Json::Num(snap.failures as f64)),
        ("retries", Json::Num(snap.retries as f64)),
        ("trips", Json::Num(snap.trips as f64)),
        ("short_circuits", Json::Num(snap.short_circuits as f64)),
        ("observed_failure_rate", Json::Num(snap.observed_failure_rate)),
        ("backoff_virtual_ms", Json::Num(snap.backoff_virtual_ms as f64)),
    ])
}

impl Server {
    /// A server with the given sizing.
    pub fn new(config: ServerConfig) -> Server {
        let inner = Arc::new(Inner {
            registry: SessionRegistry::new(config.shards),
            metrics: Metrics::new(),
            accepting: AtomicBool::new(true),
            scratch: Mutex::new(Vec::new()),
            scratch_cap: config.workers + config.queue_depth + 1,
            worlds: Mutex::new(FxHashMap::default()),
        });
        let worker_inner = Arc::clone(&inner);
        let pool = Pool::new(
            config.workers,
            config.queue_depth,
            Arc::new(move |job| worker_inner.handle_job(job)),
        );
        Server { inner, pool }
    }

    /// A server with default sizing.
    pub fn with_defaults() -> Server {
        Server::new(ServerConfig::default())
    }

    /// The metrics registry (test/bench introspection).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The session registry (test introspection).
    pub fn registry(&self) -> &SessionRegistry {
        &self.inner.registry
    }

    /// Whether the server has begun draining.
    pub fn draining(&self) -> bool {
        !self.inner.accepting.load(Ordering::SeqCst)
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.pool.queued()
    }

    /// Handle one request line, blocking until its response line.
    ///
    /// This is the in-process transport: every transport funnels here.
    pub fn handle_line(&self, line: &str) -> String {
        let metrics = &self.inner.metrics;
        let (mut doc, mut buf) = self.inner.take_scratch();
        buf.push_str(line);
        // Parsed fields borrow `doc`/`buf`; extract the `Copy` envelope
        // (or render an inline response) so the borrows end before both
        // move into the job.
        enum Parsed {
            Admit { op: Op, id_span: Option<(u32, u32)>, deadline_ms: Option<u64> },
            Inline(String),
        }
        let parsed = match Request::parse(&mut doc, &buf) {
            Ok(req) => {
                let op = req.op;
                metrics.admitted(op);
                // `shutdown` is handled inline: it must work even when
                // the queue is full, and it is what closes the front
                // door.
                if op == Op::Shutdown {
                    self.inner.accepting.store(false, Ordering::SeqCst);
                    metrics.ok(op, 0);
                    Parsed::Inline(ok_response(req.id, &obj(vec![("draining", Json::Bool(true))])))
                } else if self.draining() {
                    metrics.shed(op);
                    Parsed::Inline(err_response(req.id, ErrorKind::ShuttingDown, "server is draining"))
                } else {
                    Parsed::Admit {
                        op,
                        id_span: req.body.get("id").map(|v| v.raw_span()),
                        deadline_ms: req.deadline_ms,
                    }
                }
            }
            Err((id, msg)) => {
                metrics.admitted(Op::Invalid);
                metrics.error(Op::Invalid, 0);
                Parsed::Inline(err_response(id, ErrorKind::BadRequest, &msg))
            }
        };
        let (op, id_span, deadline_ms) = match parsed {
            Parsed::Inline(resp) => {
                self.inner.put_scratch(doc, buf);
                return resp;
            }
            Parsed::Admit { op, id_span, deadline_ms } => (op, id_span, deadline_ms),
        };
        let deadline = Deadline::starting_now(deadline_ms);
        let (reply, reply_rx) = sync_channel(1);
        let job = Job { line: buf, doc, op, id_span, deadline, reply };
        match self.pool.submit(job) {
            Ok(()) => match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => {
                    // Unreachable by construction (workers always reply,
                    // even for drained jobs) — but never hang a client.
                    metrics.error(op, 0);
                    err_response("null", ErrorKind::Internal, "worker dropped the reply")
                }
            },
            Err((job, SubmitError::Full)) => {
                metrics.overloaded(op);
                let resp =
                    err_response(job.id_raw(), ErrorKind::Overloaded, "admission queue full; retry");
                let Job { line, doc, .. } = job;
                self.inner.put_scratch(doc, line);
                resp
            }
            Err((job, SubmitError::Closed)) => {
                metrics.shed(op);
                let resp = err_response(job.id_raw(), ErrorKind::ShuttingDown, "server is draining");
                let Job { line, doc, .. } = job;
                self.inner.put_scratch(doc, line);
                resp
            }
        }
    }

    /// Handle one binary-framed request (see [`crate::frame`]),
    /// returning the binary-framed response. Semantics are identical to
    /// [`handle_line`](Server::handle_line) — the frame decodes to the
    /// same canonical line and rides the same path.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        crate::frame::handle_with(frame, |line| self.handle_line(line))
    }

    /// [`handle_line`](Server::handle_line) plus response parsing, for
    /// tests and scripts.
    pub fn handle(&self, line: &str) -> Json {
        // lint:allow(panic-path) test/script convenience on server-produced JSON, not a request path
        Json::parse(&self.handle_line(line)).expect("server responses are valid JSON")
    }

    /// Graceful shutdown: stop admitting, drain queued work, join the
    /// workers. Every already-admitted request still gets its response.
    pub fn shutdown(self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.pool.shutdown();
    }
}

impl Inner {
    /// A `(doc, line)` scratch pair, pooled or fresh.
    fn take_scratch(&self) -> (ZDoc, String) {
        self.scratch
            .lock()
            .pop()
            .unwrap_or_else(|| (ZDoc::new(), String::new()))
    }

    /// Return a scratch pair for reuse. The doc's node/arena capacity is
    /// the whole point — a warm pair parses the next request without
    /// allocating.
    fn put_scratch(&self, doc: ZDoc, mut line: String) {
        if line.capacity() > MAX_POOLED_LINE_CAPACITY {
            return;
        }
        line.clear();
        let mut pool = self.scratch.lock();
        if pool.len() < self.scratch_cap {
            pool.push((doc, line));
        }
    }

    /// The memoized shared base for one world config. Built under the
    /// lock so racing creates observe one `Arc` identity.
    fn shared_world(&self, config: &WorldConfig) -> Arc<WorldBase> {
        let mut worlds = self.worlds.lock();
        Arc::clone(
            worlds
                .entry((config.seed, config.venues))
                .or_insert_with(|| Arc::new(WorldBase::synthetic(config))),
        )
    }

    fn handle_job(&self, job: Job) {
        let Job { line, doc, op, id_span, mut deadline, reply } = job;
        if deadline.expired() {
            self.metrics.timeout(op, deadline.spent_us());
            let id = match id_span {
                Some((start, end)) => &line[start as usize..end as usize],
                None => "null",
            };
            let _ = reply.send(err_response(id, ErrorKind::Timeout, "deadline exceeded while queued"));
            self.put_scratch(doc, line);
            return;
        }
        let resp = match Request::rejoin(&doc, &line) {
            // Unreachable by construction: every admitted job carries
            // the doc its line parsed into.
            None => {
                self.metrics.error(op, deadline.spent_us());
                err_response("null", ErrorKind::Internal, "request line lost in transit")
            }
            Some(req) => {
                let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(&req, &mut deadline)));
                let spent = deadline.spent_us();
                match result {
                    Ok(Ok(json)) => {
                        if deadline.expired() {
                            self.metrics.timeout(op, spent);
                            err_response(
                                req.id,
                                ErrorKind::Timeout,
                                "deadline exceeded during execution",
                            )
                        } else {
                            self.metrics.ok(op, spent);
                            ok_response(req.id, &json)
                        }
                    }
                    Ok(Err((kind, msg))) => {
                        if kind == ErrorKind::Timeout {
                            self.metrics.timeout(op, spent);
                        } else {
                            self.metrics.error(op, spent);
                        }
                        err_response(req.id, kind, &msg)
                    }
                    Err(_) => {
                        self.metrics.error(op, spent);
                        err_response(req.id, ErrorKind::Internal, "handler panicked")
                    }
                }
            }
        };
        let _ = reply.send(resp);
        self.put_scratch(doc, line);
    }

    /// Run a session-scoped op under the session lock, charging any
    /// virtual service latency the op accrued to the request deadline.
    fn with_session<F>(&self, req: &Request, deadline: &mut Deadline, f: F) -> OpResult
    where
        F: FnOnce(&mut SessionState) -> OpResult,
    {
        let name = req
            .session
            .ok_or_else(|| (ErrorKind::BadRequest, "missing \"session\"".to_string()))?;
        let session = self.registry.get(name).map_err(|_| {
            (ErrorKind::NoSuchSession, format!("no session named {name:?}"))
        })?;
        let mut state = session.state.lock();
        if deadline.expired() {
            return Err((ErrorKind::Timeout, "deadline exceeded awaiting session".to_string()));
        }
        let virtual_before = state.virtual_latency_ms();
        let result = f(&mut state);
        let accrued = state.virtual_latency_ms().saturating_sub(virtual_before);
        deadline.charge_virtual_ms(accrued);
        result
    }

    fn dispatch(&self, req: &Request, deadline: &mut Deadline) -> OpResult {
        match req.op {
            Op::Ping => Ok(obj(vec![("pong", Json::Bool(true))])),
            Op::CreateSession => self.create_session(req),
            Op::LoadSession => self.load_session(req),
            Op::CloseSession => self.close_session(req),
            Op::ListSessions => Ok(obj(vec![(
                "sessions",
                jstrings(&self.registry.names()),
            )])),
            Op::Stats => Ok(self.stats()),
            Op::SaveSession => self.with_session(req, deadline, |s| {
                Ok(obj(vec![("snapshot", Json::str(&s.engine.save_session_json()))]))
            }),
            Op::OpenDoc => self.with_session(req, deadline, |s| open_doc(req, s)),
            Op::Paste => self.with_session(req, deadline, |s| paste(req, s)),
            Op::AcceptRows => self.with_session(req, deadline, |s| {
                Ok(obj(vec![("accepted", jnum(s.engine.accept_suggested_rows()))]))
            }),
            Op::NameColumn => self.with_session(req, deadline, |s| {
                let col = req.usize_param("col").map_err(bad)?;
                let name = req.str_param("name").map_err(bad)?;
                Ok(obj(vec![("renamed", Json::Bool(s.engine.name_column(col, name)))]))
            }),
            Op::SetColumnType => self.with_session(req, deadline, |s| {
                let col = req.usize_param("col").map_err(bad)?;
                let ty = req.str_param("type").map_err(bad)?;
                Ok(obj(vec![("set", Json::Bool(s.engine.set_column_type(col, ty)))]))
            }),
            Op::CommitSource => self.with_session(req, deadline, |s| {
                let name = req.str_param("name").map_err(bad)?;
                Ok(obj(vec![("rows", jnum(s.engine.commit_source(name)))]))
            }),
            Op::RegisterWorld => self.with_session(req, deadline, |s| register_world(req, s)),
            Op::RegisterFlaky => self.with_session(req, deadline, |s| register_flaky(req, s)),
            Op::ColumnSuggestions => self.with_session(req, deadline, |s| {
                s.last_suggestions = s.engine.column_suggestions();
                let tripped = s.engine.health().tripped_services();
                if s.last_suggestions.is_empty() && !tripped.is_empty() {
                    return Err((
                        ErrorKind::Unavailable,
                        format!("no completions; services down: {}", tripped.join(", ")),
                    ));
                }
                let listed: Vec<Json> = s
                    .last_suggestions
                    .iter()
                    .enumerate()
                    .map(|(i, sg)| {
                        obj(vec![
                            ("index", jnum(i)),
                            ("label", Json::str(&sg.label)),
                            ("cost", Json::Num(sg.cost)),
                            (
                                "degraded",
                                sg.degraded
                                    .as_deref()
                                    .map_or(Json::Null, Json::str),
                            ),
                            (
                                "columns",
                                Json::Arr(
                                    sg.new_fields
                                        .iter()
                                        .map(|f| Json::str(&f.name))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Ok(obj(vec![("suggestions", Json::Arr(listed))]))
            }),
            Op::AcceptColumn => self.with_session(req, deadline, |s| {
                let i = req.usize_param("index").map_err(bad)?;
                let sugg = s.last_suggestions.get(i).cloned().ok_or_else(|| {
                    (ErrorKind::BadRequest, format!("no suggestion at index {i}"))
                })?;
                s.engine.accept_column(&sugg);
                s.last_suggestions.clear();
                Ok(obj(vec![("accepted", jnum(i))]))
            }),
            Op::RejectColumn => self.with_session(req, deadline, |s| {
                let i = req.usize_param("index").map_err(bad)?;
                let sugg = s.last_suggestions.get(i).cloned().ok_or_else(|| {
                    (ErrorKind::BadRequest, format!("no suggestion at index {i}"))
                })?;
                s.engine.reject_column(&sugg);
                Ok(obj(vec![("rejected", jnum(i))]))
            }),
            Op::Autocomplete => self.with_session(req, deadline, |s| {
                let values = req.strings_param("values").map_err(bad)?;
                let k = req.body.field("k").as_f64().map_or(3, |v| v as usize);
                s.last_queries = s.engine.discover_queries_for_tuple(&values, k);
                let listed: Vec<Json> = s
                    .last_queries
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        obj(vec![
                            ("index", jnum(i)),
                            ("cost", Json::Num(q.cost)),
                            (
                                "degraded",
                                q.degraded
                                    .as_deref()
                                    .map_or(Json::Null, Json::str),
                            ),
                            (
                                "sources",
                                Json::Arr(
                                    q.plan.sources().iter().map(|n| Json::str(*n)).collect(),
                                ),
                            ),
                            (
                                "columns",
                                Json::Arr(
                                    q.result
                                        .schema()
                                        .names()
                                        .iter()
                                        .map(|n| Json::str(*n))
                                        .collect(),
                                ),
                            ),
                            ("rows", jnum(q.result.len())),
                        ])
                    })
                    .collect();
                Ok(obj(vec![("queries", Json::Arr(listed))]))
            }),
            Op::Feedback => self.with_session(req, deadline, |s| {
                let accept = req.usize_param("accept").map_err(bad)?;
                let reject: Vec<usize> = match req.body.get("reject") {
                    Some(v) if v.is_arr() => v
                        .items()
                        .map(|v| {
                            v.as_f64().map(|n| n as usize).ok_or_else(|| {
                                (ErrorKind::BadRequest, "\"reject\" must hold numbers".to_string())
                            })
                        })
                        .collect::<Result<_, _>>()?,
                    None => (0..s.last_queries.len()).filter(|&i| i != accept).collect(),
                    Some(_) => {
                        return Err((ErrorKind::BadRequest, "\"reject\" must be an array".into()))
                    }
                };
                let accepted = s.last_queries.get(accept).cloned().ok_or_else(|| {
                    (ErrorKind::BadRequest, format!("no query at index {accept}"))
                })?;
                let rejected: Vec<_> = reject
                    .iter()
                    .filter(|&&i| i != accept)
                    .filter_map(|&i| s.last_queries.get(i))
                    .collect();
                let constraints = s.engine.prefer_query(&accepted, &rejected);
                Ok(obj(vec![("constraints", jnum(constraints))]))
            }),
            Op::Explain => self.with_session(req, deadline, |s| {
                let row = req.usize_param("row").map_err(bad)?;
                let tab = s.engine.workspace().active();
                let e = explain::explain_row(tab, row).ok_or_else(|| {
                    (ErrorKind::BadRequest, format!("no row {row} in the active tab"))
                })?;
                Ok(obj(vec![
                    ("queries", jstrings(&e.queries)),
                    ("sources", jstrings(&e.sources)),
                    ("alternatives", jnum(e.alternatives.len())),
                    ("text", Json::str(&explain::render(&e))),
                ]))
            }),
            Op::Export => self.with_session(req, deadline, |s| {
                let format = req.str_param("format").map_err(bad)?;
                let tab = s.engine.workspace().active();
                let data = match format {
                    "csv" => export::to_csv(tab),
                    "json" => export::to_json(tab),
                    "xml" => export::to_xml(tab),
                    other => {
                        return Err((
                            ErrorKind::BadRequest,
                            format!("unknown format {other:?} (csv|json|xml)"),
                        ))
                    }
                };
                Ok(obj(vec![("format", Json::str(format)), ("data", Json::str(&data))]))
            }),
            Op::Render => self.with_session(req, deadline, |s| {
                Ok(obj(vec![("text", Json::str(&s.engine.render()))]))
            }),
            Op::Health => self.with_session(req, deadline, |s| {
                let snaps = s.engine.health_snapshots();
                let services: Vec<Json> = snaps.iter().map(jhealth).collect();
                Ok(obj(vec![
                    ("services", Json::Arr(services)),
                    (
                        "tripped",
                        jstrings(&s.engine.health().tripped_services()),
                    ),
                    (
                        "retries",
                        Json::Num(s.engine.health().total_retries() as f64),
                    ),
                    ("trips", Json::Num(s.engine.health().total_trips() as f64)),
                    (
                        "backoff_virtual_ms",
                        Json::Num(s.engine.health().backoff_virtual_ms() as f64),
                    ),
                ]))
            }),
            Op::SessionStats => self.with_session(req, deadline, |s| {
                let cache = s.engine.query_cache_stats();
                Ok(obj(vec![
                    (
                        "query_cache",
                        obj(vec![
                            ("hits", Json::Num(cache.hits as f64)),
                            ("misses", Json::Num(cache.misses as f64)),
                            ("invalidations", Json::Num(cache.invalidations as f64)),
                        ]),
                    ),
                    ("undo_depth", jnum(s.engine.undo_depth())),
                    ("relations", jnum(s.engine.catalog().relation_names().len())),
                    ("graph_version", Json::Num(s.engine.graph().version() as f64)),
                    (
                        "health",
                        obj(vec![
                            ("retries", Json::Num(s.engine.health().total_retries() as f64)),
                            ("trips", Json::Num(s.engine.health().total_trips() as f64)),
                            (
                                "backoff_virtual_ms",
                                Json::Num(s.engine.health().backoff_virtual_ms() as f64),
                            ),
                        ]),
                    ),
                ]))
            }),
            Op::LearnTransform => self.with_session(req, deadline, |s| {
                let from = req.str_param("from").map_err(bad)?;
                let from_col = req.str_param("from_col").map_err(bad)?;
                let to = req.str_param("to").map_err(bad)?;
                let to_col = req.str_param("to_col").map_err(bad)?;
                let pairs = rows_param(req, "examples")?;
                let examples: Vec<(String, String)> = pairs
                    .iter()
                    .map(|p| match p.as_slice() {
                        [i, o] => Ok((i.clone(), o.clone())),
                        _ => Err((
                            ErrorKind::BadRequest,
                            "\"examples\" must hold [input, output] pairs".to_string(),
                        )),
                    })
                    .collect::<Result<_, _>>()?;
                let learned = s
                    .engine
                    .learn_transform(from, from_col, to, to_col, &examples)
                    .ok_or_else(|| {
                        (
                            ErrorKind::BadRequest,
                            format!(
                                "no consistent transform from {from}.{from_col} \
                                 to {to}.{to_col}"
                            ),
                        )
                    })?;
                Ok(jtransform(&learned))
            }),
            Op::ListTransforms => self.with_session(req, deadline, |s| {
                let listed: Vec<Json> =
                    s.engine.list_transforms().iter().map(jtransform).collect();
                Ok(obj(vec![("transforms", Json::Arr(listed))]))
            }),
            // Handled inline at admission; a worker never sees them.
            Op::Shutdown | Op::Invalid => Err((
                ErrorKind::Internal,
                format!("{:?} must not reach the pool", req.op),
            )),
        }
    }

    fn create_session(&self, req: &Request) -> OpResult {
        let name = req
            .session
            .ok_or_else(|| (ErrorKind::BadRequest, "missing \"session\"".to_string()))?;
        // With a `"world"` object the session is a copy-on-write overlay
        // over the memoized shared base for that config — kilobytes of
        // marginal state instead of a rebuilt corpus. Without one it is
        // a flat, private engine (the pre-CoW behavior, byte-for-byte).
        match req.body.get("world") {
            None => {
                self.registry.create(name, CopyCat::new()).map_err(|_| {
                    (ErrorKind::SessionExists, format!("session {name:?} already exists"))
                })?;
                Ok(obj(vec![("session", Json::str(name))]))
            }
            Some(w) if w.is_obj() => {
                let mut config = WorldConfig::default();
                if let Some(seed) = w.field("seed").as_f64() {
                    config.seed = seed as u64;
                }
                if let Some(venues) = w.field("venues").as_f64() {
                    config.venues = (venues as usize).max(1);
                }
                let base = self.shared_world(&config);
                let session =
                    self.registry.create(name, CopyCat::with_base(&base)).map_err(|_| {
                        (ErrorKind::SessionExists, format!("session {name:?} already exists"))
                    })?;
                session.state.lock().world = Some(base.world());
                Ok(obj(vec![
                    ("session", Json::str(name)),
                    (
                        "world",
                        obj(vec![
                            ("seed", Json::Num(config.seed as f64)),
                            ("venues", jnum(config.venues)),
                            ("shared", Json::Bool(true)),
                        ]),
                    ),
                ]))
            }
            Some(_) => Err((ErrorKind::BadRequest, "\"world\" must be an object".to_string())),
        }
    }

    fn load_session(&self, req: &Request) -> OpResult {
        let name = req
            .session
            .ok_or_else(|| (ErrorKind::BadRequest, "missing \"session\"".to_string()))?;
        let snapshot = req.str_param("snapshot").map_err(bad)?;
        let engine = CopyCat::load_session_json(snapshot)
            .map_err(|e| (ErrorKind::BadRequest, format!("bad snapshot: {e}")))?;
        let relations = engine.catalog().relation_names().len();
        self.registry.replace(name, engine);
        Ok(obj(vec![
            ("session", Json::str(name)),
            ("relations", jnum(relations)),
        ]))
    }

    fn close_session(&self, req: &Request) -> OpResult {
        let name = req
            .session
            .ok_or_else(|| (ErrorKind::BadRequest, "missing \"session\"".to_string()))?;
        self.registry
            .remove(name)
            .map_err(|_| (ErrorKind::NoSuchSession, format!("no session named {name:?}")))?;
        Ok(obj(vec![("closed", Json::str(name))]))
    }

    fn stats(&self) -> Json {
        let mut cache = copycat_core::CacheStats::default();
        let mut sessions = 0usize;
        let (mut retries, mut trips, mut backoff_ms, mut tripped) = (0u64, 0u64, 0u64, 0usize);
        self.registry.for_each(|s| {
            let state = s.state.lock();
            let c = state.engine.query_cache_stats();
            cache.hits += c.hits;
            cache.misses += c.misses;
            cache.invalidations += c.invalidations;
            let h = state.engine.health();
            retries += h.total_retries();
            trips += h.total_trips();
            backoff_ms += h.backoff_virtual_ms();
            tripped += h.tripped_services().len();
            sessions += 1;
        });
        Json::obj(vec![
            ("server".to_string(), self.metrics.snapshot_json()),
            ("sessions".to_string(), jnum(sessions)),
            (
                "query_cache".to_string(),
                Json::obj(vec![
                    ("hits".to_string(), Json::Num(cache.hits as f64)),
                    ("misses".to_string(), Json::Num(cache.misses as f64)),
                    (
                        "invalidations".to_string(),
                        Json::Num(cache.invalidations as f64),
                    ),
                ]),
            ),
            (
                "health".to_string(),
                Json::obj(vec![
                    ("retries".to_string(), Json::Num(retries as f64)),
                    ("trips".to_string(), Json::Num(trips as f64)),
                    (
                        "backoff_virtual_ms".to_string(),
                        Json::Num(backoff_ms as f64),
                    ),
                    ("tripped_services".to_string(), jnum(tripped)),
                ]),
            ),
        ])
    }
}

fn open_doc(req: &Request, s: &mut SessionState) -> OpResult {
    let name = req.str_param("name").map_err(bad)?;
    let headers = req.strings_param("headers").map_err(bad)?;
    let rows = rows_param(req, "rows")?;
    let sheet = contact_sheet(name, &headers, rows);
    let DocumentId(id) = s.engine.open(Document::Sheet(sheet));
    Ok(obj(vec![("doc", jnum(id as usize))]))
}

fn paste(req: &Request, s: &mut SessionState) -> OpResult {
    let doc = req.usize_param("doc").map_err(bad)?;
    let values = req.strings_param("values").map_err(bad)?;
    let suggested = s.engine.paste_example(DocumentId(doc as u32), &values);
    Ok(obj(vec![("suggested", jnum(suggested))]))
}

fn register_world(req: &Request, s: &mut SessionState) -> OpResult {
    let mut config = WorldConfig::default();
    if let Some(seed) = req.body.field("seed").as_f64() {
        config.seed = seed as u64;
    }
    if let Some(venues) = req.body.field("venues").as_f64() {
        config.venues = (venues as usize).max(1);
    }
    let world = Arc::new(World::generate(&config));
    s.engine.register_service(Arc::new(ZipResolver::new(Arc::clone(&world))));
    s.engine.register_service(Arc::new(Geocoder::new(Arc::clone(&world))));
    s.engine.register_service(Arc::new(AddressResolver::new(Arc::clone(&world))));
    s.engine.register_service(Arc::new(ReversePhone::new(Arc::clone(&world))));
    s.engine.register_service(Arc::new(CurrencyConverter::new()));
    s.engine.register_service(Arc::new(UnitConverter::new()));
    let services: Vec<String> = s.engine.catalog().service_names();
    // The generated rows go back to the client so a remote tester can
    // paste world-consistent data without sharing memory with us.
    let shelters = world.shelter_rows();
    let contacts = world.contact_rows();
    s.world = Some(world);
    Ok(obj(vec![
        ("services", jstrings(&services)),
        ("shelters", jrows(&shelters)),
        ("contacts", jrows(&contacts)),
    ]))
}

fn register_flaky(req: &Request, s: &mut SessionState) -> OpResult {
    let name = req.str_param("service").map_err(bad)?;
    let failure_rate = req.body.field("failure_rate").as_f64().unwrap_or(0.0);
    let latency_ms = req.body.field("latency_ms").as_f64().unwrap_or(0.0).max(0.0) as u64;
    let seed = req.body.field("seed").as_f64().unwrap_or(1.0) as u64;
    let inner: Arc<dyn Service> = s
        .engine
        .catalog()
        .service(name)
        .ok_or_else(|| (ErrorKind::BadRequest, format!("no service named {name:?}")))?;
    // An equivalent replacement source can be registered alongside: the
    // *un-faulted* service under an alias, available for failover.
    let replacement = req.body.field("replacement").as_str().map(str::to_string);
    if let Some(alias) = &replacement {
        s.engine
            .register_service(Arc::new(Renamed::new(alias.clone(), Arc::clone(&inner))));
    }
    let flaky = Arc::new(Flaky::new(inner, failure_rate, latency_ms, seed));
    // With `retries` (or breaker tuning) the fault-injected service is
    // additionally wrapped in the retry + circuit-breaker layer; its
    // backoff is charged as virtual latency via the health registry.
    let retries = req.body.field("retries").as_f64().map(|v| v as u32);
    let threshold = req.body.field("breaker_threshold").as_f64().map(|v| v as u32);
    let cooldown = req.body.field("cooldown_ms").as_f64().map(|v| v as u64);
    let resilient = retries.is_some() || threshold.is_some() || cooldown.is_some();
    if resilient {
        let mut policy = RetryPolicy::default();
        if let Some(r) = retries {
            policy.max_attempts = r.max(1);
        }
        if let Some(t) = threshold {
            policy.breaker_threshold = t.max(1);
        }
        if let Some(c) = cooldown {
            policy.cooldown_ms = c;
        }
        s.engine
            .register_resilient(Arc::clone(&flaky) as Arc<dyn Service>, policy);
    } else {
        s.engine.register_service(Arc::clone(&flaky) as Arc<dyn Service>);
    }
    s.probes.push(flaky);
    Ok(obj(vec![
        ("wrapped", Json::str(name)),
        ("latency_ms", Json::Num(latency_ms as f64)),
        ("failure_rate", Json::Num(failure_rate)),
        ("resilient", Json::Bool(resilient)),
        (
            "replacement",
            replacement.map_or(Json::Null, |r| Json::str(&r)),
        ),
    ]))
}

fn rows_param(req: &Request, key: &str) -> Result<Vec<Vec<String>>, (ErrorKind, String)> {
    let arr = req
        .body
        .get(key)
        .ok_or_else(|| bad(JsonError::new(format!("missing field {key:?}"))))?;
    if !arr.is_arr() {
        return Err((ErrorKind::BadRequest, format!("{key:?} must be an array")));
    }
    arr.items()
        .map(|row| {
            if !row.is_arr() {
                return Err((
                    ErrorKind::BadRequest,
                    format!("{key:?} must hold arrays of strings"),
                ));
            }
            row.items()
                .map(|c| {
                    c.as_str().map(str::to_string).ok_or_else(|| {
                        (ErrorKind::BadRequest, format!("{key:?} cells must be strings"))
                    })
                })
                .collect()
        })
        .collect()
}
