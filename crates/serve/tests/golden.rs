//! Golden wire-schema tests.
//!
//! The fixtures under `tests/golden/` are committed snapshots of the
//! protocol's observable surface: a full request/response transcript,
//! the `SavedSession` JSON document, and the key-shape of the two
//! stats documents (whose *values* carry real timing and therefore
//! cannot be byte-pinned). Any unversioned change to the wire format —
//! a renamed field, a dropped key, a reordered object — fails here.
//!
//! To version a deliberate change, regenerate and commit the fixtures:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p copycat-serve --test golden
//! ```

use copycat_serve::{smoke, Router, RouterConfig, Server};
use copycat_util::json::Json;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare `actual` to the committed fixture, or rewrite the fixture
/// when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); \
             run UPDATE_GOLDEN=1 cargo test -p copycat-serve --test golden"
        )
    });
    if expected != actual {
        // Locate the first differing line for a readable failure.
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| {
                let e = expected.lines().nth(i).unwrap_or("<eof>");
                let a = actual.lines().nth(i).unwrap_or("<eof>");
                format!("first difference at line {}:\n  fixture: {e}\n  actual : {a}", i + 1)
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: fixture {} vs actual {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "wire schema drifted from golden fixture {name} — {diff_line}\n\
             If this change is intentional, version it: regenerate with \
             UPDATE_GOLDEN=1 and commit the new fixture."
        );
    }
}

/// Sorted key paths with leaf type tags: the *shape* of a JSON value,
/// independent of the (possibly timing-dependent) values.
fn shape(j: &Json) -> String {
    fn walk(j: &Json, prefix: &str, out: &mut BTreeSet<String>) {
        match j {
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.insert(format!("{prefix}:obj"));
                }
                for (k, v) in fields {
                    walk(v, &format!("{prefix}.{k}"), out);
                }
            }
            Json::Arr(items) => {
                out.insert(format!("{prefix}[]"));
                for v in items {
                    walk(v, &format!("{prefix}[]"), out);
                }
            }
            Json::Str(_) => {
                out.insert(format!("{prefix}:str"));
            }
            Json::Num(_) => {
                out.insert(format!("{prefix}:num"));
            }
            Json::Bool(_) => {
                out.insert(format!("{prefix}:bool"));
            }
            Json::Null => {
                out.insert(format!("{prefix}:null"));
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(j, "", &mut out);
    let mut s: String = out.into_iter().map(|p| format!("{p}\n")).collect();
    if s.is_empty() {
        s.push('\n');
    }
    s
}

/// The full smoke conversation — one request of every class — as a
/// committed transcript. Responses are deterministic by protocol
/// design (no timing on the wire); the one exception, `stats`, is
/// normalized to its key shape.
#[test]
fn golden_wire_transcript() {
    let server = Server::with_defaults();
    let log = smoke::run(&server).unwrap_or_else(|e| panic!("smoke failed at {e:?}"));
    let mut transcript = String::new();
    for x in &log {
        transcript.push_str(">> ");
        transcript.push_str(&x.request);
        transcript.push('\n');
        if x.op == "stats" {
            let j = Json::parse(&x.response).expect("stats parses");
            transcript.push_str("<< stats (shape only; values carry timing)\n");
            for line in shape(&j).lines() {
                transcript.push_str("   ");
                transcript.push_str(line);
                transcript.push('\n');
            }
        } else {
            transcript.push_str("<< ");
            transcript.push_str(&x.response);
            transcript.push('\n');
        }
    }
    // The transcript must be reproducible before it is comparable:
    // a second fresh server must produce the identical conversation.
    let server2 = Server::with_defaults();
    let log2 = smoke::run(&server2).expect("second smoke run");
    for (a, b) in log.iter().zip(log2.iter()) {
        if a.op != "stats" {
            assert_eq!(a.response, b.response, "nondeterministic response for {}", a.op);
        }
    }
    assert_golden("wire_transcript.txt", &transcript);
}

/// The binary framing against the committed transcript: every request
/// in the golden fixture, driven through [`Server::handle_frame`], must
/// produce exactly `encode_frame(parse(fixture_response))` — the two
/// framings are byte-equivalent views of one protocol.
#[test]
fn golden_frame_equivalence() {
    use copycat_serve::frame::{decode_frame, encode_frame};
    let fixture = std::fs::read_to_string(fixture_path("wire_transcript.txt"))
        .expect("committed wire transcript");
    let lines: Vec<&str> = fixture.lines().collect();
    let server = Server::with_defaults();
    let mut checked = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(request) = line.strip_prefix(">> ") else { continue };
        // Unparseable request lines exercise the JSON lexer; they have
        // no frame representation. Drive them down the line path so the
        // framed server visits every state the fixture's server did.
        let Ok(req_value) = Json::parse(request) else {
            let _ = server.handle_line(request);
            continue;
        };
        let frame_resp = server.handle_frame(&encode_frame(&req_value));
        let (decoded, used) = decode_frame(&frame_resp).expect("response frame decodes");
        assert_eq!(used, frame_resp.len(), "one frame per response");
        let Some(expected) = lines.get(i + 1).and_then(|l| l.strip_prefix("<< ")) else {
            continue;
        };
        if expected.starts_with("stats (") {
            // Shape-only in the fixture (values carry timing).
            assert_eq!(decoded["ok"].as_bool(), Some(true), "stats over frames");
            continue;
        }
        assert_eq!(decoded.to_string(), expected, "frame response diverged for {request}");
        let expected_frame = encode_frame(&Json::parse(expected).expect("fixture response parses"));
        assert_eq!(frame_resp, expected_frame, "frame bytes diverged for {request}");
        checked += 1;
    }
    assert!(checked >= 25, "transcript exercised over frames ({checked} exchanges)");
}

/// The `SavedSession` document — now carrying `health` (breaker and
/// retry state) and `probes` (fault-injection counters) — pinned
/// byte-for-byte. This is the durability format: WAL checkpoints and
/// `save_session` both rest on it surviving unchanged.
#[test]
fn golden_saved_session_document() {
    let server = Server::with_defaults();
    let log = smoke::run(&server).unwrap_or_else(|e| panic!("smoke failed at {e:?}"));
    let saved = log
        .iter()
        .find(|x| x.op == "save_session")
        .expect("smoke script saves the session");
    let snapshot = Json::parse(&saved.response).expect("json")["result"]["snapshot"]
        .as_str()
        .expect("snapshot string")
        .to_string();
    // Belt and braces: the document must still round-trip through the
    // parser before we pin its bytes.
    let parsed = Json::parse(&snapshot).expect("snapshot is valid JSON");
    for key in ["health", "probes"] {
        assert!(
            matches!(parsed.get(key), Some(Json::Arr(_))),
            "SavedSession must carry {key:?}: {snapshot}"
        );
    }
    let mut doc = snapshot;
    doc.push('\n');
    assert_golden("saved_session.json", &doc);
}

/// Backward compatibility: the committed `SavedSession` fixture —
/// written before copy-on-write worlds existed — still loads into a
/// live (flat) session. Snapshots taken by earlier releases must stay
/// loadable after the CoW refactor.
#[test]
fn pre_cow_saved_session_fixture_loads() {
    let snapshot =
        std::fs::read_to_string(fixture_path("saved_session.json")).expect("committed fixture");
    let server = Server::with_defaults();
    let request = Json::obj(vec![
        ("id".to_string(), Json::Num(1.0)),
        ("op".to_string(), Json::str("load_session")),
        ("session".to_string(), Json::str("legacy")),
        ("snapshot".to_string(), Json::str(snapshot.trim_end())),
    ])
    .to_string();
    let resp = server.handle_line(&request);
    let j = Json::parse(&resp).expect("json");
    assert_eq!(j["ok"].as_bool(), Some(true), "pre-CoW snapshot rejected: {resp}");
    // The loaded session answers queries: render and stats both work.
    let render = server.handle_line("{\"id\":2,\"op\":\"render\",\"session\":\"legacy\"}");
    assert!(render.contains("\"ok\":true"), "{render}");
    let stats = server.handle_line("{\"id\":3,\"op\":\"session_stats\",\"session\":\"legacy\"}");
    let sj = Json::parse(&stats).expect("json");
    assert_eq!(sj["ok"].as_bool(), Some(true), "{stats}");
    assert!(
        sj["result"]["relations"].as_f64().is_some_and(|n| n >= 1.0),
        "loaded session carries its relations: {stats}"
    );
    server.shutdown();
}

/// The server `stats` document's key shape (values are timing).
#[test]
fn golden_server_stats_shape() {
    let server = Server::with_defaults();
    let log = smoke::run(&server).unwrap_or_else(|e| panic!("smoke failed at {e:?}"));
    let stats = log.iter().find(|x| x.op == "stats").expect("smoke script calls stats");
    let j = Json::parse(&stats.response).expect("json");
    assert_golden("server_stats_shape.txt", &shape(&j["result"]));
}

/// The router `stats` document's key shape — placement and durability
/// accounting included. A dropped durability counter fails here.
#[test]
fn golden_router_stats_shape() {
    let root = std::env::temp_dir().join(format!(
        "copycat-golden-router-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let router = Router::new(RouterConfig {
        shards: 2,
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    });
    // A little durable traffic so every durability counter is live.
    for line in [
        "{\"id\":1,\"op\":\"create_session\",\"session\":\"g\"}",
        "{\"id\":2,\"op\":\"open_doc\",\"session\":\"g\",\"name\":\"D\",\
         \"headers\":[\"A\"],\"rows\":[[\"x\"]]}",
    ] {
        let resp = router.handle_line(line);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    assert_golden("router_stats_shape.txt", &shape(&router.stats()));
    router.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
