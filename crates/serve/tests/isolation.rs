//! Cross-session isolation under copy-on-write worlds.
//!
//! Sessions created with a `"world"` config share one frozen
//! [`WorldBase`] — corpus, type registry, graph prefix, and services
//! live behind a single `Arc`. The contract: sharing is **read-only**.
//! No sequence of mutating requests on one session (imports, commits,
//! feedback, probes) may change anything a sibling session observes.
//! The property test below hammers one session with a seeded random
//! workload and asserts the sibling's full observable surface — render,
//! export, stats, autocomplete answers, saved snapshot — is
//! byte-identical before and after.

use copycat_serve::server::{Server, ServerConfig};
use copycat_util::check::check;
use copycat_util::json::Json;

fn small() -> Server {
    Server::new(ServerConfig { workers: 2, queue_depth: 64, shards: 4 })
}

const WORLD: &str = "\"world\":{\"seed\":2009,\"venues\":6}";

/// World-derived probe values (a shelter street and a contact phone)
/// for the fixed seed above: `register_world` with the same seed
/// builds the same rows the shared base was frozen from.
fn world_values() -> (String, String) {
    let server = small();
    let _ = server.handle("{\"id\":0,\"op\":\"create_session\",\"session\":\"w\"}");
    let world = server
        .handle("{\"id\":1,\"op\":\"register_world\",\"session\":\"w\",\"seed\":2009,\"venues\":6}");
    assert_eq!(world["ok"].as_bool(), Some(true), "{world}");
    let street = world["result"]["shelters"][0][1].to_string();
    let phone = world["result"]["contacts"][0][1].to_string();
    server.shutdown();
    (street, phone)
}

/// The sibling's observable surface, as raw response bytes. Includes
/// an autocomplete over world values — the query that reads the
/// *shared* graph — and the session snapshot document. (`session_stats`
/// is checked separately: its query-cache counters are cumulative, so
/// the act of observing changes them.)
fn observe(server: &Server, session: &str, street: &str, phone: &str) -> Vec<String> {
    let s = Json::str(session).to_string();
    [
        format!("{{\"id\":800,\"op\":\"render\",\"session\":{s}}}"),
        format!("{{\"id\":801,\"op\":\"export\",\"session\":{s},\"format\":\"csv\"}}"),
        format!(
            "{{\"id\":803,\"op\":\"autocomplete\",\"session\":{s},\
             \"values\":[{street},{phone}],\"k\":3}}"
        ),
        format!("{{\"id\":804,\"op\":\"save_session\",\"session\":{s}}}"),
    ]
    .iter()
    .map(|l| server.handle_line(l))
    .collect()
}

/// `session_stats` with the cumulative query-cache counters split out:
/// `(structural-stats-json, invalidations)`.
fn stats_of(server: &Server, session: &str) -> (String, f64) {
    let j = server.handle(&format!(
        "{{\"id\":802,\"op\":\"session_stats\",\"session\":{}}}",
        Json::str(session)
    ));
    let invalidations = j["result"]["query_cache"]["invalidations"].as_f64().unwrap_or(-1.0);
    let structural = match &j["result"] {
        Json::Obj(fields) => Json::Obj(
            fields.iter().filter(|(k, _)| k.as_str() != "query_cache").cloned().collect(),
        ),
        other => other.clone(),
    };
    (structural.to_string(), invalidations)
}

#[test]
fn prop_shared_world_sessions_are_isolated() {
    let (street, phone) = world_values();
    check("shared_world_isolation", 6, &[], |g| {
        let server = small();
        for name in ["a", "b"] {
            let resp = server.handle(&format!(
                "{{\"id\":1,\"op\":\"create_session\",\"session\":\"{name}\",{WORLD}}}"
            ));
            copycat_util::prop_ensure!(
                resp["result"]["world"]["shared"].as_bool() == Some(true),
                "shared-world session: {resp}"
            );
        }
        let baseline = observe(&server, "b", &street, &phone);
        let (stats_before, _) = stats_of(&server, "b");
        let relations_before = Json::parse(&stats_before)
            .ok()
            .and_then(|j| j["result"]["relations"].as_f64());

        // A seeded random storm of mutations on "a": a full two-phase
        // import (randomized rows) plus interleaved probes/feedback.
        let esc = |s: &str| Json::str(s).to_string();
        let rows = g.usize_in(2..6);
        let mut lines = Vec::new();
        let mut cells: Vec<Vec<String>> = Vec::new();
        for i in 0..rows {
            cells.push(vec![
                format!("Aux-{i}-{}", g.usize_in(0..1000)),
                format!("{} Elm St", g.usize_in(1..500)),
            ]);
        }
        let rendered: Vec<String> = cells
            .iter()
            .map(|r| format!("[{}]", r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")))
            .collect();
        lines.push(format!(
            "{{\"id\":10,\"op\":\"open_doc\",\"session\":\"a\",\"name\":\"Aux\",\
             \"headers\":[\"Venue\",\"Street\"],\"rows\":[{}]}}",
            rendered.join(",")
        ));
        for row in &cells {
            lines.push(format!(
                "{{\"id\":11,\"op\":\"paste\",\"session\":\"a\",\"doc\":0,\"values\":[{}]}}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            ));
            if g.bool_p(0.5) {
                lines.push(format!(
                    "{{\"id\":12,\"op\":\"autocomplete\",\"session\":\"a\",\
                     \"values\":[{street}],\"k\":{}}}",
                    g.usize_in(1..5)
                ));
            }
            if g.bool_p(0.3) {
                lines.push(format!(
                    "{{\"id\":13,\"op\":\"feedback\",\"session\":\"a\",\"accept\":{}}}",
                    g.usize_in(0..3)
                ));
            }
        }
        lines.push("{\"id\":14,\"op\":\"accept_rows\",\"session\":\"a\"}".to_string());
        lines.push(
            "{\"id\":15,\"op\":\"name_column\",\"session\":\"a\",\"col\":0,\"name\":\"Venue\"}"
                .to_string(),
        );
        lines.push(
            "{\"id\":16,\"op\":\"commit_source\",\"session\":\"a\",\"name\":\"Aux\"}".to_string(),
        );
        lines.push("{\"id\":17,\"op\":\"render\",\"session\":\"a\"}".to_string());
        for line in &lines {
            // Feedback may hit an empty query list; everything else
            // must succeed so the storm is a real mutation workload.
            let resp = server.handle_line(line);
            if !line.contains("\"feedback\"") {
                copycat_util::prop_ensure!(
                    resp.contains("\"ok\":true"),
                    "mutation failed: {line} -> {resp}"
                );
            }
        }

        // Sanity: "a" really did grow past the shared base…
        let a_stats = server.handle("{\"id\":18,\"op\":\"session_stats\",\"session\":\"a\"}");
        let a_relations = a_stats["result"]["relations"].as_f64();
        copycat_util::prop_ensure!(
            a_relations > relations_before,
            "storm committed a relation on \"a\": {a_relations:?} vs {relations_before:?}"
        );
        // …and "b" observed none of it, byte for byte.
        let after = observe(&server, "b", &street, &phone);
        copycat_util::prop_ensure_eq!(
            after,
            baseline,
            "sibling session observed another tenant's edits through the shared world"
        );
        // Structural stats are unchanged and the storm never
        // invalidated "b"'s query cache — a leaked graph mutation
        // would bump its graph version and show up here.
        let (stats_after, invalidations) = stats_of(&server, "b");
        copycat_util::prop_ensure_eq!(stats_after, stats_before, "sibling stats drifted");
        copycat_util::prop_ensure!(
            invalidations == 0.0,
            "sibling query cache invalidated by another tenant: {invalidations}"
        );
        server.shutdown();
        Ok(())
    });
}
