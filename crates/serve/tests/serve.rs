//! Integration tests for the serving layer: full-surface smoke,
//! determinism under concurrency, graceful drain, deadline handling
//! with fault-injected services, and the TCP transport.

use copycat_serve::protocol::Op;
use copycat_serve::server::{Server, ServerConfig};
use copycat_serve::smoke;
use copycat_util::check::check;
use copycat_util::json::Json;
use std::sync::Arc;

// ---------------------------------------------------------------- smoke

/// Every request class round-trips through the in-process transport.
#[test]
fn smoke_round_trips_every_request_class() {
    let log = smoke::run_default().unwrap_or_else(|failed| {
        panic!(
            "smoke failed at {}: request {} got {}",
            failed.op, failed.request, failed.response
        )
    });
    for op in Op::ALL {
        assert!(
            log.iter().any(|x| x.op == op.as_str()),
            "class {:?} never exercised",
            op.as_str()
        );
    }
    // Garbage lines answer bad_request; everything else succeeded or was
    // an allowed data-dependent miss.
    for x in &log {
        if x.op == "invalid" {
            assert!(!x.ok);
            assert!(x.response.contains("bad_request"), "{}", x.response);
        }
    }
}

/// The chaos script: a hard-down primary behind retry + breaker fails
/// over to a healthy replacement alias, with health reported.
#[test]
fn chaos_smoke_trips_breaker_and_fails_over() {
    let log = smoke::run_chaos_default().unwrap_or_else(|failed| {
        panic!(
            "chaos failed at {}: request {} got {}",
            failed.op, failed.request, failed.response
        )
    });
    assert!(log.iter().any(|x| x.op == "health" && x.ok));
    // The health response is part of the log; spot-check its shape.
    let health = log.iter().find(|x| x.op == "health").unwrap();
    assert!(health.response.contains("\"tripped\""), "{}", health.response);
    assert!(health.response.contains("zip_resolver"), "{}", health.response);
}

// ------------------------------------------------- deterministic scripts

/// The per-session conversation the determinism test drives: import two
/// small sources whose rows embed `tag`, join-discover, give feedback,
/// snapshot. Every response to this script is timing-free.
fn session_script(session: &str, tag: &str, venues: usize) -> Vec<String> {
    let esc = |s: &str| Json::str(s).to_string();
    let mut lines = Vec::new();
    let s = format!("\"session\":{}", esc(session));
    let mut id = 0u64;
    let mut push = |id: &mut u64, body: String| {
        *id += 1;
        lines.push(format!("{{\"id\":{id},{body}}}"));
    };
    let shelter_rows: Vec<Vec<String>> = (0..venues)
        .map(|i| {
            vec![
                format!("Venue-{tag}-{i}"),
                format!("{i} Oak St {tag}"),
                format!("City{}", i % 3),
            ]
        })
        .collect();
    let contact_rows: Vec<Vec<String>> = (0..venues)
        .map(|i| {
            vec![
                format!("Person-{tag}-{i}"),
                format!("555-01{i:02}-{tag}"),
                format!("Venue-{tag}-{i}"),
            ]
        })
        .collect();
    let rows_json = |rows: &[Vec<String>]| {
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rendered.join(","))
    };

    push(&mut id, format!("\"op\":\"create_session\",{s}"));
    push(
        &mut id,
        format!(
            "\"op\":\"open_doc\",{s},\"name\":\"Shelters\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\"rows\":{}",
            rows_json(&shelter_rows)
        ),
    );
    for row in &shelter_rows {
        let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
        push(
            &mut id,
            format!("\"op\":\"paste\",{s},\"doc\":0,\"values\":[{}]", cells.join(",")),
        );
    }
    push(&mut id, format!("\"op\":\"accept_rows\",{s}"));
    push(&mut id, format!("\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\""));
    push(&mut id, format!("\"op\":\"commit_source\",{s},\"name\":\"Shelters\""));
    push(
        &mut id,
        format!(
            "\"op\":\"open_doc\",{s},\"name\":\"Contacts\",\
             \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}",
            rows_json(&contact_rows)
        ),
    );
    for row in &contact_rows {
        let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
        push(
            &mut id,
            format!("\"op\":\"paste\",{s},\"doc\":1,\"values\":[{}]", cells.join(",")),
        );
    }
    push(&mut id, format!("\"op\":\"accept_rows\",{s}"));
    push(&mut id, format!("\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Venue\""));
    push(&mut id, format!("\"op\":\"commit_source\",{s},\"name\":\"Contacts\""));
    push(
        &mut id,
        format!(
            "\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3",
            esc(&shelter_rows[0][1]),
            esc(&contact_rows[0][1]),
        ),
    );
    push(&mut id, format!("\"op\":\"feedback\",{s},\"accept\":0"));
    push(&mut id, format!("\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3",
        esc(&shelter_rows[0][1]),
        esc(&contact_rows[0][1]),
    ));
    push(&mut id, format!("\"op\":\"render\",{s}"));
    push(&mut id, format!("\"op\":\"session_stats\",{s}"));
    push(&mut id, format!("\"op\":\"save_session\",{s}"));
    lines
}

fn drive(server: &Server, script: &[String]) -> Vec<String> {
    script.iter().map(|line| server.handle_line(line)).collect()
}

/// N sessions driven concurrently produce byte-identical per-session
/// responses to the same sessions driven sequentially, the queries they
/// discover are real, and the metrics reconcile every admitted request
/// with exactly one response.
#[test]
fn concurrent_sessions_are_deterministic_and_reconcile() {
    check("serve_concurrent_determinism", 4, &[], |g| {
        let n_sessions = g.usize_in(2..5);
        let venues = g.usize_in(3..6);
        let scripts: Vec<(String, Vec<String>)> = (0..n_sessions)
            .map(|i| {
                let name = format!("tenant-{i}");
                let script = session_script(&name, &format!("t{i}"), venues);
                (name, script)
            })
            .collect();

        // Sequential reference run.
        let reference = Server::new(ServerConfig { workers: 2, queue_depth: 64, shards: 4 });
        let expected: Vec<Vec<String>> = scripts
            .iter()
            .map(|(_, script)| drive(&reference, script))
            .collect();
        reference.shutdown();

        // The reference discovers at least one cross-source query.
        let discovery = Json::parse(&expected[0][scripts[0].1.len() - 6]).expect("json");
        copycat_util::prop_ensure!(
            discovery["result"]["queries"]
                .as_array()
                .is_some_and(|qs| !qs.is_empty()),
            "expected cross-source queries, got {discovery}"
        );

        // Concurrent run: one closed-loop client thread per session.
        let server = Arc::new(Server::new(ServerConfig {
            workers: 4,
            queue_depth: 64,
            shards: 4,
        }));
        let mut handles = Vec::new();
        for (_, script) in scripts.iter() {
            let server = Arc::clone(&server);
            let script = script.clone();
            handles.push(std::thread::spawn(move || drive(&server, &script)));
        }
        let got: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for (i, (exp, act)) in expected.iter().zip(&got).enumerate() {
            copycat_util::prop_ensure_eq!(
                exp,
                act,
                "session {i}: concurrent responses differ from sequential"
            );
        }

        // Reconciliation: every admitted request produced one response.
        let sent: u64 = scripts.iter().map(|(_, s)| s.len() as u64).sum();
        copycat_util::prop_ensure_eq!(server.metrics().grand_total(), sent);
        copycat_util::prop_ensure_eq!(server.metrics().grand_responses(), sent);

        let server = Arc::into_inner(server).expect("all clients joined");
        server.shutdown();
        Ok(())
    });
}

/// Fault-injected sessions stay deterministic under concurrency: each
/// session wraps its zip resolver in failure injection + retries with a
/// replacement alias, and the responses — including degraded markers,
/// retry exhaustion, and health counters — are byte-identical whether
/// the sessions run sequentially or concurrently.
#[test]
fn concurrent_fault_injected_sessions_are_deterministic() {
    use copycat_services::{World, WorldConfig};

    // One session's chaos script. The world rows are regenerated locally
    // with the same (seed, venues) the server will use, so the script is
    // fully static.
    fn chaos_script(session: &str, seed: u64, rate: f64) -> Vec<String> {
        let esc = |s: &str| Json::str(s).to_string();
        let world = World::generate(&WorldConfig { seed, venues: 6, ..WorldConfig::default() });
        let shelters = world.shelter_rows();
        let rows_json = {
            let rendered: Vec<String> = shelters
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            format!("[{}]", rendered.join(","))
        };
        let first: Vec<String> = shelters[0].iter().map(|c| esc(c)).collect();
        let s = format!("\"session\":{}", esc(session));
        let mut lines = Vec::new();
        let mut id = 0u64;
        let mut push = |id: &mut u64, body: String| {
            *id += 1;
            lines.push(format!("{{\"id\":{id},{body}}}"));
        };
        push(&mut id, format!("\"op\":\"create_session\",{s}"));
        push(
            &mut id,
            format!("\"op\":\"register_world\",{s},\"seed\":{seed},\"venues\":6"),
        );
        push(
            &mut id,
            format!(
                "\"op\":\"open_doc\",{s},\"name\":\"Sheet\",\
                 \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{rows_json}"
            ),
        );
        push(
            &mut id,
            format!("\"op\":\"paste\",{s},\"doc\":0,\"values\":[{}]", first.join(",")),
        );
        push(&mut id, format!("\"op\":\"accept_rows\",{s}"));
        push(
            &mut id,
            format!("\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\""),
        );
        push(&mut id, format!("\"op\":\"commit_source\",{s},\"name\":\"Shelters\""));
        push(
            &mut id,
            format!(
                "\"op\":\"register_flaky\",{s},\"service\":\"zip_resolver\",\
                 \"failure_rate\":{rate},\"latency_ms\":2,\"seed\":{},\"retries\":2,\
                 \"breaker_threshold\":3,\"cooldown_ms\":100,\
                 \"replacement\":\"zip_backup\"",
                seed ^ 0xF417
            ),
        );
        // Two suggestion rounds: the second sees advanced per-input
        // attempt counters and any breaker state the first produced.
        push(&mut id, format!("\"op\":\"column_suggestions\",{s}"));
        push(&mut id, format!("\"op\":\"column_suggestions\",{s}"));
        push(&mut id, format!("\"op\":\"health\",{s}"));
        push(&mut id, format!("\"op\":\"session_stats\",{s}"));
        lines
    }

    check("serve_chaos_determinism", 3, &[], |g| {
        let n_sessions = g.usize_in(2..5);
        let rate = [0.3, 0.6, 1.0][g.usize_in(0..3)];
        let scripts: Vec<Vec<String>> = (0..n_sessions)
            .map(|i| chaos_script(&format!("chaos-{i}"), 2009 + i as u64, rate))
            .collect();

        let reference = Server::new(ServerConfig { workers: 2, queue_depth: 64, shards: 4 });
        let expected: Vec<Vec<String>> =
            scripts.iter().map(|sc| drive(&reference, sc)).collect();
        reference.shutdown();

        let server = Arc::new(Server::new(ServerConfig {
            workers: 4,
            queue_depth: 64,
            shards: 4,
        }));
        let mut handles = Vec::new();
        for sc in scripts.iter() {
            let server = Arc::clone(&server);
            let sc = sc.clone();
            handles.push(std::thread::spawn(move || drive(&server, &sc)));
        }
        let got: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, (exp, act)) in expected.iter().zip(&got).enumerate() {
            copycat_util::prop_ensure_eq!(
                exp,
                act,
                "chaos session {i}: concurrent responses differ from sequential"
            );
        }
        let server = Arc::into_inner(server).expect("all clients joined");
        server.shutdown();
        Ok(())
    });
}

// ------------------------------------------------------- graceful drain

/// Shutdown while clients are mid-flight: every sent request receives a
/// response (ok or shutting_down), nothing hangs, and the metrics
/// reconcile.
#[test]
fn shutdown_drains_in_flight_requests_without_dropping_responses() {
    let server = Arc::new(Server::new(ServerConfig {
        workers: 2,
        queue_depth: 8,
        shards: 2,
    }));
    let mut clients = Vec::new();
    for c in 0..4 {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut received = 0u64;
            let mut shed = false;
            for i in 0..200 {
                let line = format!("{{\"id\":\"c{c}-{i}\",\"op\":\"ping\"}}");
                sent += 1;
                let resp = server.handle_line(&line);
                assert!(!resp.is_empty());
                received += 1;
                if resp.contains("shutting_down") {
                    shed = true;
                    break;
                }
            }
            (sent, received, shed)
        }));
    }
    // Let the clients get going, then drain.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let resp = server.handle_line("{\"id\":0,\"op\":\"shutdown\"}");
    assert!(resp.contains("\"draining\":true"), "{resp}");

    let mut total_sent = 0;
    let mut total_received = 0;
    for c in clients {
        let (sent, received, _) = c.join().unwrap();
        assert_eq!(sent, received, "a client lost a response");
        total_sent += sent;
        total_received += received;
    }
    assert_eq!(total_sent, total_received);
    // +1 for the shutdown request itself.
    assert_eq!(server.metrics().grand_total(), total_sent + 1);
    assert_eq!(server.metrics().grand_responses(), total_sent + 1);
    let server = Arc::into_inner(server).expect("clients joined");
    server.shutdown();
}

// ------------------------------------------- deadlines + fault injection

fn setup_session_with_flaky(server: &Server, latency_ms: u64) {
    let world = server.handle(
        "{\"id\":1,\"op\":\"create_session\",\"session\":\"s\"}",
    );
    assert_eq!(world["ok"].as_bool(), Some(true));
    let world = server.handle(
        "{\"id\":2,\"op\":\"register_world\",\"session\":\"s\",\"seed\":2009,\"venues\":8}",
    );
    assert_eq!(world["ok"].as_bool(), Some(true), "{world}");
    let shelters = &world["result"]["shelters"];
    let rows = shelters.to_string();
    let open = server.handle(&format!(
        "{{\"id\":3,\"op\":\"open_doc\",\"session\":\"s\",\"name\":\"Sheet\",\
         \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{rows}}}"
    ));
    assert_eq!(open["ok"].as_bool(), Some(true), "{open}");
    let first = shelters[0].to_string();
    let paste = server.handle(&format!(
        "{{\"id\":4,\"op\":\"paste\",\"session\":\"s\",\"doc\":0,\"values\":{first}}}"
    ));
    assert_eq!(paste["ok"].as_bool(), Some(true), "{paste}");
    for line in [
        "{\"id\":5,\"op\":\"accept_rows\",\"session\":\"s\"}",
        "{\"id\":6,\"op\":\"set_column_type\",\"session\":\"s\",\"col\":2,\"type\":\"PR-City\"}",
        "{\"id\":7,\"op\":\"commit_source\",\"session\":\"s\",\"name\":\"Shelters\"}",
    ] {
        let resp = server.handle(line);
        assert_eq!(resp["ok"].as_bool(), Some(true), "{resp}");
    }
    let flaky = server.handle(&format!(
        "{{\"id\":8,\"op\":\"register_flaky\",\"session\":\"s\",\"service\":\"zip_resolver\",\
         \"failure_rate\":0,\"latency_ms\":{latency_ms},\"seed\":7}}"
    ));
    assert_eq!(flaky["ok"].as_bool(), Some(true), "{flaky}");
}

/// A request whose deadline is exceeded by injected (virtual) service
/// latency gets a typed `timeout` error — deterministically, with no
/// thread ever sleeping — and the session stays fully usable after.
#[test]
fn virtual_service_latency_trips_deadlines_deterministically() {
    let server = Server::new(ServerConfig::default());
    // 500ms of virtual latency per zip_resolver call, 100ms budgets.
    setup_session_with_flaky(&server, 500);

    let suggest = server.handle(
        "{\"id\":9,\"op\":\"column_suggestions\",\"session\":\"s\",\"deadline_ms\":100}",
    );
    assert_eq!(suggest["ok"].as_bool(), Some(false), "{suggest}");
    assert_eq!(
        suggest["error"]["kind"].as_str(),
        Some("timeout"),
        "virtual latency must trip the deadline: {suggest}"
    );

    // The shard lock is not poisoned: the same session still answers.
    let render = server.handle("{\"id\":10,\"op\":\"render\",\"session\":\"s\"}");
    assert_eq!(render["ok"].as_bool(), Some(true), "{render}");
    // Without a deadline the same operation succeeds.
    let suggest = server.handle(
        "{\"id\":11,\"op\":\"column_suggestions\",\"session\":\"s\"}",
    );
    assert_eq!(suggest["ok"].as_bool(), Some(true), "{suggest}");

    // The timeout is visible in the metrics, under its class.
    let stats = server.handle("{\"id\":12,\"op\":\"stats\"}");
    let class = &stats["result"]["server"]["classes"]["column_suggestions"];
    assert_eq!(class["timeout"].as_f64(), Some(1.0), "{stats}");
    assert_eq!(class["ok"].as_f64(), Some(1.0), "{stats}");
    server.shutdown();
}

/// Deadlines also fire while queued: a request admitted with an already
/// elapsed budget times out at dequeue without touching the session.
#[test]
fn zero_budget_requests_time_out_at_dequeue() {
    let server = Server::new(ServerConfig::default());
    let create = server.handle("{\"id\":1,\"op\":\"create_session\",\"session\":\"s\"}");
    assert_eq!(create["ok"].as_bool(), Some(true));
    let resp = server.handle(
        "{\"id\":2,\"op\":\"render\",\"session\":\"s\",\"deadline_ms\":0}",
    );
    assert_eq!(resp["ok"].as_bool(), Some(false), "{resp}");
    assert_eq!(resp["error"]["kind"].as_str(), Some("timeout"), "{resp}");
    server.shutdown();
}

// ------------------------------------------------------- error taxonomy

#[test]
fn typed_errors_cover_the_protocol_taxonomy() {
    let server = Server::new(ServerConfig::default());
    let kind = |resp: Json| resp["error"]["kind"].as_str().unwrap_or("?").to_string();

    // bad_request: garbage, unknown op, missing param.
    assert_eq!(kind(server.handle("not json")), "bad_request");
    assert_eq!(kind(server.handle("{\"id\":1,\"op\":\"warp\"}")), "bad_request");
    assert_eq!(
        kind(server.handle("{\"id\":1,\"op\":\"create_session\"}")),
        "bad_request"
    );
    // no_such_session.
    assert_eq!(
        kind(server.handle("{\"id\":1,\"op\":\"render\",\"session\":\"ghost\"}")),
        "no_such_session"
    );
    // session_exists.
    let ok = server.handle("{\"id\":1,\"op\":\"create_session\",\"session\":\"dup\"}");
    assert_eq!(ok["ok"].as_bool(), Some(true));
    assert_eq!(
        kind(server.handle("{\"id\":1,\"op\":\"create_session\",\"session\":\"dup\"}")),
        "session_exists"
    );
    // shutting_down.
    let drain = server.handle("{\"id\":1,\"op\":\"shutdown\"}");
    assert_eq!(drain["ok"].as_bool(), Some(true));
    assert_eq!(kind(server.handle("{\"id\":1,\"op\":\"ping\"}")), "shutting_down");
    server.shutdown();
}

/// When every service that could complete a column is breaker-open and
/// no replacement exists, `column_suggestions` answers the typed
/// `unavailable` error instead of an empty (indistinguishable) list.
#[test]
fn tripped_services_without_replacement_answer_unavailable() {
    let server = Server::new(ServerConfig::default());
    setup_session_with_flaky(&server, 0); // healthy flaky wrapper on zip
    // Re-wrap every street/city-bound service hard-down behind a breaker
    // (no replacement registered).
    for (i, svc) in ["zip_resolver", "geocoder", "address_resolver"].iter().enumerate() {
        let resp = server.handle(&format!(
            "{{\"id\":{},\"op\":\"register_flaky\",\"session\":\"s\",\"service\":\"{svc}\",\
             \"failure_rate\":1,\"latency_ms\":1,\"seed\":3,\"retries\":2,\
             \"breaker_threshold\":2,\"cooldown_ms\":1000000}}",
            20 + i
        ));
        assert_eq!(resp["ok"].as_bool(), Some(true), "{resp}");
    }
    // First round trips the breakers (answers may be partial/degraded);
    // once everything is open, the next round is typed unavailable.
    let mut saw_unavailable = false;
    for i in 0..4 {
        let resp = server.handle(&format!(
            "{{\"id\":{},\"op\":\"column_suggestions\",\"session\":\"s\"}}",
            30 + i
        ));
        if resp["ok"].as_bool() == Some(false) {
            assert_eq!(resp["error"]["kind"].as_str(), Some("unavailable"), "{resp}");
            saw_unavailable = true;
            break;
        }
    }
    assert!(saw_unavailable, "breakers never produced a typed unavailable error");
    server.shutdown();
}

// ----------------------------------------------------------------- tcp

#[test]
fn tcp_transport_round_trips_and_drains() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Server::new(ServerConfig::default());
    let serve_thread = std::thread::spawn(move || copycat_serve::tcp::serve(listener, server));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut write = |line: &str| {
        let mut s = &stream;
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        s.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).expect("json response")
    };

    let pong = write("{\"id\":1,\"op\":\"ping\"}");
    assert_eq!(pong["ok"].as_bool(), Some(true));
    assert_eq!(pong["result"]["pong"].as_bool(), Some(true));
    let made = write("{\"id\":2,\"op\":\"create_session\",\"session\":\"tcp\"}");
    assert_eq!(made["ok"].as_bool(), Some(true));
    let listed = write("{\"id\":3,\"op\":\"list_sessions\"}");
    assert_eq!(listed["result"]["sessions"][0].as_str(), Some("tcp"));
    let drain = write("{\"id\":4,\"op\":\"shutdown\"}");
    assert_eq!(drain["result"]["draining"].as_bool(), Some(true));

    serve_thread.join().unwrap().expect("serve exits cleanly");
}

/// Regression: a client that frames with CRLF (`\r\n`) — telnet, Windows
/// tooling, half the HTTP-adjacent world — must get the same answers as
/// a `\n` client, and a final request whose connection closed before the
/// terminating newline must still be served. Both used to depend on
/// `BufRead::lines()` quirks; framing is now explicit in the transport.
#[test]
fn tcp_transport_accepts_crlf_and_unterminated_final_line() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Server::new(ServerConfig::default());
    let serve_thread = std::thread::spawn(move || copycat_serve::tcp::serve(listener, server));

    // Connection 1: CRLF framing throughout, including a blank CRLF
    // keep-alive line that must be ignored rather than answered.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut write_crlf = |line: &str| {
            let mut s = &stream;
            s.write_all(line.as_bytes()).unwrap();
            s.write_all(b"\r\n").unwrap();
            s.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            Json::parse(resp.trim()).expect("json response")
        };
        {
            let mut s = &stream;
            s.write_all(b"\r\n").unwrap(); // blank keep-alive
            s.flush().unwrap();
        }
        let pong = write_crlf("{\"id\":1,\"op\":\"ping\"}");
        assert_eq!(pong["ok"].as_bool(), Some(true), "{pong}");
        let made = write_crlf("{\"id\":2,\"op\":\"create_session\",\"session\":\"crlf\"}");
        assert_eq!(made["ok"].as_bool(), Some(true), "{made}");
    }

    // Connection 2: the final request has NO terminating newline — the
    // client closes its write half instead. It must still be answered.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        {
            let mut s = &stream;
            s.write_all(b"{\"id\":3,\"op\":\"list_sessions\"}").unwrap();
            s.flush().unwrap();
            stream.shutdown(Shutdown::Write).expect("half-close");
        }
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let listed = Json::parse(resp.trim()).expect("json response");
        assert_eq!(listed["result"]["sessions"][0].as_str(), Some("crlf"), "{listed}");
    }

    // Shut the server down (plain framing still fine).
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut s = &stream;
        s.write_all(b"{\"id\":4,\"op\":\"shutdown\"}\r\n").unwrap();
        s.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let drain = Json::parse(resp.trim()).expect("json response");
        assert_eq!(drain["result"]["draining"].as_bool(), Some(true), "{drain}");
    }

    serve_thread.join().unwrap().expect("serve exits cleanly");
}
