//! Kill-and-recover and shard-routing integration tests.
//!
//! The contract under test: a [`Router`] with a durable store that is
//! *dropped without shutdown* (the crash simulation — buffered journal
//! records and worker pools die abruptly) and then rebuilt with
//! [`Router::recover`] serves **byte-identical** responses to a control
//! router that never crashed. Determinism of the protocol (responses
//! carry no timing, engines are seeded) is what makes replay a correct
//! recovery strategy, and these tests are what pin it.

use copycat_serve::router::{Router, RouterConfig};
use copycat_serve::server::ServerConfig;
use copycat_services::{World, WorldConfig};
use copycat_util::check::check;
use copycat_util::json::Json;
use std::path::PathBuf;

/// A unique, empty scratch root per test invocation.
fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copycat-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_server() -> ServerConfig {
    ServerConfig { workers: 2, queue_depth: 64, shards: 4 }
}

/// A deterministic two-source import + integration conversation.
fn script(session: &str, tag: &str, venues: usize) -> Vec<String> {
    let esc = |s: &str| Json::str(s).to_string();
    let s = format!("\"session\":{}", esc(session));
    let mut id = 0u64;
    let mut lines = Vec::new();
    fn push(id: &mut u64, body: String, lines: &mut Vec<String>) {
        *id += 1;
        lines.push(format!("{{\"id\":{id},{body}}}"));
    }
    // World-consistent rows: column suggestions only surface when the
    // simulated services can actually answer for the pasted values, so
    // the pasted sheets must come from the same deterministic world the
    // session registers. The seed varies by tag to keep sessions'
    // content distinct.
    let seed = 2009 + tag.bytes().map(u64::from).sum::<u64>();
    let world =
        World::generate(&WorldConfig { seed, venues: venues.max(1), ..WorldConfig::default() });
    let shelter_rows: Vec<Vec<String>> = world.shelter_rows();
    let contact_rows: Vec<Vec<String>> = world.contact_rows();
    let rows_json = |rows: &[Vec<String>]| {
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rendered.join(","))
    };

    push(&mut id, format!("\"op\":\"create_session\",{s}"), &mut lines);
    // Deterministic service registry (zip_resolver, geocoder, …): what
    // column_suggestions binds against.
    push(
        &mut id,
        format!("\"op\":\"register_world\",{s},\"seed\":{seed},\"venues\":{}", venues.max(1)),
        &mut lines,
    );
    push(
        &mut id,
        format!(
            "\"op\":\"open_doc\",{s},\"name\":\"Shelters\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\"rows\":{}",
            rows_json(&shelter_rows)
        ),
        &mut lines,
    );
    for row in &shelter_rows {
        let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
        push(
            &mut id,
            format!("\"op\":\"paste\",{s},\"doc\":0,\"values\":[{}]", cells.join(",")),
            &mut lines,
        );
    }
    push(&mut id, format!("\"op\":\"accept_rows\",{s}"), &mut lines);
    push(&mut id, format!("\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\""), &mut lines);
    // Explicit street name + city type: the zip_resolver/geocoder bind
    // edges match inputs by name or semantic type, and street-suffix
    // inference is not reliable for every generated world.
    push(&mut id, format!("\"op\":\"name_column\",{s},\"col\":1,\"name\":\"Street\""), &mut lines);
    push(&mut id, format!("\"op\":\"set_column_type\",{s},\"col\":2,\"type\":\"PR-City\""), &mut lines);
    push(&mut id, format!("\"op\":\"commit_source\",{s},\"name\":\"Shelters\""), &mut lines);
    // Integration suggestions on the Shelters tab (the PR-City column
    // binds the world services), one accepted and one rejected — both
    // decisions are mutating state the replay must reproduce
    // (suggestion lists are referenced by index).
    push(&mut id, format!("\"op\":\"column_suggestions\",{s}"), &mut lines);
    push(&mut id, format!("\"op\":\"accept_column\",{s},\"index\":0"), &mut lines);
    push(&mut id, format!("\"op\":\"column_suggestions\",{s}"), &mut lines);
    push(&mut id, format!("\"op\":\"reject_column\",{s},\"index\":0"), &mut lines);
    push(
        &mut id,
        format!(
            "\"op\":\"open_doc\",{s},\"name\":\"Contacts\",\
             \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}",
            rows_json(&contact_rows)
        ),
        &mut lines,
    );
    for row in &contact_rows {
        let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
        push(
            &mut id,
            format!("\"op\":\"paste\",{s},\"doc\":1,\"values\":[{}]", cells.join(",")),
            &mut lines,
        );
    }
    push(&mut id, format!("\"op\":\"accept_rows\",{s}"), &mut lines);
    push(&mut id, format!("\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Venue\""), &mut lines);
    push(&mut id, format!("\"op\":\"commit_source\",{s},\"name\":\"Contacts\""), &mut lines);
    // An example-learned transform edge (identity over venue names).
    let examples: Vec<String> = contact_rows
        .iter()
        .take(3)
        .map(|row| {
            let v = esc(&row[2]);
            format!("[{v},{v}]")
        })
        .collect();
    push(
        &mut id,
        format!(
            "\"op\":\"learn_transform\",{s},\"from\":\"Contacts\",\"from_col\":\"Venue\",\
             \"to\":\"Shelters\",\"to_col\":\"Venue\",\"examples\":[{}]",
            examples.join(",")
        ),
        &mut lines,
    );
    push(
        &mut id,
        format!(
            "\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3",
            esc(&shelter_rows[0][1]),
            esc(&contact_rows[0][1]),
        ),
        &mut lines,
    );
    push(&mut id, format!("\"op\":\"feedback\",{s},\"accept\":0"), &mut lines);
    push(&mut id, format!("\"op\":\"render\",{s}"), &mut lines);
    lines
}

/// Read-only observation requests: identical answers on a recovered
/// router and a never-crashed control prove state equivalence.
fn probes(session: &str) -> Vec<String> {
    let s = Json::str(session).to_string();
    vec![
        format!("{{\"id\":900,\"op\":\"render\",\"session\":{s}}}"),
        format!("{{\"id\":901,\"op\":\"export\",\"session\":{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":902,\"op\":\"session_stats\",\"session\":{s}}}"),
        format!("{{\"id\":903,\"op\":\"health\",\"session\":{s}}}"),
        format!("{{\"id\":904,\"op\":\"save_session\",\"session\":{s}}}"),
    ]
}

fn drive(router: &Router, lines: &[String]) -> Vec<String> {
    lines.iter().map(|l| router.handle_line(l)).collect()
}

/// Basic kill-and-recover: run a full conversation with snapshots
/// enabled (small `snapshot_every` forces checkpoint + WAL-tail
/// recovery, not just tail replay), crash, recover, and observe the
/// exact same session.
#[test]
fn kill_and_recover_is_byte_identical_with_snapshots() {
    let root = temp_root("basic");
    let lines = script("alice", "a", 4);

    let durable = Router::new(RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        snapshot_every: 3,
        sync_every: 1,
        ..RouterConfig::default()
    });
    for resp in drive(&durable, &lines) {
        let j = Json::parse(&resp).expect("json");
        assert_eq!(j["ok"].as_bool(), Some(true), "{resp}");
    }
    drop(durable); // crash: no shutdown, no final flush

    let recovered = Router::recover(RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        snapshot_every: 3,
        sync_every: 1,
        ..RouterConfig::default()
    })
    .expect("recovery");
    let stats = recovered.stats();
    assert_eq!(stats["durability"]["recovered_sessions"].as_f64(), Some(1.0), "{stats}");
    assert!(
        stats["durability"]["replayed_records"].as_f64().unwrap_or(0.0) > 0.0,
        "{stats}"
    );

    let control = Router::new(RouterConfig {
        shards: 2,
        server: small_server(),
        ..RouterConfig::default()
    });
    drive(&control, &lines);

    assert_eq!(drive(&recovered, &probes("alice")), drive(&control, &probes("alice")));
    // The recovered session is live, not a museum piece: it keeps
    // accepting work identically.
    let more = format!(
        "{{\"id\":950,\"op\":\"autocomplete\",\"session\":\"alice\",\
         \"values\":[\"0 Oak St a\",\"555-0100-a\"],\"k\":2}}"
    );
    assert_eq!(recovered.handle_line(&more), control.handle_line(&more));

    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The tentpole property: for a *random cut point k*, a router killed
/// after k acked requests recovers to exactly the state of a control
/// that executed those same k requests — for arbitrary script sizes
/// and snapshot cadences, byte-for-byte.
#[test]
fn prop_kill_and_recover_preserves_every_acked_prefix() {
    check("router_kill_and_recover", 5, &[], |g| {
        let venues = g.usize_in(3..6);
        let snapshot_every = g.u64_in(2..8);
        let lines = script("tenant", "p", venues);
        let k = g.usize_in(1..lines.len() + 1);
        let root = temp_root(&format!("prop-{venues}-{snapshot_every}-{k}"));
        let config = || RouterConfig {
            shards: 2,
            server: small_server(),
            store_root: Some(root.clone()),
            snapshot_every,
            sync_every: 1,
            ..RouterConfig::default()
        };

        let durable = Router::new(config());
        drive(&durable, &lines[..k]);
        drop(durable); // crash

        let recovered = Router::recover(config()).map_err(|e| format!("recover: {e}"))?;
        let control = Router::new(RouterConfig {
            shards: 2,
            server: small_server(),
            ..RouterConfig::default()
        });
        drive(&control, &lines[..k]);

        let got = drive(&recovered, &probes("tenant"));
        let want = drive(&control, &probes("tenant"));
        copycat_util::prop_ensure_eq!(
            got,
            want,
            "cut at {k}/{} with snapshot_every={snapshot_every}",
            lines.len()
        );
        // And both continue identically past the cut.
        if k < lines.len() {
            let got_rest = drive(&recovered, &lines[k..]);
            let want_rest = drive(&control, &lines[k..]);
            copycat_util::prop_ensure_eq!(got_rest, want_rest, "continuation after cut {k}");
        }
        recovered.shutdown();
        control.shutdown();
        let _ = std::fs::remove_dir_all(&root);
        Ok(())
    });
}

/// Chaos recovery: a session whose zip resolver is hard-down behind a
/// retry + breaker wrapper trips the breaker, crashes, and recovers
/// with the breaker *still tripped* and the fault-injection roll
/// sequence intact — replay reproduces the health machine exactly.
#[test]
fn recovery_preserves_tripped_breakers_under_chaos() {
    // Build the chaos conversation against a throwaway server first:
    // the open_doc rows come from the seeded world response, so the
    // final script is a static line list both routers replay verbatim.
    let throwaway = copycat_serve::Server::with_defaults();
    let _ = throwaway.handle("{\"id\":0,\"op\":\"create_session\",\"session\":\"x\"}");
    let world = throwaway.handle(
        "{\"id\":1,\"op\":\"register_world\",\"session\":\"x\",\"seed\":2009,\"venues\":8}",
    );
    assert_eq!(world["ok"].as_bool(), Some(true), "{world}");
    let rows = world["result"]["shelters"].to_string();
    let first = world["result"]["shelters"][0].to_string();
    throwaway.shutdown();

    let mut lines = vec![
        "{\"id\":1,\"op\":\"create_session\",\"session\":\"chaos\"}".to_string(),
        "{\"id\":2,\"op\":\"register_world\",\"session\":\"chaos\",\"seed\":2009,\"venues\":8}"
            .to_string(),
        format!(
            "{{\"id\":3,\"op\":\"open_doc\",\"session\":\"chaos\",\"name\":\"Sheet\",\
             \"headers\":[\"Name\",\"Street\",\"City\"],\"rows\":{rows}}}"
        ),
        format!("{{\"id\":4,\"op\":\"paste\",\"session\":\"chaos\",\"doc\":0,\"values\":{first}}}"),
        "{\"id\":5,\"op\":\"accept_rows\",\"session\":\"chaos\"}".to_string(),
        "{\"id\":6,\"op\":\"set_column_type\",\"session\":\"chaos\",\"col\":2,\"type\":\"PR-City\"}"
            .to_string(),
        "{\"id\":7,\"op\":\"commit_source\",\"session\":\"chaos\",\"name\":\"Shelters\"}"
            .to_string(),
        // Hard-down primary behind retry + breaker, big cooldown so the
        // trip is durable state, not a transient.
        "{\"id\":8,\"op\":\"register_flaky\",\"session\":\"chaos\",\"service\":\"zip_resolver\",\
         \"failure_rate\":1,\"latency_ms\":1,\"seed\":3,\"retries\":2,\
         \"breaker_threshold\":2,\"cooldown_ms\":1000000}"
            .to_string(),
    ];
    for i in 0..4 {
        lines.push(format!(
            "{{\"id\":{},\"op\":\"column_suggestions\",\"session\":\"chaos\"}}",
            9 + i
        ));
    }

    let root = temp_root("chaos");
    let config = || RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        snapshot_every: 5,
        sync_every: 1,
        ..RouterConfig::default()
    };
    let durable = Router::new(config());
    let responses = drive(&durable, &lines);
    drop(durable); // crash with the breaker tripped

    let recovered = Router::recover(config()).expect("recovery");
    let control = Router::new(RouterConfig {
        shards: 2,
        server: small_server(),
        ..RouterConfig::default()
    });
    let control_responses = drive(&control, &lines);
    assert_eq!(responses, control_responses, "pre-crash run matches control");

    let got = drive(&recovered, &probes("chaos"));
    let want = drive(&control, &probes("chaos"));
    assert_eq!(got, want, "recovered chaos session is byte-identical");

    // The breaker state specifically survived: health names the trip.
    let health = Json::parse(&got[3]).expect("json");
    let tripped = health["result"]["tripped"].to_string();
    assert!(tripped.contains("zip_resolver"), "breaker still open after recovery: {health}");

    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Live migration: drain → checkpoint → transfer → resume. The session
/// answers identically after moving shards, placement reflects the
/// override, and the global listing never changes.
#[test]
fn migration_moves_a_live_session_without_observable_change() {
    let router = Router::new(RouterConfig {
        shards: 3,
        server: small_server(),
        ..RouterConfig::default()
    });
    let control = Router::new(RouterConfig {
        shards: 3,
        server: small_server(),
        ..RouterConfig::default()
    });
    let lines = script("mover", "m", 4);
    drive(&router, &lines);
    drive(&control, &lines);

    let before = router.handle_line("{\"id\":10,\"op\":\"list_sessions\"}");
    let from = router.shard_of("mover");
    let to = (from + 1) % 3;
    let report = router.migrate_session("mover", to).expect("migrate");
    assert_eq!((report.from, report.to), (from, to));
    assert!(report.replayed > 0, "checkpoint replayed: {report:?}");
    assert_eq!(router.shard_of("mover"), to);
    // The target shard now owns the session; the source does not.
    assert!(router.shard(to).registry().get("mover").is_ok());
    assert!(router.shard(from).registry().get("mover").is_err());
    assert_eq!(router.handle_line("{\"id\":10,\"op\":\"list_sessions\"}"), before);

    // Same answers as the never-migrated control, and the session
    // keeps working on its new shard.
    assert_eq!(drive(&router, &probes("mover")), drive(&control, &probes("mover")));
    let more = "{\"id\":950,\"op\":\"autocomplete\",\"session\":\"mover\",\
                \"values\":[\"0 Oak St m\",\"555-0100-m\"],\"k\":2}";
    assert_eq!(router.handle_line(more), control.handle_line(more));

    // Degenerate migrations are typed, not silent corruption.
    assert!(router.migrate_session("ghost", 0).is_err());
    assert!(router.migrate_session("mover", 99).is_err());
    assert_eq!(router.migrate_session("mover", to).expect("no-op").replayed, 0);

    router.shutdown();
    control.shutdown();
}

/// Multi-tenant recovery across shards, including a torn WAL tail:
/// garbage appended to one session's log (a crash mid-write) is
/// truncated and counted, never poisoning the other tenants.
#[test]
fn recovery_restores_all_tenants_and_survives_torn_tails() {
    let root = temp_root("multi");
    let config = || RouterConfig {
        shards: 3,
        server: small_server(),
        store_root: Some(root.clone()),
        snapshot_every: 100, // keep everything in the WAL tail
        sync_every: 1,
        ..RouterConfig::default()
    };
    let names = ["ann", "bob", "cyd", "dee"];
    let durable = Router::new(config());
    let control = Router::new(RouterConfig {
        shards: 3,
        server: small_server(),
        ..RouterConfig::default()
    });
    for (i, name) in names.iter().enumerate() {
        let lines = script(name, &format!("t{i}"), 3);
        drive(&durable, &lines);
        drive(&control, &lines);
    }
    let listing = durable.handle_line("{\"id\":1,\"op\":\"list_sessions\"}");
    drop(durable); // crash

    // Tear one WAL: append garbage past the last synced record.
    let mut wals: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("root")
        .filter_map(|e| e.ok())
        .map(|e| e.path().join("wal.log"))
        .filter(|p| p.exists())
        .collect();
    wals.sort();
    assert_eq!(wals.len(), names.len(), "one store per tenant");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wals[0])
            .expect("open wal");
        f.write_all(&[0xFF, 0x00, 0xAB, 0x17, 0x99]).expect("tear");
    }

    let recovered = Router::recover(config()).expect("recovery");
    let stats = recovered.stats();
    assert_eq!(
        stats["durability"]["recovered_sessions"].as_f64(),
        Some(names.len() as f64),
        "{stats}"
    );
    assert!(stats["durability"]["torn_bytes"].as_f64().unwrap_or(0.0) > 0.0, "{stats}");
    assert_eq!(recovered.handle_line("{\"id\":1,\"op\":\"list_sessions\"}"), listing);
    for name in names {
        assert_eq!(
            drive(&recovered, &probes(name)),
            drive(&control, &probes(name)),
            "tenant {name}"
        );
    }

    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Copy-on-write worlds recover like flat sessions: a `create_session`
/// carrying a `"world"` config is journaled, so replay rebuilds the
/// session over a deterministically reconstructed shared base —
/// [`WorldBase::synthetic`] is a pure function of the config — and
/// every follow-up request lands on byte-identical state.
#[test]
fn shared_world_sessions_kill_and_recover_byte_identically() {
    // Fetch world-consistent probe values once: the same seed produces
    // the same world inside the shared base.
    let throwaway = copycat_serve::Server::with_defaults();
    let _ = throwaway.handle("{\"id\":0,\"op\":\"create_session\",\"session\":\"x\"}");
    let world = throwaway.handle(
        "{\"id\":1,\"op\":\"register_world\",\"session\":\"x\",\"seed\":7,\"venues\":6}",
    );
    assert_eq!(world["ok"].as_bool(), Some(true), "{world}");
    let street = world["result"]["shelters"][0][1].to_string();
    let phone = world["result"]["contacts"][0][1].to_string();
    throwaway.shutdown();

    let lines = vec![
        "{\"id\":1,\"op\":\"create_session\",\"session\":\"cow\",\
         \"world\":{\"seed\":7,\"venues\":6}}"
            .to_string(),
        // The shared base answers autocomplete with no per-session
        // import: Shelters and Contacts live in the frozen prefix.
        format!(
            "{{\"id\":2,\"op\":\"autocomplete\",\"session\":\"cow\",\
             \"values\":[{street},{phone}],\"k\":3}}"
        ),
        "{\"id\":3,\"op\":\"feedback\",\"session\":\"cow\",\"accept\":0}".to_string(),
        // Session-local growth layered over the shared base.
        "{\"id\":4,\"op\":\"open_doc\",\"session\":\"cow\",\"name\":\"Notes\",\
         \"headers\":[\"K\",\"V\"],\"rows\":[[\"a\",\"1\"],[\"b\",\"2\"]]}"
            .to_string(),
        "{\"id\":5,\"op\":\"paste\",\"session\":\"cow\",\"doc\":0,\"values\":[\"a\",\"1\"]}"
            .to_string(),
        "{\"id\":6,\"op\":\"accept_rows\",\"session\":\"cow\"}".to_string(),
        "{\"id\":7,\"op\":\"commit_source\",\"session\":\"cow\",\"name\":\"Notes\"}".to_string(),
    ];

    let root = temp_root("cow");
    let config = || RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        snapshot_every: 3,
        sync_every: 1,
        ..RouterConfig::default()
    };
    let durable = Router::new(config());
    for resp in drive(&durable, &lines) {
        let j = Json::parse(&resp).expect("json");
        assert_eq!(j["ok"].as_bool(), Some(true), "{resp}");
    }
    drop(durable); // crash

    let recovered = Router::recover(config()).expect("recovery");
    let control = Router::new(RouterConfig {
        shards: 2,
        server: small_server(),
        ..RouterConfig::default()
    });
    drive(&control, &lines);
    assert_eq!(drive(&recovered, &probes("cow")), drive(&control, &probes("cow")));
    // And the recovered overlay session keeps answering from the
    // shared world identically.
    let more = format!(
        "{{\"id\":950,\"op\":\"autocomplete\",\"session\":\"cow\",\
         \"values\":[{street},{phone}],\"k\":2}}"
    );
    assert_eq!(recovered.handle_line(&more), control.handle_line(&more));

    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// `load_session` is journaled like any other mutation: a session
/// restored from a snapshot string, then crashed, recovers to the same
/// state as a control that loaded the same snapshot and never crashed.
#[test]
fn load_session_snapshot_recovers_after_crash() {
    // Build a snapshot with a throwaway server so the load_session
    // request is a static line both routers replay verbatim.
    let throwaway = copycat_serve::Server::with_defaults();
    for line in script("donor", "l", 3) {
        let resp = throwaway.handle(&line);
        assert_eq!(resp["ok"].as_bool(), Some(true), "{resp}");
    }
    let saved = throwaway.handle("{\"id\":800,\"op\":\"save_session\",\"session\":\"donor\"}");
    assert_eq!(saved["ok"].as_bool(), Some(true), "{saved}");
    let snapshot = saved["result"]["snapshot"].to_string();
    throwaway.shutdown();

    let lines = vec![
        "{\"id\":1,\"op\":\"create_session\",\"session\":\"clone\"}".to_string(),
        format!("{{\"id\":2,\"op\":\"load_session\",\"session\":\"clone\",\"snapshot\":{snapshot}}}"),
        "{\"id\":3,\"op\":\"autocomplete\",\"session\":\"clone\",\
         \"values\":[\"0 Oak St l\",\"555-0100-l\"],\"k\":2}"
            .to_string(),
    ];
    let root = temp_root("load");
    let config = || RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        sync_every: 1,
        ..RouterConfig::default()
    };
    let durable = Router::new(config());
    for resp in drive(&durable, &lines) {
        let j = Json::parse(&resp).expect("json");
        assert_eq!(j["ok"].as_bool(), Some(true), "{resp}");
    }
    drop(durable); // crash

    let recovered = Router::recover(config()).expect("recovery");
    let control = Router::new(RouterConfig {
        shards: 2,
        server: small_server(),
        ..RouterConfig::default()
    });
    drive(&control, &lines);
    assert_eq!(drive(&recovered, &probes("clone")), drive(&control, &probes("clone")));
    recovered.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// `close_session` is a durable close: the on-disk state is removed
/// and a recovery does not resurrect the tenant.
#[test]
fn closed_sessions_stay_closed_after_recovery() {
    let root = temp_root("close");
    let config = || RouterConfig {
        shards: 2,
        server: small_server(),
        store_root: Some(root.clone()),
        ..RouterConfig::default()
    };
    let durable = Router::new(config());
    drive(&durable, &script("gone", "g", 3));
    drive(&durable, &script("kept", "k", 3));
    let closed = durable.handle_line("{\"id\":1,\"op\":\"close_session\",\"session\":\"gone\"}");
    assert!(closed.contains("\"ok\":true"), "{closed}");
    drop(durable);

    let recovered = Router::recover(config()).expect("recovery");
    let listing = recovered.handle_line("{\"id\":2,\"op\":\"list_sessions\"}");
    let j = Json::parse(&listing).expect("json");
    let sessions = j["result"]["sessions"].to_string();
    assert!(sessions.contains("kept"), "{listing}");
    assert!(!sessions.contains("gone"), "closed tenant resurrected: {listing}");
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
