//! Serve-level storage-fault tests: the crash-storm sweep property
//! (no acked effect is ever silently lost, across every fault kind at
//! strided injection points) and the generational snapshot fallback
//! (a rotted newest generation costs a longer replay, not data).
//!
//! The full stride-1 sweep runs in release as the `copycat-serve
//! crash-storm` verify smoke; these tests cover every fault kind at a
//! spread of injection points and across seeds.

use copycat_serve::router::{Router, RouterConfig};
use copycat_serve::server::ServerConfig;
use copycat_serve::smoke::run_crash_storm;
use copycat_store::{Fs, SimFs};
use copycat_util::check::{check, Gen};
use copycat_util::prop_ensure_eq;
use std::path::PathBuf;
use std::sync::Arc;

#[test]
fn crash_storm_sweep_has_no_silent_losses() {
    let report = run_crash_storm(0xC1D9, 7).expect("crash storm property");
    assert!(report.runs > 0, "{report:?}");
    assert!(report.faults_fired > 0, "{report:?}");
    assert_eq!(report.silent_losses, 0, "{report:?}");
    // Loss accounting is total: every acked effect is recovered or
    // attributed to an explicit loss class.
    assert_eq!(
        report.acked,
        report.recovered + report.quarantined + report.tail_lost,
        "{report:?}"
    );
}

#[test]
fn prop_crash_storm_across_seeds() {
    check("crash_storm_seeds", 3, &[], |g: &mut Gen| {
        let seed = g.u64_in(0..u64::MAX);
        let stride = g.u64_in(9..17);
        let report = run_crash_storm(seed, stride)?;
        prop_ensure_eq!(report.silent_losses, 0);
        prop_ensure_eq!(
            report.acked,
            report.recovered + report.quarantined + report.tail_lost
        );
        Ok(())
    });
}

fn fallback_config(fs: &Fs, root: Option<PathBuf>) -> RouterConfig {
    RouterConfig {
        shards: 1,
        server: ServerConfig { workers: 1, queue_depth: 32, shards: 2 },
        snapshot_every: 4,
        sync_every: 1,
        store_root: root,
        fs: fs.clone(),
        ..RouterConfig::default()
    }
}

/// Nine journaled records for one session: with `snapshot_every: 4`
/// this crosses two snapshot generations (seq 4 and seq 8), so the
/// newest generation has a fallback below it.
fn fallback_workload() -> Vec<String> {
    let s = "\"session\":\"gen\"";
    let mut lines = vec![
        format!("{{\"id\":1,\"op\":\"create_session\",{s}}}"),
        format!(
            "{{\"id\":2,\"op\":\"open_doc\",{s},\"name\":\"Sheet\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\
             \"rows\":[[\"V-0\",\"0 Oak St\",\"CityA\"],[\"V-1\",\"1 Oak St\",\"CityB\"],\
             [\"V-2\",\"2 Oak St\",\"CityA\"]]}}"
        ),
        format!(
            "{{\"id\":3,\"op\":\"paste\",{s},\"doc\":0,\"values\":[\"V-0\",\"0 Oak St\",\"CityA\"]}}"
        ),
        format!("{{\"id\":4,\"op\":\"accept_rows\",{s}}}"),
        format!("{{\"id\":5,\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\"}}"),
        format!("{{\"id\":6,\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}"),
    ];
    for i in 0..3 {
        lines.push(format!(
            "{{\"id\":{},\"op\":\"autocomplete\",{s},\"values\":[\"{i} Oak St\"],\"k\":2}}",
            7 + i,
        ));
    }
    lines
}

fn fallback_probes() -> Vec<String> {
    let s = "\"session\":\"gen\"";
    vec![
        format!("{{\"id\":90,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":91,\"op\":\"export\",{s},\"format\":\"csv\"}}"),
        format!("{{\"id\":92,\"op\":\"session_stats\",{s}}}"),
        format!("{{\"id\":93,\"op\":\"save_session\",{s}}}"),
    ]
}

/// Satellite property: flip a byte in the newest snapshot generation,
/// recover, and the router must fall back one generation — replaying a
/// longer WAL tail — and answer every probe byte-identically to a
/// never-crashed control, with the fallback explicitly reported.
#[test]
fn corrupt_newest_snapshot_generation_falls_back_byte_identically() {
    let sim = Arc::new(SimFs::new(0xFA11));
    let fs = Fs::sim(Arc::clone(&sim));
    let root = PathBuf::from("/fallback");
    let router = Router::new(fallback_config(&fs, Some(root.clone())));
    for line in fallback_workload() {
        let resp = router.handle_line(&line);
        assert!(resp.contains("\"ok\":true"), "{line} -> {resp}");
    }
    router.shutdown(); // graceful: everything on disk is durable

    let dirs = fs.list_dirs(&root).unwrap();
    assert_eq!(dirs.len(), 1, "{dirs:?}");
    let generations: Vec<PathBuf> = fs
        .list_files(&dirs[0])
        .unwrap()
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(generations.len(), 2, "two generations retained: {generations:?}");
    // Lexicographic order == generation order (zero-padded names).
    assert!(sim.corrupt_file(generations.last().unwrap()));

    let recovered = Router::recover(fallback_config(&fs, Some(root))).unwrap();
    let reports = recovered.recovery_reports();
    let (_, rep) = reports.iter().find(|(n, _)| n == "gen").expect("session recovered");
    assert_eq!(rep.generations_skipped, 1, "{rep:?}");
    assert_eq!(rep.snapshot_generation, 1, "{rep:?}");
    assert!(rep.quarantined.is_empty(), "fallback loses nothing: {rep:?}");
    assert_eq!(rep.last_seq, 9, "{rep:?}");
    // The healthy path would replay only seq 9; the fallback replays
    // everything above generation 1's floor.
    assert_eq!(rep.records_replayed, 5, "{rep:?}");
    // The corrupt generation was quarantined off the retention ladder.
    let remaining = fs.list_files(&dirs[0]).unwrap();
    assert!(!remaining.contains(generations.last().unwrap()), "{remaining:?}");

    let control = Router::new(fallback_config(&Fs::real(), None));
    for line in fallback_workload() {
        control.handle_line(&line);
    }
    for probe in fallback_probes() {
        let got = recovered.handle_line(&probe);
        let want = control.handle_line(&probe);
        assert_eq!(got, want, "probe diverged after generational fallback: {probe}");
    }
    recovered.shutdown();
    control.shutdown();
}
