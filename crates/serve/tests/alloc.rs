//! Counting-allocator pin for the zero-copy hot path: a warm request
//! parse — the per-request work `Server::handle_line` does before
//! queueing — performs **zero** heap allocations, string payloads
//! included. This file holds exactly one test because the global
//! allocator counts every thread in the process.

use copycat_serve::protocol::Request;
use copycat_util::bench::CountingAlloc;
use copycat_util::zjson::ZDoc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn warm_request_parse_is_allocation_free() {
    let line = r#"{"id":42,"op":"autocomplete","session":"tenant-7","values":["140 Main St","555-0192"],"k":3,"deadline_ms":250}"#;
    let mut doc = ZDoc::new();
    // First parses size the node vec; capacity persists across parses.
    for _ in 0..4 {
        let req = Request::parse(&mut doc, line).unwrap();
        assert_eq!(req.id, "42");
    }
    let before = ALLOC.snapshot();
    for _ in 0..100 {
        let req = Request::parse(&mut doc, line).unwrap();
        // Read every field the serve hot path reads.
        assert_eq!(req.session, Some("tenant-7"));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.body.field("k").as_f64(), Some(3.0));
        assert_eq!(req.body.get("id").map(|v| v.raw_span()), Some((6, 8)));
        let mut values = 0;
        for v in req.body.field("values").value().into_iter().flat_map(|v| v.items()) {
            assert!(v.as_str().is_some_and(|s| !s.is_empty()));
            values += 1;
        }
        assert_eq!(values, 2);
    }
    let after = ALLOC.snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "warm zero-copy request parsing must not allocate"
    );
}
