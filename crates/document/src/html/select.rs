//! Tag paths: structural addresses that support generalization.
//!
//! A *tag path* like `table[0]/tr[3]/td[1]` addresses one node. Replacing a
//! sibling index with a wildcard (`tr[*]`) generalizes it to a *set* of
//! nodes — this is exactly the hypothesis representation CopyCat's
//! structure learner generalizes over when it turns two pasted example rows
//! into "all the rows of this table" (§3.1).

use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Sibling-index constraint of a [`TagStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepIndex {
    /// Match only the n-th same-tag sibling (0-based).
    Nth(usize),
    /// Match every same-tag sibling.
    Any,
}

/// One component of a [`TagPath`]: a tag name plus a sibling-index
/// constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagStep {
    /// Lower-cased tag name; text nodes use `#text`, comments `#comment`.
    pub tag: String,
    /// Which same-tag siblings this step matches.
    pub index: StepIndex,
}

impl TagStep {
    /// A step matching exactly the `n`-th same-tag sibling.
    pub fn nth(tag: impl Into<String>, n: usize) -> Self {
        Self { tag: tag.into(), index: StepIndex::Nth(n) }
    }

    /// A step matching every same-tag sibling.
    pub fn any(tag: impl Into<String>) -> Self {
        Self { tag: tag.into(), index: StepIndex::Any }
    }

    /// Whether this step admits sibling index `i`.
    pub fn matches_index(&self, i: usize) -> bool {
        match self.index {
            StepIndex::Nth(n) => n == i,
            StepIndex::Any => true,
        }
    }

    /// True when `self` matches every node `other` matches (same tag and
    /// equal-or-looser index constraint).
    pub fn subsumes(&self, other: &TagStep) -> bool {
        self.tag == other.tag
            && match (self.index, other.index) {
                (StepIndex::Any, _) => true,
                (StepIndex::Nth(a), StepIndex::Nth(b)) => a == b,
                (StepIndex::Nth(_), StepIndex::Any) => false,
            }
    }
}

/// A root-to-node structural address, possibly wildcarded.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TagPath {
    steps: Vec<TagStep>,
}

impl ToJson for TagPath {
    /// A path serializes as its `Display` syntax (`table[0]/tr[*]`),
    /// which [`TagPath::parse`] round-trips.
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for TagPath {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let s = j
            .as_str()
            .ok_or_else(|| JsonError::expected("tag-path string", j))?;
        TagPath::parse(s).ok_or_else(|| JsonError::new(format!("malformed tag path {s:?}")))
    }
}

impl TagPath {
    /// Build a path from its steps (root-first).
    pub fn new(steps: Vec<TagStep>) -> Self {
        Self { steps }
    }

    /// The steps, root-first.
    pub fn steps(&self) -> &[TagStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty path (addresses the root).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of wildcarded steps.
    pub fn wildcard_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.index == StepIndex::Any)
            .count()
    }

    /// A copy with step `i` wildcarded.
    pub fn wildcard_step(&self, i: usize) -> TagPath {
        let mut steps = self.steps.clone();
        if let Some(s) = steps.get_mut(i) {
            s.index = StepIndex::Any;
        }
        TagPath::new(steps)
    }

    /// The *least general generalization* of two concrete paths: same tags
    /// required at every step; indices that differ become wildcards. Returns
    /// `None` when lengths or tags differ (no common template).
    pub fn lgg(&self, other: &TagPath) -> Option<TagPath> {
        if self.len() != other.len() {
            return None;
        }
        let mut steps = Vec::with_capacity(self.len());
        for (a, b) in self.steps.iter().zip(other.steps.iter()) {
            if a.tag != b.tag {
                return None;
            }
            let index = match (a.index, b.index) {
                (StepIndex::Nth(x), StepIndex::Nth(y)) if x == y => StepIndex::Nth(x),
                _ => StepIndex::Any,
            };
            steps.push(TagStep { tag: a.tag.clone(), index });
        }
        Some(TagPath::new(steps))
    }

    /// True when `self` matches every node `other` matches.
    pub fn subsumes(&self, other: &TagPath) -> bool {
        self.len() == other.len()
            && self
                .steps
                .iter()
                .zip(other.steps.iter())
                .all(|(a, b)| a.subsumes(b))
    }

    /// Whether a concrete path (no wildcards) is matched by this pattern.
    pub fn matches(&self, concrete: &TagPath) -> bool {
        self.subsumes(concrete)
    }

    /// Parse the `Display` syntax back, e.g. `table[0]/tr[*]/td[1]`.
    /// Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<TagPath> {
        if s.is_empty() {
            return Some(TagPath::default());
        }
        let mut steps = Vec::new();
        for part in s.split('/') {
            let open = part.find('[')?;
            if !part.ends_with(']') {
                return None;
            }
            let tag = &part[..open];
            let idx = &part[open + 1..part.len() - 1];
            let index = if idx == "*" {
                StepIndex::Any
            } else {
                StepIndex::Nth(idx.parse().ok()?)
            };
            steps.push(TagStep { tag: tag.to_string(), index });
        }
        Some(TagPath::new(steps))
    }
}

impl fmt::Display for TagPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            match s.index {
                StepIndex::Nth(n) => write!(f, "{}[{}]", s.tag, n)?,
                StepIndex::Any => write!(f, "{}[*]", s.tag)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> TagPath {
        TagPath::parse(s).expect("valid path literal")
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["table[0]/tr[*]/td[1]", "ul[2]/li[0]", ""] {
            assert_eq!(p(s).to_string(), s);
        }
        assert!(TagPath::parse("table/tr").is_none());
        assert!(TagPath::parse("table[x]").is_none());
    }

    #[test]
    fn lgg_generalizes_differing_indices() {
        let a = p("table[0]/tr[1]/td[2]");
        let b = p("table[0]/tr[5]/td[2]");
        let g = a.lgg(&b).expect("same shape");
        assert_eq!(g.to_string(), "table[0]/tr[*]/td[2]");
        assert!(g.subsumes(&a) && g.subsumes(&b));
    }

    #[test]
    fn lgg_fails_on_shape_mismatch() {
        assert!(p("ul[0]/li[1]").lgg(&p("ol[0]/li[1]")).is_none());
        assert!(p("ul[0]/li[1]").lgg(&p("ul[0]")).is_none());
    }

    #[test]
    fn json_roundtrip() {
        for s in ["table[0]/tr[*]/td[1]", ""] {
            let path = p(s);
            let back =
                TagPath::from_json(&Json::parse(&path.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back, path);
        }
        assert!(TagPath::from_json(&Json::str("not[a]path[")).is_err());
    }

    #[test]
    fn subsumption_is_reflexive_and_ordered() {
        let conc = p("div[0]/span[3]");
        let wild = p("div[0]/span[*]");
        assert!(conc.subsumes(&conc));
        assert!(wild.subsumes(&conc));
        assert!(!conc.subsumes(&wild));
    }
}
