//! Lenient HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s. Malformed markup never fails: an
//! unterminated tag is emitted as text, unknown entities are passed through
//! verbatim. This mirrors how browsers (and therefore real copied-from
//! pages) behave, which matters because the synthetic corpora deliberately
//! include sloppy markup.

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An opening tag, e.g. `<td class="name">`. `self_closing` is set for
    /// `<br/>`-style syntax.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attribute name/value pairs in document order (values entity-decoded).
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag, e.g. `</td>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// An HTML comment body (without the `<!--`/`-->` delimiters).
    Comment(String),
}

/// Decode the handful of entities that occur in the corpora plus numeric
/// character references. Unknown entities are passed through unchanged.
pub(crate) fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = input[i..].find(';').map(|p| i + p) {
                let entity = &input[i + 1..semi];
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    _ => {
                        if let Some(num) = entity.strip_prefix("#x").or(entity.strip_prefix("#X")) {
                            u32::from_str_radix(num, 16).ok().and_then(char::from_u32)
                        } else if let Some(num) = entity.strip_prefix('#') {
                            num.parse::<u32>().ok().and_then(char::from_u32)
                        } else {
                            None
                        }
                    }
                };
                if let Some(c) = decoded {
                    // Only treat short, plausible entities as entities.
                    if entity.len() <= 8 {
                        out.push(c);
                        i = semi + 1;
                        continue;
                    }
                }
            }
        }
        let c = input[i..].chars().next().expect("index is on a char boundary");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Tokenize an HTML string. Never fails; see module docs for leniency rules.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut text_start = 0;

    let flush_text = |tokens: &mut Vec<Token>, start: usize, end: usize| {
        if start < end {
            let raw = &input[start..end];
            if !raw.trim().is_empty() {
                tokens.push(Token::Text(decode_entities(raw)));
            } else if !raw.is_empty() {
                // Preserve pure-whitespace runs as a single space so that
                // adjacent inline text does not fuse when re-rendered.
                tokens.push(Token::Text(" ".to_string()));
            }
        }
    };

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Comment?
            if input[i..].starts_with("<!--") {
                flush_text(&mut tokens, text_start, i);
                if let Some(end) = input[i + 4..].find("-->") {
                    tokens.push(Token::Comment(input[i + 4..i + 4 + end].to_string()));
                    i += 4 + end + 3;
                } else {
                    // Unterminated comment swallows the rest of the input.
                    tokens.push(Token::Comment(input[i + 4..].to_string()));
                    i = bytes.len();
                }
                text_start = i;
                continue;
            }
            // Doctype or processing instruction: skip to `>`.
            if input[i..].starts_with("<!") || input[i..].starts_with("<?") {
                flush_text(&mut tokens, text_start, i);
                match input[i..].find('>') {
                    Some(end) => i += end + 1,
                    None => i = bytes.len(),
                }
                text_start = i;
                continue;
            }
            // A real tag must be followed by a letter or '/'.
            let next = bytes.get(i + 1).copied();
            let is_tag = matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'/');
            if !is_tag {
                i += 1;
                continue;
            }
            match input[i..].find('>') {
                Some(rel_end) => {
                    flush_text(&mut tokens, text_start, i);
                    let inner = &input[i + 1..i + rel_end];
                    if let Some(tok) = parse_tag(inner) {
                        // <script>/<style> content is opaque: skip to the closing tag.
                        if let Token::StartTag { name, self_closing: false, .. } = &tok {
                            if name == "script" || name == "style" {
                                let close = format!("</{name}");
                                tokens.push(tok.clone());
                                let body_start = i + rel_end + 1;
                                let lower = input[body_start..].to_ascii_lowercase();
                                if let Some(pos) = lower.find(&close) {
                                    let close_end = input[body_start + pos..]
                                        .find('>')
                                        .map(|p| body_start + pos + p + 1)
                                        .unwrap_or(bytes.len());
                                    tokens.push(Token::EndTag { name: name.clone() });
                                    i = close_end;
                                } else {
                                    i = bytes.len();
                                }
                                text_start = i;
                                continue;
                            }
                        }
                        tokens.push(tok);
                    }
                    i += rel_end + 1;
                    text_start = i;
                }
                None => {
                    // Unterminated tag: treat the rest as text.
                    i = bytes.len();
                }
            }
        } else {
            i += 1;
        }
    }
    flush_text(&mut tokens, text_start, i);
    tokens
}

/// Parse the interior of a tag (between `<` and `>`). Returns `None` for
/// empty or garbage tags.
fn parse_tag(inner: &str) -> Option<Token> {
    let inner = inner.trim();
    if inner.is_empty() {
        return None;
    }
    if let Some(name) = inner.strip_prefix('/') {
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return None;
        }
        return Some(Token::EndTag { name });
    }
    let (inner, self_closing) = match inner.strip_suffix('/') {
        Some(rest) => (rest.trim_end(), true),
        None => (inner, false),
    };
    let name_end = inner
        .find(|c: char| c.is_whitespace())
        .unwrap_or(inner.len());
    let name = inner[..name_end].to_ascii_lowercase();
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        return None;
    }
    let attrs = parse_attrs(&inner[name_end..]);
    Some(Token::StartTag { name, attrs, self_closing })
}

/// Parse a whitespace-separated attribute list: `a="x" b='y' c=z d`.
fn parse_attrs(mut rest: &str) -> Vec<(String, String)> {
    let mut attrs = Vec::new();
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let name_end = rest
            .find(|c: char| c.is_whitespace() || c == '=')
            .unwrap_or(rest.len());
        let name = rest[..name_end].to_ascii_lowercase();
        rest = rest[name_end..].trim_start();
        if name.is_empty() {
            // Stray '=' or similar; skip one char to guarantee progress.
            rest = &rest[rest.chars().next().map_or(0, |c| c.len_utf8())..];
            continue;
        }
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (value, remaining) = if let Some(q) = after_eq.strip_prefix('"') {
                match q.find('"') {
                    Some(end) => (&q[..end], &q[end + 1..]),
                    None => (q, ""),
                }
            } else if let Some(q) = after_eq.strip_prefix('\'') {
                match q.find('\'') {
                    Some(end) => (&q[..end], &q[end + 1..]),
                    None => (q, ""),
                }
            } else {
                let end = after_eq
                    .find(|c: char| c.is_whitespace())
                    .unwrap_or(after_eq.len());
                (&after_eq[..end], &after_eq[end..])
            };
            attrs.push((name, decode_entities(value)));
            rest = remaining;
        } else {
            // Boolean attribute.
            attrs.push((name, String::new()));
        }
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags() {
        let toks = tokenize("<p>hi</p>");
        assert_eq!(
            toks,
            vec![
                start("p", &[]),
                Token::Text("hi".into()),
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let toks = tokenize(r#"<a href="x.html" class='row odd' id=r1 hidden>"#);
        assert_eq!(
            toks,
            vec![start(
                "a",
                &[("href", "x.html"), ("class", "row odd"), ("id", "r1"), ("hidden", "")]
            )]
        );
    }

    #[test]
    fn self_closing_and_case() {
        let toks = tokenize("<BR/><IMG SRC=pic.png />");
        assert!(matches!(&toks[0], Token::StartTag { name, self_closing: true, .. } if name == "br"));
        assert!(matches!(&toks[1], Token::StartTag { name, self_closing: true, .. } if name == "img"));
    }

    #[test]
    fn entities() {
        assert_eq!(decode_entities("a &amp; b &#65; &#x42;"), "a & b A B");
        assert_eq!(decode_entities("&unknown; & bare"), "&unknown; & bare");
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(toks[0], Token::Comment(" note ".into()));
        assert!(matches!(&toks[1], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn script_content_is_opaque() {
        let toks = tokenize("<script>if (a < b) { x(); }</script><p>y</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "script"));
        assert_eq!(toks[1], Token::EndTag { name: "script".into() });
        assert!(matches!(&toks[2], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn unterminated_tag_becomes_text_not_panicking() {
        let toks = tokenize("before <a href=");
        assert_eq!(toks, vec![Token::Text("before <a href=".into())]);
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("3 < 4 and 5 > 2");
        assert_eq!(toks, vec![Token::Text("3 < 4 and 5 > 2".into())]);
    }
}
