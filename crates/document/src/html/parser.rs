//! Token stream → DOM tree, with browser-like error recovery.

use super::dom::{HtmlDocument, Node, NodeId, NodeKind};
use super::tokenizer::{tokenize, Token};

/// Tags that never have children (`<br>`, `<img>`, ...).
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "br" | "hr" | "img" | "input" | "meta" | "link" | "area" | "base" | "col" | "embed"
            | "source" | "track" | "wbr"
    )
}

/// Returns true when encountering `<incoming>` should implicitly close an
/// open `<open>` element (e.g. `<li>` closes a previous `<li>`).
fn implicitly_closes(open: &str, incoming: &str) -> bool {
    match incoming {
        "li" => open == "li",
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        "p" => open == "p",
        "option" => open == "option",
        "dt" | "dd" => matches!(open, "dt" | "dd"),
        "thead" | "tbody" | "tfoot" => matches!(open, "thead" | "tbody" | "tfoot" | "tr" | "td" | "th"),
        _ => false,
    }
}

/// Parse an HTML string into a document. Never fails: unmatched end tags
/// are dropped, unclosed elements are closed at end of input, and list/table
/// items auto-close as browsers do.
pub fn parse(input: &str) -> HtmlDocument {
    let tokens = tokenize(input);
    let mut nodes = vec![Node {
        kind: NodeKind::Element { tag: "#root".to_string(), attrs: Vec::new() },
        parent: None,
        children: Vec::new(),
    }];
    let root = NodeId(0);
    // Stack of open elements; bottom is the synthetic root.
    let mut stack: Vec<NodeId> = vec![root];

    let push_node = |nodes: &mut Vec<Node>, stack: &[NodeId], kind: NodeKind| -> NodeId {
        let parent = *stack.last().expect("stack always has the root");
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node { kind, parent: Some(parent), children: Vec::new() });
        nodes[parent.idx()].children.push(id);
        id
    };

    for tok in tokens {
        match tok {
            Token::Text(t) => {
                push_node(&mut nodes, &stack, NodeKind::Text(t));
            }
            Token::Comment(c) => {
                push_node(&mut nodes, &stack, NodeKind::Comment(c));
            }
            Token::StartTag { name, attrs, self_closing } => {
                // Auto-close elements the incoming tag implicitly terminates.
                while stack.len() > 1 {
                    let top = *stack.last().expect("non-empty");
                    let top_tag = match &nodes[top.idx()].kind {
                        NodeKind::Element { tag, .. } => tag.clone(),
                        _ => unreachable!("only elements are on the stack"),
                    };
                    if implicitly_closes(&top_tag, &name) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let id = push_node(
                    &mut nodes,
                    &stack,
                    NodeKind::Element { tag: name.clone(), attrs },
                );
                if !self_closing && !is_void(&name) {
                    stack.push(id);
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element; if none, drop the end tag.
                if let Some(pos) = stack.iter().rposition(|&id| {
                    matches!(&nodes[id.idx()].kind, NodeKind::Element { tag, .. } if *tag == name)
                }) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
            }
        }
    }

    HtmlDocument::from_arena(nodes, root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_close_list_items() {
        // Sloppy markup without </li>.
        let doc = parse("<ul><li>one<li>two<li>three</ul>");
        let lis = doc.elements_by_tag("li");
        assert_eq!(lis.len(), 3);
        assert_eq!(doc.text_content(lis[1]), "two");
        // Each li is a direct child of ul, not nested.
        let ul = doc.elements_by_tag("ul")[0];
        for li in lis {
            assert_eq!(doc.node(li).parent, Some(ul));
        }
    }

    #[test]
    fn auto_close_table_cells() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        assert_eq!(doc.elements_by_tag("tr").len(), 2);
        assert_eq!(doc.elements_by_tag("td").len(), 3);
    }

    #[test]
    fn unmatched_end_tag_is_ignored() {
        let doc = parse("<div>x</span></div><p>y</p>");
        assert_eq!(doc.elements_by_tag("div").len(), 1);
        assert_eq!(doc.elements_by_tag("p").len(), 1);
        assert_eq!(doc.text_content(doc.root()), "x y");
    }

    #[test]
    fn unclosed_elements_close_at_eof() {
        let doc = parse("<div><b>bold");
        assert_eq!(doc.text_content(doc.root()), "bold");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<p>a<br>b</p>");
        let p = doc.elements_by_tag("p")[0];
        // br is a child of p; "b" is also a child of p (not of br).
        assert_eq!(doc.node(p).children.len(), 3);
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let html: String = "<div>".repeat(5000);
        let doc = parse(&html);
        assert_eq!(doc.elements_by_tag("div").len(), 5000);
    }
}
