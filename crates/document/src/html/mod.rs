//! A small, lenient HTML implementation.
//!
//! CopyCat's structure learner (§3.1 of the paper) works on the *structure*
//! of Web pages: tag nesting, repeated templates, attribute values and URL
//! patterns. This module provides everything those experts need — a
//! tokenizer, an arena DOM, a forgiving parser, and *tag paths* (structural
//! addresses that can be generalized by wildcarding sibling indices, the
//! core representation behind row auto-completion).

mod dom;
mod parser;
mod select;
mod tokenizer;

pub use dom::{HtmlDocument, Node, NodeId, NodeKind};
pub use parser::parse;
pub use select::{StepIndex, TagPath, TagStep};
pub use tokenizer::{tokenize, Token};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_text() {
        let doc = parse("<html><body><p>Hello &amp; welcome</p></body></html>");
        assert_eq!(doc.text_content(doc.root()).trim(), "Hello & welcome");
    }
}
