//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` and are addressed by [`NodeId`]; this keeps
//! the structure-learner hot loops (path enumeration over thousands of
//! nodes) allocation-free and cache-friendly.

use super::select::{TagPath, TagStep};

/// Index of a node within its document's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with a lower-cased tag name and its attributes.
    Element {
        /// Lower-cased tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// Character data.
    Text(String),
    /// A comment (kept because template-induction experts use comments as
    /// document delimiters; see §2.1 "document delimiters").
    Comment(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// What kind of node this is.
    pub kind: NodeKind,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document. Construct with [`super::parse`].
#[derive(Debug, Clone)]
pub struct HtmlDocument {
    nodes: Vec<Node>,
    root: NodeId,
}

impl HtmlDocument {
    pub(crate) fn from_arena(nodes: Vec<Node>, root: NodeId) -> Self {
        Self { nodes, root }
    }

    /// The synthetic root element (tag `#root`) containing all top-level nodes.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Number of nodes in the arena (including the synthetic root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The tag name of an element node, or `None` for text/comments.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Attribute lookup on an element node.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Iterate all node ids in document (pre-)order, root included.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate descendant ids of `id` in document order (excluding `id`).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.node(n).children.iter().rev().copied());
        }
        out
    }

    /// All element nodes with the given tag, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.iter()
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// Concatenated, whitespace-normalized text content of a subtree.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        normalize_ws(&out)
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Comment(_) => {}
            NodeKind::Element { .. } => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                    out.push(' ');
                }
            }
        }
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.node(id).parent {
            d += 1;
            id = p;
        }
        d
    }

    /// The 0-based index of `id` among its *same-tag* element siblings.
    /// Text and comment nodes return index among all siblings of their kind.
    pub fn sibling_index(&self, id: NodeId) -> usize {
        let Some(parent) = self.node(id).parent else {
            return 0;
        };
        let my_tag = self.tag(id);
        let mut idx = 0;
        for &sib in &self.node(parent).children {
            if sib == id {
                return idx;
            }
            let same = match (my_tag, self.tag(sib)) {
                (Some(a), Some(b)) => a == b,
                (None, None) => {
                    matches!(self.node(id).kind, NodeKind::Text(_))
                        == matches!(self.node(sib).kind, NodeKind::Text(_))
                }
                _ => false,
            };
            if same {
                idx += 1;
            }
        }
        idx
    }

    /// The structural address of a node: tag names + same-tag sibling
    /// indices from the root down. Text nodes use the pseudo-tag `#text`.
    pub fn tag_path(&self, id: NodeId) -> TagPath {
        let mut steps = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == self.root {
                break;
            }
            let tag = match &self.node(n).kind {
                NodeKind::Element { tag, .. } => tag.clone(),
                NodeKind::Text(_) => "#text".to_string(),
                NodeKind::Comment(_) => "#comment".to_string(),
            };
            steps.push(TagStep::nth(tag, self.sibling_index(n)));
            cur = self.node(n).parent;
        }
        steps.reverse();
        TagPath::new(steps)
    }

    /// All nodes whose [`Self::tag_path`] matches the (possibly wildcarded)
    /// pattern, in document order.
    pub fn find_by_path(&self, pattern: &TagPath) -> Vec<NodeId> {
        let mut frontier = vec![self.root];
        for step in pattern.steps() {
            let mut next = Vec::new();
            for node in frontier {
                let mut same_tag_seen = 0usize;
                for &child in &self.node(node).children {
                    let child_tag = match &self.node(child).kind {
                        NodeKind::Element { tag, .. } => tag.as_str(),
                        NodeKind::Text(_) => "#text",
                        NodeKind::Comment(_) => "#comment",
                    };
                    if child_tag == step.tag {
                        if step.matches_index(same_tag_seen) {
                            next.push(child);
                        }
                        same_tag_seen += 1;
                    }
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Serialize the subtree back to HTML (attributes re-quoted, entities
    /// re-escaped). Mainly for debugging and golden tests.
    pub fn to_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.render(id, &mut out);
        out
    }

    fn render(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(&escape(t)),
            NodeKind::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            NodeKind::Element { tag, attrs } => {
                let synthetic = tag == "#root";
                if !synthetic {
                    out.push('<');
                    out.push_str(tag);
                    for (k, v) in attrs {
                        out.push(' ');
                        out.push_str(k);
                        out.push_str("=\"");
                        out.push_str(&escape(v));
                        out.push('"');
                    }
                    out.push('>');
                }
                for &c in &self.node(id).children {
                    self.render(c, out);
                }
                if !synthetic {
                    out.push_str("</");
                    out.push_str(tag);
                    out.push('>');
                }
            }
        }
    }
}

fn escape(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Collapse runs of whitespace to single spaces and trim.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::html::parse;

    #[test]
    fn paths_and_lookup() {
        let doc = parse(
            "<table><tr><td>a</td><td>b</td></tr><tr><td>c</td><td>d</td></tr></table>",
        );
        let tds = doc.elements_by_tag("td");
        assert_eq!(tds.len(), 4);
        let p = doc.tag_path(tds[3]);
        assert_eq!(p.to_string(), "table[0]/tr[1]/td[1]");
        // Round-trip: the path finds exactly that node.
        assert_eq!(doc.find_by_path(&p), vec![tds[3]]);
        // Wildcarding the row index finds both second-column cells.
        let wild = p.wildcard_step(1);
        let found = doc.find_by_path(&wild);
        assert_eq!(found, vec![tds[1], tds[3]]);
    }

    #[test]
    fn text_content_normalizes() {
        let doc = parse("<div>  Hello\n   <b>world</b>  </div>");
        assert_eq!(doc.text_content(doc.root()), "Hello world");
    }

    #[test]
    fn sibling_index_counts_same_tag_only() {
        let doc = parse("<ul><li>a</li><p>x</p><li>b</li></ul>");
        let lis = doc.elements_by_tag("li");
        assert_eq!(doc.sibling_index(lis[0]), 0);
        assert_eq!(doc.sibling_index(lis[1]), 1);
    }

    #[test]
    fn render_escapes() {
        let doc = parse("<p>a &amp; b</p>");
        let html = doc.to_html(doc.root());
        assert_eq!(html, "<p>a &amp; b</p>");
    }
}
