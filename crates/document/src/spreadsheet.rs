//! A rectangular spreadsheet model, standing in for the Excel sources the
//! paper's application wrappers monitored.
//!
//! For "a relatively structured source such as an Excel spreadsheet, the
//! generalization process is normally quite simple" (§3.1): two cells copied
//! from a column generalize to the whole column. The structure learner's
//! spreadsheet path is exercised through this type.

use std::fmt;

/// Zero-based cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellAddr {
    /// Row index (0-based; row 0 may be a header).
    pub row: usize,
    /// Column index (0-based).
    pub col: usize,
}

impl CellAddr {
    /// Construct an address.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }

    /// Spreadsheet-style name like `B3` (column letters, 1-based row).
    pub fn name(&self) -> String {
        let mut col = self.col;
        let mut letters = String::new();
        loop {
            letters.insert(0, (b'A' + (col % 26) as u8) as char);
            if col < 26 {
                break;
            }
            col = col / 26 - 1;
        }
        format!("{}{}", letters, self.row + 1)
    }
}

/// An inclusive rectangular range of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SheetRange {
    /// Top-left corner.
    pub start: CellAddr,
    /// Bottom-right corner (inclusive).
    pub end: CellAddr,
}

impl SheetRange {
    /// Construct, normalizing so `start` is the top-left corner.
    pub fn new(a: CellAddr, b: CellAddr) -> Self {
        Self {
            start: CellAddr::new(a.row.min(b.row), a.col.min(b.col)),
            end: CellAddr::new(a.row.max(b.row), a.col.max(b.col)),
        }
    }

    /// A single-cell range.
    pub fn cell(addr: CellAddr) -> Self {
        Self { start: addr, end: addr }
    }

    /// Number of rows covered.
    pub fn row_count(&self) -> usize {
        self.end.row - self.start.row + 1
    }

    /// Number of columns covered.
    pub fn col_count(&self) -> usize {
        self.end.col - self.start.col + 1
    }

    /// Whether the range contains an address.
    pub fn contains(&self, a: CellAddr) -> bool {
        (self.start.row..=self.end.row).contains(&a.row)
            && (self.start.col..=self.end.col).contains(&a.col)
    }

    /// Iterate addresses row-major.
    pub fn iter(&self) -> impl Iterator<Item = CellAddr> + '_ {
        let (r0, r1, c0, c1) = (self.start.row, self.end.row, self.start.col, self.end.col);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| CellAddr::new(r, c)))
    }
}

/// A named sheet of string cells. Ragged input rows are padded with empty
/// strings so the sheet is always rectangular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sheet {
    name: String,
    header: Option<Vec<String>>,
    rows: Vec<Vec<String>>,
    width: usize,
}

impl Sheet {
    /// Build a sheet from data rows, optionally with a header row.
    pub fn new(
        name: impl Into<String>,
        header: Option<Vec<String>>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        let width = rows
            .iter()
            .map(Vec::len)
            .chain(header.iter().map(Vec::len))
            .max()
            .unwrap_or(0);
        let pad = |mut r: Vec<String>| {
            r.resize(width, String::new());
            r
        };
        Self {
            name: name.into(),
            header: header.map(pad),
            rows: rows.into_iter().map(pad).collect(),
            width,
        }
    }

    /// The sheet's name (shown as a tab label in CopyCat's workspace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Header labels, if present.
    pub fn header(&self) -> Option<&[String]> {
        self.header.as_deref()
    }

    /// Number of data rows (header excluded).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.width
    }

    /// Borrow one data row.
    pub fn row(&self, r: usize) -> Option<&[String]> {
        self.rows.get(r).map(Vec::as_slice)
    }

    /// All data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Cell value at a data-row address (`None` out of bounds).
    pub fn cell(&self, a: CellAddr) -> Option<&str> {
        self.rows.get(a.row)?.get(a.col).map(String::as_str)
    }

    /// One column's values, top to bottom.
    pub fn column(&self, c: usize) -> Vec<&str> {
        self.rows
            .iter()
            .filter_map(|r| r.get(c).map(String::as_str))
            .collect()
    }

    /// Find the first cell whose value equals `needle` exactly.
    pub fn find(&self, needle: &str) -> Option<CellAddr> {
        for (r, row) in self.rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if v == needle {
                    return Some(CellAddr::new(r, c));
                }
            }
        }
        None
    }

    /// The cell values of a range, row-major, tab-joined per row and
    /// newline-joined across rows — the text a copy of that range yields.
    pub fn range_text(&self, range: SheetRange) -> String {
        let mut lines = Vec::with_capacity(range.row_count());
        for r in range.start.row..=range.end.row {
            let mut cells = Vec::with_capacity(range.col_count());
            for c in range.start.col..=range.end.col {
                cells.push(self.cell(CellAddr::new(r, c)).unwrap_or(""));
            }
            lines.push(cells.join("\t"));
        }
        lines.join("\n")
    }

    /// Parse CSV with quoting support. `has_header` promotes the first
    /// record to the header row.
    pub fn from_csv(name: impl Into<String>, csv: &str, has_header: bool) -> Self {
        let mut records = parse_csv(csv);
        let header = if has_header && !records.is_empty() {
            Some(records.remove(0))
        } else {
            None
        };
        Sheet::new(name, header, records)
    }

    /// Serialize to CSV (RFC-4180 quoting; header first when present).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        if let Some(h) = &self.header {
            write_row(&mut out, h);
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Sheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sheet '{}' ({} rows x {} cols)",
            self.name,
            self.rows.len(),
            self.width
        )
    }
}

/// Minimal RFC-4180 CSV reader: quoted fields, doubled quotes, CRLF/LF.
fn parse_csv(input: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_with_quoting() {
        let csv = "name,addr\n\"Smith, J\",\"12 \"\"A\"\" St\"\nJones,5 Oak\n";
        let sheet = Sheet::from_csv("contacts", csv, true);
        assert_eq!(sheet.header().unwrap(), &["name", "addr"]);
        assert_eq!(sheet.cell(CellAddr::new(0, 0)), Some("Smith, J"));
        assert_eq!(sheet.cell(CellAddr::new(0, 1)), Some("12 \"A\" St"));
        assert_eq!(Sheet::from_csv("contacts", &sheet.to_csv(), true), sheet);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let s = Sheet::new("s", None, vec![vec!["a".into()], vec!["b".into(), "c".into()]]);
        assert_eq!(s.col_count(), 2);
        assert_eq!(s.cell(CellAddr::new(0, 1)), Some(""));
    }

    #[test]
    fn cell_names() {
        assert_eq!(CellAddr::new(0, 0).name(), "A1");
        assert_eq!(CellAddr::new(2, 1).name(), "B3");
        assert_eq!(CellAddr::new(0, 26).name(), "AA1");
    }

    #[test]
    fn range_text_is_tsv() {
        let s = Sheet::new(
            "s",
            None,
            vec![
                vec!["a".into(), "b".into()],
                vec!["c".into(), "d".into()],
            ],
        );
        let r = SheetRange::new(CellAddr::new(0, 0), CellAddr::new(1, 1));
        assert_eq!(s.range_text(r), "a\tb\nc\td");
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    fn find_and_column() {
        let s = Sheet::from_csv("s", "x,y\n1,2\n3,4\n", true);
        assert_eq!(s.find("3"), Some(CellAddr::new(1, 0)));
        assert_eq!(s.column(1), vec!["2", "4"]);
    }
}
