//! Multi-page Web sites.
//!
//! §3.1: "CopyCat can extract data from a web site where there are multiple
//! pages (e.g., pages accessible via a form)". A [`Website`] is a closed
//! world of [`Page`]s keyed by [`Url`], navigable through links and
//! [`Form`]s — enough for the structure learner to crawl source hierarchies
//! and for the URL-pattern expert to find regularities.

use crate::html::HtmlDocument;
use copycat_util::hash::FxHashMap;
use std::fmt;

/// A site-relative URL, e.g. `/shelters?page=2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url(String);

impl copycat_util::json::ToJson for Url {
    /// A URL serializes as its raw string.
    fn to_json(&self) -> copycat_util::Json {
        copycat_util::Json::Str(self.0.clone())
    }
}

impl copycat_util::json::FromJson for Url {
    fn from_json(j: &copycat_util::Json) -> Result<Self, copycat_util::JsonError> {
        Ok(Url(String::from_json(j)?))
    }
}

impl Url {
    /// Wrap a URL string.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }

    /// The raw string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Path component (before `?`).
    pub fn path(&self) -> &str {
        self.0.split('?').next().unwrap_or(&self.0)
    }

    /// Query parameters in order of appearance.
    pub fn query(&self) -> Vec<(&str, &str)> {
        match self.0.split_once('?') {
            None => Vec::new(),
            Some((_, q)) => q
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
                .collect(),
        }
    }

    /// Build a URL from a path and query parameters (parameters are sorted
    /// by key so form submissions canonicalize).
    pub fn with_query(path: &str, params: &[(&str, &str)]) -> Url {
        if params.is_empty() {
            return Url::new(path);
        }
        let mut sorted: Vec<_> = params.to_vec();
        sorted.sort_by_key(|(k, _)| k.to_string());
        let q: Vec<String> = sorted
            .iter()
            .map(|(k, v)| format!("{}={}", k, encode(v)))
            .collect();
        Url::new(format!("{}?{}", path, q.join("&")))
    }
}

/// Percent-encode the characters that would corrupt a query string.
fn encode(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '&' => out.push_str("%26"),
            '=' => out.push_str("%3D"),
            '?' => out.push_str("%3F"),
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            _ => out.push(c),
        }
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An HTML form on a page: submitting it with bound parameter values leads
/// to another page of the site. This is how the paper models "sources that
/// require inputs" at the document level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Form {
    /// Path the form submits to.
    pub action: String,
    /// Names of the input fields, in form order.
    pub params: Vec<String>,
}

impl Form {
    /// The URL a submission with the given values navigates to. Values are
    /// matched to `params` positionally; missing values submit empty.
    pub fn submit(&self, values: &[&str]) -> Url {
        let pairs: Vec<(&str, &str)> = self
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_str(), values.get(i).copied().unwrap_or("")))
            .collect();
        Url::with_query(&self.action, &pairs)
    }
}

/// One page of a site.
#[derive(Debug, Clone)]
pub struct Page {
    /// The page's URL.
    pub url: Url,
    /// Parsed content.
    pub html: HtmlDocument,
}

impl Page {
    /// Parse `html` into a page at `url`.
    pub fn parse(url: Url, html: &str) -> Self {
        Self { url, html: crate::html::parse(html) }
    }

    /// All link targets (`<a href>`) on the page, in document order.
    pub fn links(&self) -> Vec<Url> {
        self.html
            .elements_by_tag("a")
            .into_iter()
            .filter_map(|id| self.html.attr(id, "href"))
            .map(Url::new)
            .collect()
    }

    /// All forms on the page (action from `<form action>`, params from the
    /// `name` attributes of its `<input>`/`<select>` descendants).
    pub fn forms(&self) -> Vec<Form> {
        self.html
            .elements_by_tag("form")
            .into_iter()
            .map(|form| {
                let action = self
                    .html
                    .attr(form, "action")
                    .unwrap_or(self.url.path())
                    .to_string();
                let params = self
                    .html
                    .descendants(form)
                    .into_iter()
                    .filter(|&n| matches!(self.html.tag(n), Some("input") | Some("select")))
                    .filter_map(|n| self.html.attr(n, "name"))
                    .map(str::to_string)
                    .collect();
                Form { action, params }
            })
            .collect()
    }
}

/// A closed-world Web site: the unit a CopyCat "application wrapper" gives
/// the structure learner access to.
#[derive(Debug, Clone, Default)]
pub struct Website {
    pages: FxHashMap<Url, Page>,
    entry: Option<Url>,
}

impl Website {
    /// An empty site.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a page; the first page added becomes the entry point.
    pub fn add_page(&mut self, page: Page) {
        if self.entry.is_none() {
            self.entry = Some(page.url.clone());
        }
        self.pages.insert(page.url.clone(), page);
    }

    /// Parse and add a page from raw HTML.
    pub fn add_html(&mut self, url: impl Into<String>, html: &str) {
        self.add_page(Page::parse(Url::new(url), html));
    }

    /// The entry page, when the site is non-empty.
    pub fn entry(&self) -> Option<&Page> {
        self.entry.as_ref().and_then(|u| self.pages.get(u))
    }

    /// Fetch a page by URL.
    pub fn get(&self, url: &Url) -> Option<&Page> {
        self.pages.get(url)
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// All URLs, sorted (deterministic iteration for the learners).
    pub fn urls(&self) -> Vec<&Url> {
        let mut v: Vec<&Url> = self.pages.keys().collect();
        v.sort();
        v
    }

    /// Breadth-first crawl from the entry page following same-site links;
    /// returns pages in visit order. Missing link targets are skipped (the
    /// corpora include dangling links deliberately).
    pub fn crawl(&self) -> Vec<&Page> {
        let Some(start) = self.entry.clone() else {
            return Vec::new();
        };
        let mut seen = copycat_util::hash::FxHashSet::default();
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen.insert(start.clone());
        queue.push_back(start);
        while let Some(url) = queue.pop_front() {
            let Some(page) = self.pages.get(&url) else {
                continue;
            };
            out.push(page);
            for link in page.links() {
                if self.pages.contains_key(&link) && seen.insert(link.clone()) {
                    queue.push_back(link);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_query_parsing() {
        let u = Url::new("/find?city=Coconut%20Creek&state=FL");
        assert_eq!(u.path(), "/find");
        assert_eq!(
            u.query(),
            vec![("city", "Coconut%20Creek"), ("state", "FL")]
        );
    }

    #[test]
    fn form_submit_canonicalizes() {
        let f = Form { action: "/lookup".into(), params: vec!["street".into(), "city".into()] };
        let u = f.submit(&["12 Oak St", "Miami"]);
        // Sorted by key: city before street.
        assert_eq!(u.as_str(), "/lookup?city=Miami&street=12%20Oak%20St");
    }

    #[test]
    fn crawl_follows_links_breadth_first() {
        let mut site = Website::new();
        site.add_html("/", r#"<a href="/a">A</a><a href="/b">B</a>"#);
        site.add_html("/a", r#"<a href="/c">C</a>"#);
        site.add_html("/b", "no links");
        site.add_html("/c", "leaf");
        site.add_html("/orphan", "unreachable");
        let order: Vec<&str> = site.crawl().iter().map(|p| p.url.as_str()).collect();
        assert_eq!(order, vec!["/", "/a", "/b", "/c"]);
    }

    #[test]
    fn dangling_links_are_skipped() {
        let mut site = Website::new();
        site.add_html("/", r#"<a href="/missing">gone</a>"#);
        assert_eq!(site.crawl().len(), 1);
    }

    #[test]
    fn forms_are_discovered() {
        let mut site = Website::new();
        site.add_html(
            "/",
            r#"<form action="/search"><input name="q"><select name="state"></select></form>"#,
        );
        let forms = site.entry().unwrap().forms();
        assert_eq!(forms.len(), 1);
        assert_eq!(forms[0].params, vec!["q", "state"]);
    }
}
