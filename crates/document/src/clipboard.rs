//! Copy & paste events — the observable interactions an SCP system learns
//! from.
//!
//! The paper's application wrappers detect "copy and paste operations —
//! between source applications and the SCP workspace", and feed the learners
//! both the copied data and "context information like the document being
//! displayed in the source application" (§2.2). A [`CopyEvent`] carries
//! precisely that: the copied text, a handle to the source [`Document`], and
//! the structural [`Selection`] within it.

use crate::html::NodeId;
use crate::site::{Url, Website};
use crate::spreadsheet::{Sheet, SheetRange};
use crate::text::TextDocument;

/// Handle to a document registered with a [`Clipboard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocumentId(pub u32);

/// A source document a user can copy from.
#[derive(Debug, Clone)]
pub enum Document {
    /// A (possibly multi-page) Web site displayed in the browser.
    Site(Website),
    /// A spreadsheet.
    Sheet(Sheet),
    /// A plain-text document.
    Text(TextDocument),
}

impl Document {
    /// Human-readable name for workspace tab labels.
    pub fn name(&self) -> String {
        match self {
            Document::Site(site) => site
                .entry()
                .map(|p| p.url.to_string())
                .unwrap_or_else(|| "(empty site)".to_string()),
            Document::Sheet(s) => s.name().to_string(),
            Document::Text(t) => t.name().to_string(),
        }
    }
}

/// What was selected inside the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// DOM nodes on one page of a site.
    HtmlNodes {
        /// Page the nodes live on.
        url: Url,
        /// Selected nodes in document order.
        nodes: Vec<NodeId>,
    },
    /// A rectangular cell range.
    Cells(SheetRange),
    /// A byte span `[start, end)` of a text document.
    Span {
        /// Start byte offset.
        start: usize,
        /// End byte offset (exclusive).
        end: usize,
    },
    /// Free text copied from outside any modeled document (the system can
    /// still learn from the pasted value itself, just not from structure).
    External,
}

/// One observed copy operation.
#[derive(Debug, Clone)]
pub struct CopyEvent {
    /// Source document, when modeled. `None` for [`Selection::External`].
    pub doc: Option<DocumentId>,
    /// The structural selection.
    pub selection: Selection,
    /// The text that landed on the clipboard. For multi-cell selections this
    /// is TSV (tabs between columns, newlines between rows), matching what
    /// real spreadsheet applications put on the clipboard.
    pub text: String,
}

/// One observed paste into a grid-shaped workspace.
///
/// Retains both views of the pasted data: the verbatim clipboard text
/// (via [`PasteEvent::raw`]) and the grid of cell values parsed from it.
/// Downstream learners need both — structure induction works on the
/// parsed cells, while example-driven transform synthesis needs the
/// untouched source text, whitespace and punctuation included.
#[derive(Debug, Clone)]
pub struct PasteEvent {
    /// The copy being pasted.
    pub copy: CopyEvent,
    /// Target row in the workspace grid.
    pub row: usize,
    /// Target column in the workspace grid.
    pub col: usize,
    /// Cell values parsed from the clipboard text: rows split on
    /// newlines, columns on tabs, mirroring how grid applications
    /// interpret a TSV clipboard on paste.
    pub values: Vec<Vec<String>>,
}

impl PasteEvent {
    /// Record a paste of `copy` at grid position (`row`, `col`),
    /// parsing the clipboard text into cells while keeping the raw
    /// text available through [`PasteEvent::raw`].
    pub fn new(copy: CopyEvent, row: usize, col: usize) -> Self {
        let values = copy
            .text
            .split('\n')
            .map(|line| line.split('\t').map(str::to_string).collect())
            .collect();
        PasteEvent { copy, row, col, values }
    }

    /// The verbatim copied source text, exactly as it left the source
    /// application — the input side of a transform-synthesis example.
    pub fn raw(&self) -> &str {
        &self.copy.text
    }
}

/// The monitored clipboard: owns registered documents and produces
/// [`CopyEvent`]s whose text is derived from the selection, exactly as the
/// OS clipboard would.
#[derive(Debug, Default)]
pub struct Clipboard {
    docs: Vec<Document>,
}

impl Clipboard {
    /// An empty clipboard with no registered documents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a document the user has "opened"; returns its handle.
    pub fn register(&mut self, doc: Document) -> DocumentId {
        let id = DocumentId(self.docs.len() as u32);
        self.docs.push(doc);
        id
    }

    /// Borrow a registered document.
    pub fn document(&self, id: DocumentId) -> Option<&Document> {
        self.docs.get(id.0 as usize)
    }

    /// Number of registered documents.
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    /// Copy a selection from a registered document. Returns `None` when the
    /// selection does not resolve (wrong document kind, bad page, bad span).
    pub fn copy(&self, id: DocumentId, selection: Selection) -> Option<CopyEvent> {
        let doc = self.document(id)?;
        let text = match (&selection, doc) {
            (Selection::HtmlNodes { url, nodes }, Document::Site(site)) => {
                let page = site.get(url)?;
                let parts: Vec<String> = nodes
                    .iter()
                    .map(|&n| page.html.text_content(n))
                    .collect();
                parts.join("\t")
            }
            (Selection::Cells(range), Document::Sheet(sheet)) => sheet.range_text(*range),
            (Selection::Span { start, end }, Document::Text(text)) => {
                text.span(*start, *end)?.to_string()
            }
            _ => return None,
        };
        Some(CopyEvent { doc: Some(id), selection, text })
    }

    /// A copy of free text from an unmodeled application.
    pub fn copy_external(text: impl Into<String>) -> CopyEvent {
        CopyEvent { doc: None, selection: Selection::External, text: text.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spreadsheet::CellAddr;

    #[test]
    fn copy_from_sheet_is_tsv() {
        let mut cb = Clipboard::new();
        let sheet = Sheet::new(
            "contacts",
            None,
            vec![
                vec!["Ann".into(), "555-0101".into()],
                vec!["Bob".into(), "555-0102".into()],
            ],
        );
        let id = cb.register(Document::Sheet(sheet));
        let range = SheetRange::new(CellAddr::new(0, 0), CellAddr::new(1, 1));
        let ev = cb.copy(id, Selection::Cells(range)).unwrap();
        assert_eq!(ev.text, "Ann\t555-0101\nBob\t555-0102");
    }

    #[test]
    fn copy_from_html_nodes() {
        let mut cb = Clipboard::new();
        let mut site = Website::new();
        site.add_html("/", "<ul><li>Coconut Creek HS</li><li>Pompano Rec</li></ul>");
        let id = cb.register(Document::Site(site));
        let Document::Site(site) = cb.document(id).unwrap() else {
            unreachable!()
        };
        let page = site.entry().unwrap();
        let lis = page.html.elements_by_tag("li");
        let sel = Selection::HtmlNodes { url: page.url.clone(), nodes: vec![lis[0]] };
        let ev = cb.copy(id, sel).unwrap();
        assert_eq!(ev.text, "Coconut Creek HS");
    }

    #[test]
    fn mismatched_selection_kind_fails() {
        let mut cb = Clipboard::new();
        let id = cb.register(Document::Text(TextDocument::new("t", "hello")));
        let range = SheetRange::cell(CellAddr::new(0, 0));
        assert!(cb.copy(id, Selection::Cells(range)).is_none());
    }

    #[test]
    fn paste_event_parses_cells_and_keeps_raw_text() {
        let ev = PasteEvent::new(
            Clipboard::copy_external("Ann\t(555) 010-0101\nBob\t(555) 010-0102"),
            2,
            1,
        );
        assert_eq!(ev.raw(), "Ann\t(555) 010-0101\nBob\t(555) 010-0102");
        assert_eq!(
            ev.values,
            vec![
                vec!["Ann".to_string(), "(555) 010-0101".to_string()],
                vec!["Bob".to_string(), "(555) 010-0102".to_string()],
            ]
        );
        assert_eq!((ev.row, ev.col), (2, 1));
    }

    #[test]
    fn external_copy() {
        let ev = Clipboard::copy_external("33063");
        assert!(ev.doc.is_none());
        assert_eq!(ev.text, "33063");
    }
}
