//! Render data rows into synthetic Web sites across complexity tiers.
//!
//! Each tier stresses a different part of the structure learner (§3.1):
//!
//! * [`Tier::Clean`] — a regular single-page table; one example should be
//!   enough to generalize.
//! * [`Tier::Noisy`] — the same table salted with advertisement rows,
//!   random inline wrappers, and sloppy markup; naive index-wildcard
//!   hypotheses over-extract and must be refined by feedback.
//! * [`Tier::Nested`] — records grouped into per-city sections (the
//!   "complex lists of data" case); the record template spans heterogeneous
//!   elements.
//! * [`Tier::MultiPage`] — rows paginated across linked pages (the
//!   "multiple pages … accessible via a form" case); the correct hypothesis
//!   must generalize across the site hierarchy.

use crate::html::{HtmlDocument, NodeId};
use crate::site::{Url, Website};
use copycat_util::rng::{Rng, SeedableRng, StdRng};

/// Page-complexity tier; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Regular single-page table.
    Clean,
    /// Table with ad rows, inline wrappers, sloppy markup.
    Noisy,
    /// Per-group sections with list-item records.
    Nested,
    /// Rows paginated across linked pages.
    MultiPage,
}

impl Tier {
    /// All tiers, in increasing expected difficulty.
    pub const ALL: [Tier; 4] = [Tier::Clean, Tier::Noisy, Tier::Nested, Tier::MultiPage];

    /// Stable lower-case name (used in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Clean => "clean",
            Tier::Noisy => "noisy",
            Tier::Nested => "nested",
            Tier::MultiPage => "multipage",
        }
    }
}

/// Parameters for rendering one synthetic list source.
#[derive(Debug, Clone)]
pub struct ListSpec {
    /// Page `<h1>`/`<title>`.
    pub title: String,
    /// Column labels (shown as `<th>`s on table tiers).
    pub columns: Vec<String>,
    /// Complexity tier.
    pub tier: Tier,
    /// Rows per page for [`Tier::MultiPage`] (ignored otherwise).
    pub rows_per_page: usize,
    /// Noise seed.
    pub seed: u64,
    /// Noise intensity multiplier for [`Tier::Noisy`] (1.0 = default ad /
    /// markup-noise rates; higher values make extraction harder — the E4
    /// difficulty knob).
    pub noise: f64,
}

impl ListSpec {
    /// A spec with sensible defaults for the given tier.
    pub fn new(title: impl Into<String>, columns: &[&str], tier: Tier, seed: u64) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            tier,
            rows_per_page: 8,
            seed,
            noise: 1.0,
        }
    }

    /// Set the noise multiplier.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.max(0.0);
        self
    }
}

/// A rendered site plus ground truth: which data rows appear on which page.
#[derive(Debug)]
pub struct Rendered {
    /// The generated site.
    pub site: Website,
    /// `(url, indices into the input rows)` per data page, in page order.
    pub pages: Vec<(Url, Vec<usize>)>,
}

const AD_COPY: &[&str] = &[
    "Sponsored: Generators in stock now!",
    "Advertisement - Storm shutters 20% off",
    "Sign up for SMS alerts",
    "Your ad here - call today",
];

fn boilerplate_top(title: &str) -> String {
    format!(
        "<html><head><title>{title}</title></head><body>\
         <div class=\"nav\"><a href=\"/\">Home</a> <a href=\"/about\">About</a></div>\
         <h1>{title}</h1>"
    )
}

const BOILERPLATE_BOTTOM: &str =
    "<div class=\"footer\">Copyright 2008 County Emergency News</div></body></html>";

/// Render `rows` per `spec`. Row cells are HTML-escaped by the renderer, so
/// arbitrary strings are safe.
pub fn render_list(spec: &ListSpec, rows: &[Vec<String>]) -> Rendered {
    match spec.tier {
        Tier::Clean => render_table(spec, rows, false),
        Tier::Noisy => render_table(spec, rows, true),
        Tier::Nested => render_nested(spec, rows),
        Tier::MultiPage => render_multipage(spec, rows),
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn render_table(spec: &ListSpec, rows: &[Vec<String>], noisy: bool) -> Rendered {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let p = |base: f64| (base * spec.noise).clamp(0.0, 0.9);
    let mut html = boilerplate_top(&spec.title);
    html.push_str("<table class=\"data\">");
    html.push_str("<tr>");
    for c in &spec.columns {
        html.push_str(&format!("<th>{}</th>", esc(c)));
    }
    html.push_str("</tr>");
    for row in rows {
        if noisy && rng.gen_bool(p(0.25)) {
            let ad = AD_COPY[rng.gen_range(0..AD_COPY.len())];
            html.push_str(&format!(
                "<tr class=\"ad\"><td colspan=\"{}\">{}</td></tr>",
                spec.columns.len(),
                ad
            ));
        }
        if noisy && rng.gen_bool(p(0.3)) {
            html.push_str(&format!("<tr class=\"row{}\">", rng.gen_range(0..2)));
        } else {
            html.push_str("<tr>");
        }
        for (i, cell) in row.iter().enumerate() {
            let inner = if noisy && rng.gen_bool(p(0.3)) {
                match rng.gen_range(0..3) {
                    0 => format!("<b>{}</b>", esc(cell)),
                    1 => format!("<i>{}</i>", esc(cell)),
                    _ => format!("<span class=\"v{}\">{}</span>", i, esc(cell)),
                }
            } else {
                esc(cell)
            };
            // Sloppy markup: occasionally omit the closing </td>.
            if noisy && rng.gen_bool(p(0.15)) {
                html.push_str(&format!("<td>{inner}"));
            } else {
                html.push_str(&format!("<td>{inner}</td>"));
            }
        }
        html.push_str("</tr>");
    }
    html.push_str("</table>");
    html.push_str(BOILERPLATE_BOTTOM);

    let mut site = Website::new();
    site.add_html("/", &html);
    add_about(&mut site);
    Rendered { site, pages: vec![(Url::new("/"), (0..rows.len()).collect())] }
}

fn render_nested(spec: &ListSpec, rows: &[Vec<String>]) -> Rendered {
    // Group by the final column (city in the shelter corpora), preserving
    // first-appearance order.
    let group_col = spec.columns.len().saturating_sub(1);
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let key = row.get(group_col).cloned().unwrap_or_default();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut html = boilerplate_top(&spec.title);
    for (key, members) in &groups {
        html.push_str(&format!("<h2>{}</h2><ul>", esc(key)));
        for &i in members {
            html.push_str("<li>");
            for (c, cell) in rows[i].iter().enumerate() {
                if c == group_col {
                    continue; // the group heading carries this field
                }
                if c > 0 {
                    html.push_str(", ");
                }
                html.push_str(&format!("<span class=\"f{}\">{}</span>", c, esc(cell)));
            }
            html.push_str("</li>");
        }
        html.push_str("</ul>");
    }
    html.push_str(BOILERPLATE_BOTTOM);
    let mut site = Website::new();
    site.add_html("/", &html);
    add_about(&mut site);
    Rendered { site, pages: vec![(Url::new("/"), (0..rows.len()).collect())] }
}

fn render_multipage(spec: &ListSpec, rows: &[Vec<String>]) -> Rendered {
    let per = spec.rows_per_page.max(1);
    let page_count = rows.len().div_ceil(per).max(1);
    let mut site = Website::new();
    let mut pages = Vec::new();
    for p in 0..page_count {
        let url = if p == 0 {
            Url::new("/")
        } else {
            Url::new(format!("/page{}", p + 1))
        };
        let lo = p * per;
        let hi = (lo + per).min(rows.len());
        let mut html = boilerplate_top(&format!("{} (page {})", spec.title, p + 1));
        html.push_str("<table class=\"data\"><tr>");
        for c in &spec.columns {
            html.push_str(&format!("<th>{}</th>", esc(c)));
        }
        html.push_str("</tr>");
        for row in &rows[lo..hi] {
            html.push_str("<tr>");
            for cell in row {
                html.push_str(&format!("<td>{}</td>", esc(cell)));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        if p + 1 < page_count {
            html.push_str(&format!("<a class=\"next\" href=\"/page{}\">Next</a>", p + 2));
        }
        if p > 0 {
            let prev = if p == 1 { "/".to_string() } else { format!("/page{}", p) };
            html.push_str(&format!("<a class=\"prev\" href=\"{prev}\">Prev</a>"));
        }
        html.push_str(BOILERPLATE_BOTTOM);
        site.add_html(url.as_str(), &html);
        pages.push((url, (lo..hi).collect()));
    }
    add_about(&mut site);
    Rendered { site, pages }
}

fn add_about(site: &mut Website) {
    site.add_html(
        "/about",
        &format!(
            "{}<p>This site lists emergency information for the county.</p>{}",
            boilerplate_top("About"),
            BOILERPLATE_BOTTOM
        ),
    );
}

/// Locate, for each cell of `row_values`, an element on the page whose text
/// equals the value. The first cell anchors the record; remaining cells
/// prefer the match nearest (by node id) to the anchor — this resolves
/// shared group headings (Nested tier) and duplicate city names. Returns
/// `None` if any value has no matching element.
pub fn locate_row_nodes(html: &HtmlDocument, row_values: &[String]) -> Option<Vec<NodeId>> {
    let matches_of = |value: &str| -> Vec<NodeId> {
        html.iter()
            .filter(|&id| html.tag(id).is_some())
            .filter(|&id| html.text_content(id) == value)
            .collect()
    };
    let first = row_values.first()?;
    let anchor = *matches_of(first).first()?;
    let mut out = vec![anchor];
    for value in &row_values[1..] {
        let cands = matches_of(value);
        let best = cands
            .into_iter()
            .min_by_key(|id| id.0.abs_diff(anchor.0))?;
        out.push(best);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Faker;

    fn shelter_spec(tier: Tier) -> (ListSpec, Vec<Vec<String>>) {
        let mut f = Faker::new(42);
        let rows = f.shelters(20);
        (ListSpec::new("Shelters", &["Name", "Street", "City"], tier, 7), rows)
    }

    #[test]
    fn clean_has_one_data_page_with_all_rows() {
        let (spec, rows) = shelter_spec(Tier::Clean);
        let r = render_list(&spec, &rows);
        assert_eq!(r.pages.len(), 1);
        assert_eq!(r.pages[0].1.len(), 20);
        let page = r.site.get(&r.pages[0].0).unwrap();
        assert_eq!(page.html.elements_by_tag("tr").len(), 21); // header + 20
    }

    #[test]
    fn noisy_inserts_ads_but_keeps_all_rows() {
        let (spec, rows) = shelter_spec(Tier::Noisy);
        let r = render_list(&spec, &rows);
        let page = r.site.get(&r.pages[0].0).unwrap();
        let trs = page.html.elements_by_tag("tr");
        assert!(trs.len() > 21, "ad rows should be present");
        // Every ground-truth cell is still locatable.
        for row in &rows {
            assert!(locate_row_nodes(&page.html, row).is_some(), "row lost: {row:?}");
        }
    }

    #[test]
    fn nested_groups_by_city() {
        let (spec, rows) = shelter_spec(Tier::Nested);
        let r = render_list(&spec, &rows);
        let page = r.site.get(&r.pages[0].0).unwrap();
        let cities: std::collections::HashSet<_> = rows.iter().map(|r| r[2].clone()).collect();
        assert_eq!(page.html.elements_by_tag("h2").len(), cities.len());
        assert_eq!(page.html.elements_by_tag("li").len(), rows.len());
        for row in &rows {
            let nodes = locate_row_nodes(&page.html, row).expect("locatable");
            assert_eq!(nodes.len(), 3);
        }
    }

    #[test]
    fn multipage_paginates_and_links() {
        let (mut spec, rows) = shelter_spec(Tier::MultiPage);
        spec.rows_per_page = 6;
        let r = render_list(&spec, &rows);
        assert_eq!(r.pages.len(), 4); // 20 rows / 6 per page
        let total: usize = r.pages.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 20);
        // Crawl reaches every data page.
        let crawled = r.site.crawl();
        assert!(crawled.len() >= 4);
    }

    #[test]
    fn rendering_is_deterministic() {
        let (spec, rows) = shelter_spec(Tier::Noisy);
        let a = render_list(&spec, &rows);
        let b = render_list(&spec, &rows);
        let pa = a.site.get(&a.pages[0].0).unwrap();
        let pb = b.site.get(&b.pages[0].0).unwrap();
        assert_eq!(pa.html.to_html(pa.html.root()), pb.html.to_html(pb.html.root()));
    }

    #[test]
    fn cells_are_escaped() {
        let spec = ListSpec::new("T", &["A"], Tier::Clean, 1);
        let rows = vec![vec!["a < b & c".to_string()]];
        let r = render_list(&spec, &rows);
        let page = r.site.get(&r.pages[0].0).unwrap();
        let td = page.html.elements_by_tag("td")[0];
        assert_eq!(page.html.text_content(td), "a < b & c");
    }
}
