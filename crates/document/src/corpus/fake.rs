//! Deterministic fake-data generation for the document-level corpora.
//!
//! The *semantic* world shared across services (streets that geocode, zips
//! that resolve) lives in `copycat-services`; this module only produces
//! plausible strings for document-structure experiments, plus controlled
//! string perturbation used by the record-linkage experiments (E7).

use copycat_util::rng::{Rng, SeedableRng, StdRng};

const FIRST_NAMES: &[&str] = &[
    "Ann", "Bob", "Carla", "David", "Elena", "Frank", "Grace", "Hector", "Irene", "James",
    "Keisha", "Luis", "Maria", "Nadia", "Omar", "Paula", "Quentin", "Rosa", "Sam", "Tina",
];
const LAST_NAMES: &[&str] = &[
    "Alvarez", "Brooks", "Chen", "Diaz", "Evans", "Foster", "Garcia", "Huang", "Ivanov",
    "Johnson", "Kim", "Lopez", "Miller", "Nguyen", "Ortiz", "Patel", "Quinn", "Rivera",
    "Smith", "Torres",
];
const STREET_NAMES: &[&str] = &[
    "Oak", "Maple", "Palmetto", "Cypress", "Hibiscus", "Atlantic", "Sunrise", "Coral",
    "Banyan", "Seagrape", "Pine Island", "Lyons", "Riverside", "Sample", "Wiles",
];
const STREET_SUFFIXES: &[&str] = &["St", "Ave", "Rd", "Blvd", "Dr", "Ln", "Way"];
const CITIES: &[&str] = &[
    "Coconut Creek", "Pompano Beach", "Fort Lauderdale", "Margate", "Coral Springs",
    "Deerfield Beach", "Tamarac", "Plantation", "Sunrise", "Hollywood",
];
const VENUE_KINDS: &[&str] = &[
    "High School", "Middle School", "Elementary", "Recreation Center", "Community Center",
    "Civic Center", "Church", "Park Pavilion",
];

/// A seeded generator of plausible emergency-response strings.
#[derive(Debug)]
pub struct Faker {
    rng: StdRng,
    counter: u32,
}

impl Faker {
    /// Create with a fixed seed; equal seeds yield equal output sequences.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[self.rng.gen_range(0..items.len())]
    }

    /// A person name like `Maria Lopez`.
    pub fn person(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES))
    }

    /// A street address like `4213 Palmetto Ave`.
    pub fn street(&mut self) -> String {
        let num = self.rng.gen_range(100..9999);
        format!("{} {} {}", num, self.pick(STREET_NAMES), self.pick(STREET_SUFFIXES))
    }

    /// A city from the corpus region.
    pub fn city(&mut self) -> String {
        self.pick(CITIES).to_string()
    }

    /// A 5-digit zip in the corpus region (330xx/333xx).
    pub fn zip(&mut self) -> String {
        let block = if self.rng.gen_bool(0.5) { 330 } else { 333 };
        format!("{}{:02}", block, self.rng.gen_range(0..100))
    }

    /// A US-style phone number `(954) 555-0142`.
    pub fn phone(&mut self) -> String {
        format!("(954) 555-{:04}", self.rng.gen_range(100..10000))
    }

    /// A shelter/venue name like `Coconut Creek High School`. Guaranteed
    /// unique within one `Faker` (a numeric disambiguator is appended on
    /// collision-prone draws).
    pub fn shelter_name(&mut self) -> String {
        self.counter += 1;
        let city = self.pick(CITIES);
        let kind = self.pick(VENUE_KINDS);
        if self.rng.gen_bool(0.3) {
            format!("{} {} #{}", city, kind, self.counter)
        } else {
            format!("{} {}", city, kind)
        }
    }

    /// `n` shelter rows: `[name, street, city]`. Names are deduplicated.
    pub fn shelters(&mut self, n: usize) -> Vec<Vec<String>> {
        let mut seen = copycat_util::hash::FxHashSet::default();
        let mut rows = Vec::with_capacity(n);
        while rows.len() < n {
            let mut name = self.shelter_name();
            while !seen.insert(name.clone()) {
                self.counter += 1;
                name = format!("{} #{}", name, self.counter);
                // The loop re-inserts; collisions with the suffix are
                // impossible because the counter is fresh.
            }
            rows.push(vec![name, self.street(), self.city()]);
        }
        rows
    }

    /// `n` contact rows: `[person, phone, venue-name]`, where venue names
    /// are drawn from `venues` (aligning contacts with shelters).
    pub fn contacts_for(&mut self, venues: &[String]) -> Vec<Vec<String>> {
        venues
            .iter()
            .map(|v| vec![self.person(), self.phone(), v.clone()])
            .collect()
    }

    /// Access the underlying RNG (for perturbation passes that should share
    /// the seed stream).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A kind of controlled string corruption for record-linkage workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbKind {
    /// Swap two adjacent characters.
    Transpose,
    /// Delete one character.
    Delete,
    /// Replace one character with a neighbor in the alphabet.
    Substitute,
    /// Common abbreviation: `Street`→`St`, `High School`→`HS`, etc.
    Abbreviate,
    /// Change letter case of one word.
    Recase,
}

/// Apply `edits` random perturbations to `s`. Deterministic given the RNG
/// state. Used to make the "approximately matching" contact names of
/// Example 1.
pub fn perturb_string(rng: &mut StdRng, s: &str, edits: usize) -> String {
    const ABBREVS: &[(&str, &str)] = &[
        ("Street", "St"),
        ("Avenue", "Ave"),
        ("High School", "HS"),
        ("Middle School", "MS"),
        ("Recreation Center", "Rec Ctr"),
        ("Community Center", "Comm Ctr"),
        ("Boulevard", "Blvd"),
        ("Saint", "St."),
    ];
    let mut out = s.to_string();
    for _ in 0..edits {
        let kind = match rng.gen_range(0..5) {
            0 => PerturbKind::Transpose,
            1 => PerturbKind::Delete,
            2 => PerturbKind::Substitute,
            3 => PerturbKind::Abbreviate,
            _ => PerturbKind::Recase,
        };
        out = apply_one(rng, &out, kind, ABBREVS);
    }
    out
}

fn apply_one(rng: &mut StdRng, s: &str, kind: PerturbKind, abbrevs: &[(&str, &str)]) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    match kind {
        PerturbKind::Transpose => {
            let i = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.clone();
            c.swap(i, i + 1);
            c.into_iter().collect()
        }
        PerturbKind::Delete => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            c.remove(i);
            c.into_iter().collect()
        }
        PerturbKind::Substitute => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            if c[i].is_ascii_alphabetic() {
                let base = if c[i].is_ascii_uppercase() { b'A' } else { b'a' };
                let off = (c[i] as u8 - base + 1) % 26;
                c[i] = (base + off) as char;
            }
            c.into_iter().collect()
        }
        PerturbKind::Abbreviate => {
            for (long, short) in abbrevs {
                if s.contains(long) {
                    return s.replacen(long, short, 1);
                }
            }
            s.to_string()
        }
        PerturbKind::Recase => {
            let words: Vec<&str> = s.split(' ').collect();
            if words.is_empty() {
                return s.to_string();
            }
            let i = rng.gen_range(0..words.len());
            let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
            out[i] = if out[i].chars().any(|c| c.is_lowercase()) {
                out[i].to_uppercase()
            } else {
                out[i].to_lowercase()
            };
            out.join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_util::rng::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = {
            let mut f = Faker::new(7);
            f.shelters(5)
        };
        let b: Vec<_> = {
            let mut f = Faker::new(7);
            f.shelters(5)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shelter_names_unique() {
        let mut f = Faker::new(1);
        let rows = f.shelters(200);
        let names: std::collections::HashSet<_> = rows.iter().map(|r| &r[0]).collect();
        assert_eq!(names.len(), 200);
    }

    #[test]
    fn zip_and_phone_shapes() {
        let mut f = Faker::new(2);
        for _ in 0..50 {
            let z = f.zip();
            assert_eq!(z.len(), 5);
            assert!(z.chars().all(|c| c.is_ascii_digit()));
            let p = f.phone();
            assert!(p.starts_with("(954) 555-"));
        }
    }

    #[test]
    fn perturbation_changes_but_resembles() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig = "Coconut Creek High School";
        let got = perturb_string(&mut rng, orig, 2);
        assert_ne!(got, orig);
        // Still shares a long common substring in most draws; at minimum
        // it must be non-empty and not wildly longer.
        assert!(!got.is_empty() && got.len() <= orig.len() + 4);
    }

    #[test]
    fn perturb_zero_edits_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(perturb_string(&mut rng, "abc", 0), "abc");
    }
}
