//! Seeded synthetic corpora.
//!
//! The paper's demo used "real Web pages with shelter information … Excel
//! spreadsheets with contact information … and address resolution and
//! geocoding services" (§8.1). None of those can be fetched here, so this
//! module generates equivalent sources parametrically: list pages across
//! four *complexity tiers* (matching §3.1's observation that "the more
//! complex the pages are, the more examples may be necessary"), paginated
//! multi-page sites, and contact spreadsheets. Everything is seeded and
//! deterministic.

mod fake;
mod render;

pub use fake::{perturb_string, Faker, PerturbKind};
pub use render::{locate_row_nodes, render_list, ListSpec, Rendered, Tier};

use crate::spreadsheet::Sheet;

/// Build a contact spreadsheet from header + rows.
pub fn contact_sheet(name: &str, header: &[&str], rows: Vec<Vec<String>>) -> Sheet {
    Sheet::new(name, Some(header.iter().map(|s| s.to_string()).collect()), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contact_sheet_has_header() {
        let s = contact_sheet("c", &["Name", "Phone"], vec![vec!["A".into(), "5".into()]]);
        assert_eq!(s.header().unwrap(), &["Name", "Phone"]);
        assert_eq!(s.row_count(), 1);
    }
}
