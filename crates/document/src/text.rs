//! Plain-text documents (the "Word documents" of the paper's application
//! wrappers) with line- and byte-span addressing.

/// A plain-text document with cheap line lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextDocument {
    name: String,
    body: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl TextDocument {
    /// Build a document from its full text.
    pub fn new(name: impl Into<String>, body: impl Into<String>) -> Self {
        let body = body.into();
        let mut line_starts = vec![0];
        for (i, b) in body.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { name: name.into(), body, line_starts }
    }

    /// Document name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full text.
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Number of lines (a trailing newline does not create an extra line).
    pub fn line_count(&self) -> usize {
        if self.body.is_empty() {
            0
        } else if self.body.ends_with('\n') {
            self.line_starts.len() - 1
        } else {
            self.line_starts.len()
        }
    }

    /// Borrow line `i` without its newline.
    pub fn line(&self, i: usize) -> Option<&str> {
        if i >= self.line_count() {
            return None;
        }
        let start = self.line_starts[i];
        let end = self
            .line_starts
            .get(i + 1)
            .map(|&e| e - 1)
            .unwrap_or(self.body.len());
        Some(&self.body[start..end])
    }

    /// Byte span `[start, end)` as text; `None` when out of bounds or not on
    /// char boundaries.
    pub fn span(&self, start: usize, end: usize) -> Option<&str> {
        self.body.get(start..end)
    }

    /// Find every byte offset where `needle` occurs.
    pub fn find_all(&self, needle: &str) -> Vec<usize> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.body[from..].find(needle) {
            out.push(from + pos);
            from += pos + 1;
        }
        out
    }

    /// The (line, column-in-bytes) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(ins) => ins - 1,
        };
        (line, offset - self.line_starts[line])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines() {
        let d = TextDocument::new("t", "one\ntwo\nthree");
        assert_eq!(d.line_count(), 3);
        assert_eq!(d.line(1), Some("two"));
        assert_eq!(d.line(3), None);
    }

    #[test]
    fn trailing_newline() {
        let d = TextDocument::new("t", "a\nb\n");
        assert_eq!(d.line_count(), 2);
        assert_eq!(d.line(1), Some("b"));
    }

    #[test]
    fn spans_and_search() {
        let d = TextDocument::new("t", "shelter: Coconut Creek HS\nshelter: Pompano Rec");
        let hits = d.find_all("shelter:");
        assert_eq!(hits.len(), 2);
        assert_eq!(d.line_col(hits[1]), (1, 0));
        assert_eq!(d.span(hits[0], hits[0] + 8), Some("shelter:"));
    }

    #[test]
    fn overlapping_find() {
        let d = TextDocument::new("t", "aaa");
        assert_eq!(d.find_all("aa"), vec![0, 1]);
    }

    #[test]
    fn empty_document() {
        let d = TextDocument::new("t", "");
        assert_eq!(d.line_count(), 0);
        assert_eq!(d.line(0), None);
    }
}
