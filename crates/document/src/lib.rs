//! Document substrate for CopyCat (CIDR 2009 "Smart Copy & Paste").
//!
//! The paper's prototype monitored copy operations from real applications
//! (Internet Explorer, Word, Excel) via OS-level *application wrappers*.
//! This crate is the substitute substrate: an explicit document model that
//! carries exactly the information the paper says the learners need —
//! the copied strings plus "access to the source from which the data was
//! selected" (§3.1).
//!
//! It provides:
//!
//! * [`html`] — a lenient HTML tokenizer, DOM arena, parser and tag-path
//!   addressing, rich enough for the wrapper-induction experts in
//!   `copycat-extract` to operate on realistic page structure;
//! * [`spreadsheet`] — a rectangular sheet model with CSV round-tripping,
//!   standing in for Excel sources;
//! * [`text`] — plain-text documents with line/span addressing;
//! * [`site`] — multi-page Web sites: pages keyed by URL, links, and forms
//!   with input bindings (the "hierarchical Web sites" of §2.2);
//! * [`clipboard`] — copy and paste *events*: the unit of interaction the
//!   SCP engine observes;
//! * [`corpus`] — seeded synthetic corpus generators (shelter lists, noisy
//!   templates, paginated sites, contact sheets) used by the experiments.

pub mod clipboard;
pub mod corpus;
pub mod html;
pub mod site;
pub mod spreadsheet;
pub mod text;

pub use clipboard::{Clipboard, CopyEvent, Document, DocumentId, PasteEvent, Selection};
pub use html::{HtmlDocument, NodeId, NodeKind, TagPath, TagStep};
pub use site::{Form, Page, Url, Website};
pub use spreadsheet::{CellAddr, Sheet, SheetRange};
pub use text::TextDocument;
